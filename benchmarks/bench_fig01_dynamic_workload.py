"""Figure 1 — dynamically changing MoE workload during training.

Two sources reproduce the figure:

* a *real* trace: the needed capacity factor recorded at every step of
  an actual MoE training run on the synthetic task (layer-resolved);
* the SwinV2-MoE-shaped synthetic traces used by the other benches.

Both show the paper's signature: large spikes early (up to ~4.4x the
steady level), noisy decay, and layer-dependent steady states.
"""

import numpy as np

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.models.workload import dynamic_capacity_trace
from repro.train.experiments import train_moe


def _summarize(trace):
    trace = np.asarray(trace)
    n = len(trace)
    return (trace[: n // 10].mean(), trace[n // 2:].mean(),
            trace.max(), trace.max() / max(trace.min(), 1e-9))


def run(verbose: bool = True):
    scale = accuracy_scale()
    result = train_moe(scale, top_k=1, capacity_factor=1.25)
    table = Table("Figure 1 (measured): needed capacity factor during "
                  "a real training run",
                  ["MoE layer", "early mean", "late mean", "peak",
                   "dynamic range"])
    measured = {}
    for layer, trace in result.history.capacity_traces.items():
        early, late, peak, dyn = _summarize(trace)
        measured[layer] = (early, late, peak, dyn)
        table.add_row(layer, f"{early:.2f}", f"{late:.2f}",
                      f"{peak:.2f}", f"{dyn:.2f}x")

    synth = Table("Figure 1 (synthetic SwinV2 trace): layers 1/4/10",
                  ["layer", "early mean", "late mean", "peak",
                   "dynamic range"])
    synthetic = {}
    for layer in (0, 3, 9):
        trace = dynamic_capacity_trace(2000, layer_index=layer)
        early, late, peak, dyn = _summarize(trace)
        synthetic[layer] = (early, late, peak, dyn)
        synth.add_row(layer + 1, f"{early:.2f}", f"{late:.2f}",
                      f"{peak:.2f}", f"{dyn:.2f}x")

    if verbose:
        table.show()
        synth.show()
        print("Paper: the workload changes up to 4.38x within a single "
              "training run and differs across layers.")
    emit("fig01", "Figure 1: dynamic MoE workload during training", [
        Metric("measured_max_dynamic_range",
               max(v[3] for v in measured.values()), "x",
               higher_is_better=True, tolerance=0.15),
        Metric("synthetic_max_dynamic_range",
               max(v[3] for v in synthetic.values()), "x"),
    ], config={"steps": scale.steps, "seed": scale.seed})
    return {"measured": measured, "synthetic": synthetic}


def test_bench_fig01(once):
    result = once(run, verbose=False)
    # Real training: workload is dynamic (range > 1.5x) and the early
    # phase is hotter than the late phase.
    for early, late, peak, dyn in result["measured"].values():
        assert dyn > 1.3
        assert early >= late * 0.8
    # Synthetic traces match the paper's 4.4x headline.
    dyn_ranges = [v[3] for v in result["synthetic"].values()]
    assert max(dyn_ranges) > 2.0


if __name__ == "__main__":
    run()
