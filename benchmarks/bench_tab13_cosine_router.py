"""Table 13 — the cosine router vs the linear router.

E = 32, k = 1, f = 1.25.  The paper finds the cosine router (Eq. 2)
matches the linear router's accuracy on image classification (within
a few tenths); the claim under test is parity, not superiority.
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.train.experiments import router_comparison


def run(verbose: bool = True):
    scale = accuracy_scale()
    results = router_comparison(scale)
    table = Table("Table 13: linear vs cosine router",
                  ["router", "eval acc", "5-shot probe acc",
                   "train loss"])
    for name, r in results.items():
        probe = "-" if r.probe_accuracy is None else \
            f"{r.probe_accuracy:.3f}"
        table.add_row(name, f"{r.eval_accuracy:.3f}", probe,
                      f"{r.final_train_loss:.3f}")
    if verbose:
        table.show()
        print("Paper: the cosine router is as accurate as the linear "
              "router (38.5 vs 38.5 on IN-22K for SwinV2-MoE-B).")
    emit("tab13", "Table 13: cosine vs linear router", [
        Metric("linear_accuracy", results["linear"].eval_accuracy,
               "fraction", higher_is_better=True, tolerance=0.10),
        Metric("cosine_accuracy", results["cosine"].eval_accuracy,
               "fraction", higher_is_better=True, tolerance=0.10),
        Metric("router_gap",
               abs(results["linear"].eval_accuracy
                   - results["cosine"].eval_accuracy),
               "fraction", higher_is_better=False, tolerance=1.0),
    ], config={"steps": scale.steps, "seed": scale.seed})
    return results


def test_bench_tab13(once):
    results = once(run, verbose=False)
    linear = results["linear"].eval_accuracy
    cosine = results["cosine"].eval_accuracy
    # Parity within a modest band.
    assert abs(linear - cosine) < 0.12
    assert min(linear, cosine) > 0.2


if __name__ == "__main__":
    run()
