"""Table 13 — the cosine router vs the linear router.

E = 32, k = 1, f = 1.25.  The paper finds the cosine router (Eq. 2)
matches the linear router's accuracy on image classification (within
a few tenths); the claim under test is parity, not superiority.
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.train.experiments import router_comparison


def run(verbose: bool = True):
    scale = accuracy_scale()
    results = router_comparison(scale)
    table = Table("Table 13: linear vs cosine router",
                  ["router", "eval acc", "5-shot probe acc",
                   "train loss"])
    for name, r in results.items():
        probe = "-" if r.probe_accuracy is None else \
            f"{r.probe_accuracy:.3f}"
        table.add_row(name, f"{r.eval_accuracy:.3f}", probe,
                      f"{r.final_train_loss:.3f}")
    if verbose:
        table.show()
        print("Paper: the cosine router is as accurate as the linear "
              "router (38.5 vs 38.5 on IN-22K for SwinV2-MoE-B).")
    return results


def test_bench_tab13(once):
    results = once(run, verbose=False)
    linear = results["linear"].eval_accuracy
    cosine = results["cosine"].eval_accuracy
    # Parity within a modest band.
    assert abs(linear - cosine) < 0.12
    assert min(linear, cosine) > 0.2


if __name__ == "__main__":
    run()
