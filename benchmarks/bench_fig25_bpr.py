"""Figure 25 — batch prioritized routing vs plain routing.

Both models train at f = 1.25; accuracy is evaluated at shrinking
inference capacity factors.  BPR drops the *least confident* tokens
first, so its accuracy degrades far more slowly at low capacity — the
paper calls it "crucial for computer vision MoE models".
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.train.experiments import bpr_sweep

FACTORS = (0.1, 0.25, 0.5, 1.0, 1.25)


def run(verbose: bool = True):
    scale = accuracy_scale()
    curves = bpr_sweep(scale, infer_factors=FACTORS)
    table = Table("Figure 25: accuracy vs inference capacity factor",
                  ["infer-f", "w/o BPR", "w/ BPR", "BPR advantage"])
    for (f, acc_plain), (_, acc_bpr) in zip(curves["w/o BPR"],
                                            curves["w/ BPR"]):
        table.add_row(f, f"{acc_plain:.3f}", f"{acc_bpr:.3f}",
                      f"{acc_bpr - acc_plain:+.3f}")
    if verbose:
        table.show()
        print("Paper: BPR is crucial at low capacity factors; the "
              "curves converge as f approaches the training value.")
    plain = dict(curves["w/o BPR"])
    bpr = dict(curves["w/ BPR"])
    low = FACTORS[0]
    emit("fig25", "Figure 25: batch prioritized routing", [
        Metric("bpr_advantage_low_f", bpr[low] - plain[low], "fraction",
               higher_is_better=True, tolerance=0.15),
        Metric("bpr_accuracy_low_f", bpr[low], "fraction",
               higher_is_better=True, tolerance=0.10),
    ], config={"factors": list(FACTORS), "seed": scale.seed})
    return curves


def test_bench_fig25(once):
    curves = once(run, verbose=False)
    plain = dict(curves["w/o BPR"])
    bpr = dict(curves["w/ BPR"])
    # At the lowest capacities BPR wins.
    low = FACTORS[0]
    assert bpr[low] > plain[low]
    # At full capacity the two are close (nothing is dropped).
    full = FACTORS[-1]
    assert abs(bpr[full] - plain[full]) < 0.08
    # Dropping capacity hurts the plain router substantially.
    assert plain[low] < plain[full]


if __name__ == "__main__":
    run()
