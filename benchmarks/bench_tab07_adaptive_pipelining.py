"""Table 7 — adaptive pipelining improvement, average and worst case.

Runs the Table 6 settings grid across scales, comparing the adaptive
choice (best of all 8 strategies per setting) against every static
strategy; reports mean and maximum improvement per static baseline.
"""

import os

import numpy as np

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.models.workload import typical_settings
from repro.pipeline.schedule import all_strategies, pipeline_segment_time

WORLDS = (16, 32, 64, 128, 256)


def run(verbose: bool = True, worlds=WORLDS, limit: int | None = None):
    if limit is None:
        limit = 40 if os.environ.get("REPRO_SCALE") != "full" else None
    strategies = all_strategies()
    improvements: dict = {(w, s): [] for w in worlds for s in strategies}
    for world in worlds:
        topo = ndv4_topology(world)
        settings = typical_settings(world)
        if limit:
            settings = settings[::max(1, len(settings) // limit)]
        for cfg in settings:
            times = {s: pipeline_segment_time(cfg, topo, s)
                     for s in strategies}
            best = min(times.values())
            for s, t in times.items():
                improvements[(world, s)].append((t - best) / best)

    avg_table = Table("Table 7a: adaptive pipelining improvement "
                      "(average)", ["#GPUs", "A2A algo",
                                    "deg1", "deg2", "deg4", "deg8"])
    worst_table = Table("Table 7b: adaptive pipelining improvement "
                        "(worst case)", ["#GPUs", "A2A algo",
                                         "deg1", "deg2", "deg4", "deg8"])
    summary = {}
    for world in worlds:
        for algo in ("linear", "2dh"):
            avg_row, worst_row = [], []
            for degree in (1, 2, 4, 8):
                s = next(x for x in strategies
                         if x.degree == degree
                         and x.algorithm.value == algo)
                vals = improvements[(world, s)]
                avg_row.append(float(np.mean(vals)))
                worst_row.append(float(np.max(vals)))
            summary[(world, algo)] = (avg_row, worst_row)
            avg_table.add_row(world, algo,
                              *[f"{v:.0%}" for v in avg_row])
            worst_table.add_row(world, algo,
                                *[f"{v:.0%}" for v in worst_row])
    if verbose:
        avg_table.show()
        worst_table.show()
        print("Paper bands: 1%-107% average improvement, 23%-599% in "
              "the worst case, depending on the static baseline.")
    all_avg = [v for (avg, _) in summary.values() for v in avg]
    all_worst = [v for (_, worst) in summary.values() for v in worst]
    emit("tab07", "Table 7: adaptive pipelining improvements", [
        Metric("max_avg_improvement", max(all_avg), "fraction",
               higher_is_better=True),
        Metric("max_worst_case_improvement", max(all_worst), "fraction",
               higher_is_better=True),
    ], config={"worlds": list(worlds), "limit": limit})
    return summary


def test_bench_tab07(once):
    summary = once(run, verbose=False)
    all_avg = [v for (avg, _) in summary.values() for v in avg]
    all_worst = [v for (_, worst) in summary.values() for v in worst]
    # Improvements are non-negative by construction and material.
    assert min(all_avg) >= 0
    assert max(all_avg) > 0.10       # some static strategy loses >10% avg
    assert max(all_worst) > 0.5      # and >50% somewhere (paper: 599%)


if __name__ == "__main__":
    run()
