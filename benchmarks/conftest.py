"""Shared configuration for the benchmark suite.

Every ``bench_*.py`` regenerates one table or figure from the paper.
Each file exposes ``run(verbose=True)`` — runnable standalone via
``python benchmarks/bench_xxx.py`` — plus a pytest-benchmark entry that
executes it exactly once (the workloads are deterministic models and
sweeps, not microsecond kernels, so statistical repetition only wastes
time; the real-timing Figure 24 bench is the exception and uses proper
rounds).

Set ``REPRO_SCALE=full`` to run the accuracy experiments at a larger
scale (tighter error bars, minutes instead of seconds).

Set ``REPRO_TRACE=/path/trace.json`` to run the whole bench session
under the :mod:`repro.obs` observer and dump a Chrome-trace JSON (plus
a printed metrics summary) at session end — every instrumented span in
the MoE layers, trainer, collectives, strategy search, and simulator
lands in one unified timeline.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def obs_session_trace():
    """Record the bench session into REPRO_TRACE, when set."""
    path = os.environ.get("REPRO_TRACE")
    if not path:
        yield
        return
    from repro import obs
    ob = obs.enable()
    try:
        yield
        assert ob.recorder is not None
        ob.recorder.dump_chrome_trace(path)
        print(f"\n[obs] wrote {len(ob.recorder.events)} trace events "
              f"to {path}")
        print(ob.registry.render())
    finally:
        obs.disable()


def accuracy_scale():
    """Experiment scale for the training-based benches."""
    from repro.train.experiments import ExperimentScale
    if os.environ.get("REPRO_SCALE") == "full":
        return ExperimentScale(steps=800)
    return ExperimentScale(steps=250)


@pytest.fixture
def once(benchmark):
    """Run a deterministic sweep exactly once under pytest-benchmark."""
    def _run(fn, **kwargs):
        return benchmark.pedantic(fn, kwargs=kwargs, rounds=1,
                                  iterations=1)
    return _run
