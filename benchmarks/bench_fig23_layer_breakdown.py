"""Figure 23 — single-MoE-layer improvement breakdown, 16 to 2,048 GPUs.

tokens/step = 16,384, f = 1, M = V = 2,048, dE = 2, top-k = 2.
Features are layered in the paper's order:

(1) Fairseq baseline;
(2) + Tutel kernels (sparse encode/decode) with linear All-to-All;
(3) + adaptive pipelining;
(4) + Flexible All-to-All;
(5) + adaptive parallelism switching (full Tutel);
(6) computation-only share of the full stack.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.core.units import fmt_time
from repro.runtime.plan import (
    FAIRSEQ_FEATURES,
    TUTEL_FEATURES,
    moe_step_time,
)

WORLDS = (16, 64, 256, 1024, 2048)
PAPER_SPEEDUPS = {16: 4.96, 2048: 5.75}


def _cfg(world):
    return MoEConfig(world_size=world, experts_per_gpu=2,
                     model_dim=2048, hidden_dim=2048,
                     tokens_per_gpu=16384, top_k=2, capacity_factor=1.0)


def ladder():
    base = FAIRSEQ_FEATURES
    return [
        ("(1) fairseq", base),
        ("(2) +tutel kernels", base.with_(fast_kernels=True)),
        ("(3) +adaptive pipelining",
         base.with_(fast_kernels=True, adaptive_pipelining=True)),
        ("(4) +flexible a2a",
         base.with_(fast_kernels=True, adaptive_pipelining=True,
                    flexible_a2a=True)),
        ("(5) +adaptive parallelism", TUTEL_FEATURES),
    ]


def run(verbose: bool = True):
    table = Table("Figure 23: single MoE layer step time",
                  ["curve"] + [f"W={w}" for w in WORLDS])
    rows = {}
    for name, features in ladder():
        times = []
        for world in WORLDS:
            bd = moe_step_time(_cfg(world), ndv4_topology(world),
                               features)
            times.append(bd.total)
        rows[name] = times
        table.add_row(name, *[fmt_time(t) for t in times])
    compute_only = []
    for world in WORLDS:
        bd = moe_step_time(_cfg(world), ndv4_topology(world),
                           TUTEL_FEATURES)
        compute_only.append(bd.compute_only)
    rows["(6) compute only"] = compute_only
    table.add_row("(6) compute only", *[fmt_time(t)
                                        for t in compute_only])

    speedups = [rows["(1) fairseq"][i] / rows["(5) +adaptive parallelism"][i]
                for i in range(len(WORLDS))]
    table.add_row("tutel speedup",
                  *[f"{s:.2f}x" for s in speedups])
    if verbose:
        table.show()
        print(f"End-to-end speedup: {speedups[0]:.2f}x at 16 GPUs "
              f"(paper 4.96x), {speedups[-1]:.2f}x at 2,048 GPUs "
              f"(paper 5.75x).")
    emit("fig23", "Figure 23: single MoE layer breakdown", [
        Metric("tutel_speedup_16gpus", speedups[0], "x",
               higher_is_better=True),
        Metric("tutel_speedup_2048gpus", speedups[-1], "x",
               higher_is_better=True),
        Metric("fairseq_step_ms_2048gpus",
               rows["(1) fairseq"][-1] * 1e3, "ms"),
        Metric("tutel_step_ms_2048gpus",
               rows["(5) +adaptive parallelism"][-1] * 1e3, "ms",
               higher_is_better=False),
    ], config={"worlds": list(WORLDS)})
    return rows


def test_bench_fig23(once):
    rows = once(run, verbose=False)
    names = [n for n, _ in ladder()]
    # Each added feature never hurts, at any scale.
    for i, world in enumerate(WORLDS):
        stack = [rows[n][i] for n in names]
        for before, after in zip(stack, stack[1:]):
            assert after <= before * 1.001
    # Full-stack speedup in the paper's band at both endpoints.
    s16 = rows[names[0]][0] / rows[names[-1]][0]
    s2048 = rows[names[0]][-1] / rows[names[-1]][-1]
    assert 2.5 < s16 < 12
    assert 3.0 < s2048 < 14
    # Compute-only lies below the full step everywhere.
    assert all(c <= t for c, t in zip(rows["(6) compute only"],
                                      rows[names[-1]]))


if __name__ == "__main__":
    run()
