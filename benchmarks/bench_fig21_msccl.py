"""Figure 21 — NCCL vs MSCCL-optimized implementations of 2DH.

The MSCCL DSL-compiled schedule fuses the four phases (no inter-phase
barriers) and can use the LL128 protocol, which wins at small sizes
while the Simple protocol wins at large ones.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.collectives.schedule import (
    Impl,
    Protocol,
    linear_a2a_time,
    twodh_a2a_time,
)
from repro.core.units import MIB, fmt_time

WORLDS = (64, 256, 1024)
SIZES = (1 * MIB, 32 * MIB, 256 * MIB)


def run(verbose: bool = True):
    results = {}
    for world in WORLDS:
        topo = ndv4_topology(world)
        table = Table(
            f"Figure 21: 2DH implementations at {world} GPUs",
            ["size", "linear (NCCL)", "2DH (NCCL)", "2DH (MSCCL)",
             "2DH (MSCCL+LL128)"])
        for total in SIZES:
            row = (
                linear_a2a_time(topo, total),
                twodh_a2a_time(topo, total, impl=Impl.NCCL),
                twodh_a2a_time(topo, total, impl=Impl.MSCCL),
                twodh_a2a_time(topo, total, impl=Impl.MSCCL,
                               protocol=Protocol.LL128),
            )
            results[(world, total)] = row
            table.add_row(f"{total // MIB} MiB",
                          *[fmt_time(t) for t in row])
        if verbose:
            table.show()
    emit("fig21", "Figure 21: NCCL vs MSCCL 2DH implementations", [
        Metric("msccl_gain_256gpus_1mib",
               results[(256, 1 * MIB)][1] / results[(256, 1 * MIB)][2],
               "x", higher_is_better=True),
        Metric("ll128_gain_256gpus_1mib",
               results[(256, 1 * MIB)][2] / results[(256, 1 * MIB)][3],
               "x", higher_is_better=True),
        Metric("msccl_recovery_64gpus_256mib",
               results[(64, 256 * MIB)][1] / results[(64, 256 * MIB)][2],
               "x", higher_is_better=True),
    ], config={"worlds": list(WORLDS),
               "sizes_mib": [s // MIB for s in SIZES]})
    return results


def test_bench_fig21(once):
    results = once(run, verbose=False)
    for (world, total), (linear, nccl, msccl, ll128) in results.items():
        # Fusing phases always helps.
        assert msccl < nccl
    # LL128 wins small sizes, Simple wins large sizes (paper text).
    assert results[(256, 1 * MIB)][3] < results[(256, 1 * MIB)][2]
    assert results[(64, 256 * MIB)][2] < results[(64, 256 * MIB)][3]
    # The paper's example: 256 MiB on 64 GPUs — NCCL-2DH loses to
    # linear, but the optimized implementation recovers (or nearly).
    linear, nccl, msccl, _ = results[(64, 256 * MIB)]
    assert nccl > linear
    assert msccl < nccl


if __name__ == "__main__":
    run()
