"""Figure 5 — distribution of optimal pipelining strategies.

Evaluates every (All-to-All algorithm, pipelining degree) pair on the
Table 6 grid of typical MoE settings across scales and histograms which
strategy wins — demonstrating that no single static strategy is optimal
(the motivation for adaptive pipelining).
"""

import os
from collections import Counter

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.models.workload import typical_settings
from repro.pipeline.schedule import all_strategies, pipeline_segment_time

WORLDS = (16, 64, 256)


def run(verbose: bool = True, worlds=WORLDS, limit: int | None = None):
    if limit is None:
        limit = 60 if os.environ.get("REPRO_SCALE") != "full" else None
    strategies = all_strategies()
    wins: Counter = Counter()
    total = 0
    for world in worlds:
        topo = ndv4_topology(world)
        settings = typical_settings(world)
        if limit:
            settings = settings[::max(1, len(settings) // limit)]
        for cfg in settings:
            times = {s: pipeline_segment_time(cfg, topo, s)
                     for s in strategies}
            wins[min(times, key=times.__getitem__).describe()] += 1
            total += 1

    table = Table("Figure 5: optimal pipelining strategy distribution",
                  ["strategy", "# settings where optimal", "share"])
    for name, count in wins.most_common():
        table.add_row(name, count, f"{count / total:.1%}")
    if verbose:
        table.show()
        print(f"{len(wins)} distinct strategies are optimal somewhere "
              f"across {total} (setting, scale) samples — a static "
              "choice cannot win everywhere.")
    emit("fig05", "Figure 5: optimal pipelining strategy distribution", [
        Metric("distinct_winners", float(len(wins)), "strategies",
               higher_is_better=True),
        Metric("top_strategy_share",
               wins.most_common(1)[0][1] / total, "fraction",
               higher_is_better=False),
    ], config={"worlds": list(worlds), "limit": limit})
    return wins


def test_bench_fig05(once):
    wins = once(run, verbose=False)
    # Multiple distinct strategies must each win somewhere.
    assert len(wins) >= 3
    # No single strategy dominates everything.
    top = wins.most_common(1)[0][1]
    assert top < sum(wins.values())


if __name__ == "__main__":
    run()
