"""Figure 7 — DeepSpeed fflayer elapsed time vs scale.

dE = 1, M = V = 2048, f = 1, 16,384 tokens/step per GPU.  Per-GPU
FLOPs are constant under this weak scaling, yet the raw All-to-All
output layout shrinks the per-problem row count from 16,384 to 8,
collapsing GEMM efficiency (paper: 11.3x slowdown, 8.8% relative
throughput at 2,048 GPUs).
"""

from repro.baselines.deepspeed_moe import deepspeed_fflayer_time
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.core.units import fmt_time

WORLDS = (1, 8, 64, 256, 1024, 2048)


def _cfg(world):
    return MoEConfig(world_size=world, experts_per_gpu=1,
                     model_dim=2048, hidden_dim=2048,
                     tokens_per_gpu=16384, top_k=1, capacity_factor=1.0)


def run(verbose: bool = True):
    table = Table("Figure 7: DeepSpeed fflayer time vs scale",
                  ["#GPUs", "bgemm shape (B, rows)", "elapsed",
                   "slowdown vs 1 GPU"])
    times = {}
    base = None
    for world in WORLDS:
        cfg = _cfg(world)
        t = deepspeed_fflayer_time(cfg, ndv4_topology(world))
        base = base or t
        times[world] = t
        table.add_row(world, f"({world}, {cfg.capacity_per_gpu})",
                      fmt_time(t), f"{t / base:.2f}x")
    if verbose:
        table.show()
        print(f"Slowdown at 2,048 GPUs: {times[2048] / times[1]:.1f}x "
              "(paper: 11.3x)")
    emit("fig07", "Figure 7: DeepSpeed fflayer layout regression", [
        Metric("slowdown_2048gpus", times[2048] / times[1], "x"),
        Metric("fflayer_ms_1gpu", times[1] * 1e3, "ms"),
        Metric("fflayer_ms_2048gpus", times[2048] * 1e3, "ms"),
    ], config={"worlds": list(WORLDS)})
    return times


def test_bench_fig07(once):
    times = once(run, verbose=False)
    slowdown = times[2048] / times[1]
    assert 6 < slowdown < 20
    assert all(times[a] <= times[b]
               for a, b in zip(WORLDS, WORLDS[1:]))


if __name__ == "__main__":
    run()
