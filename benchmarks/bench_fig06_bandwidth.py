"""Figure 6 — under-utilized bandwidth for small messages.

(a) GPUDirect-RDMA write bandwidth vs message size on HDR InfiniBand;
(b) All-to-All bus bandwidth from 64 to 2,048 GPUs at fixed sizes.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.linkmodel import a2a_bus_bandwidth, ib_write_bandwidth_curve
from repro.cluster.topology import ndv4_topology
from repro.collectives.schedule import linear_a2a_time
from repro.core.units import GIB, KIB, MIB, fmt_bytes, fmt_rate


def run(verbose: bool = True):
    topo = ndv4_topology(64)
    sizes = [2 ** i * KIB for i in range(0, 19, 2)]
    curve = ib_write_bandwidth_curve(topo.inter_link, sizes)
    fig_a = Table("Figure 6a: ib_write_bw over HDR InfiniBand",
                  ["message size", "effective bandwidth", "fraction of peak"])
    for size, bw in zip(sizes, curve):
        fig_a.add_row(fmt_bytes(size), fmt_rate(bw),
                      f"{bw / topo.inter_link.bandwidth:.1%}")

    fig_b = Table("Figure 6b: All-to-All bus bandwidth (nccl-tests)",
                  ["#GPUs", "S=1 MiB", "S=32 MiB", "S=1 GiB"])
    worlds = (64, 128, 256, 512, 1024, 2048)
    series = {}
    for world in worlds:
        t = ndv4_topology(world)
        row = []
        for total in (1 * MIB, 32 * MIB, 1 * GIB):
            elapsed = linear_a2a_time(t, total)
            row.append(a2a_bus_bandwidth(t, total, elapsed))
        series[world] = row
        fig_b.add_row(world, *[fmt_rate(v) for v in row])

    if verbose:
        fig_a.show()
        fig_b.show()
        print("Shape check: busbw collapses with scale at small S "
              "(paper Figure 6b).")
    emit("fig06", "Figure 6: small-message bandwidth under-utilization", [
        Metric("busbw_1mib_64gpus", series[64][0] / 1e9, "GB/s"),
        Metric("busbw_1mib_2048gpus", series[2048][0] / 1e9, "GB/s"),
        Metric("busbw_1gib_2048gpus", series[2048][2] / 1e9, "GB/s"),
        Metric("small_msg_collapse_ratio", series[64][0] / series[2048][0],
               "x", higher_is_better=None),
    ], config={"worlds": list(worlds), "sizes_kib_max": sizes[-1] // KIB})
    return {"curve": list(zip(sizes, curve)), "busbw": series}


def test_bench_fig06(once):
    result = once(run, verbose=False)
    bws = result["busbw"]
    # Small messages: bus bandwidth collapses as the world grows.
    assert bws[2048][0] < bws[64][0]
    # Large messages: stays within one order of magnitude.
    assert bws[2048][2] > 0.1 * bws[64][2]


if __name__ == "__main__":
    run()
