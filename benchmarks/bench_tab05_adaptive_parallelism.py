"""Table 5 — adaptive parallelism switching improvements.

(a) Improvement over each static strategy across capacity factors,
    E2/S2K/V8K at W = 8 (static M = 2K);
(b) improvement across model settings, including a hybrid f = 1~16
    stream where the adaptive router beats *both* static choices.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.models.workload import sample_capacity_factors
from repro.parallel.router import InlineParallelismRouter
from repro.parallel.strategy import Parallelism, strategy_cost

WORLD = 8


def _cfg(f=1.0, experts=2, tokens=2048, hidden=8192, k=2):
    return MoEConfig(world_size=WORLD, experts_per_gpu=experts / WORLD,
                     model_dim=2048, hidden_dim=hidden,
                     tokens_per_gpu=tokens, top_k=min(k, experts),
                     capacity_factor=f)


def _improvements(cfg, topo):
    """Adaptive improvement over each static strategy (fractions)."""
    costs = {s: strategy_cost(cfg, topo, s).total_time
             for s in (Parallelism.P1_EP_DP, Parallelism.P2_EP_MP)}
    best = min(costs.values())
    return {s: (t - best) / t for s, t in costs.items()}


def run(verbose: bool = True):
    topo = ndv4_topology(WORLD)

    factors = (1.0, 2.0, 4.0, 8.0, 16.0)
    table_a = Table("Table 5a: improvement vs static strategy "
                    "(E2, S2K, V8K)",
                    ["static", *[f"f{int(f)}" for f in factors]])
    a_rows = {}
    for static in (Parallelism.P1_EP_DP, Parallelism.P2_EP_MP):
        row = []
        for f in factors:
            imp = _improvements(_cfg(f=f), topo)[static]
            a_rows[(static, f)] = imp
            row.append(f"{imp:.1%}")
        table_a.add_row(static.value, *row)

    settings = {
        "f1,E4,S1K,V4K": _cfg(f=1, experts=4, tokens=1024, hidden=4096),
        "f1,E4,S1K,V8K": _cfg(f=1, experts=4, tokens=1024, hidden=8192),
        "f1,E2,S16K,V2K": _cfg(f=1, experts=2, tokens=16384,
                               hidden=2048),
        "f1,E2,S32K,V2K": _cfg(f=1, experts=2, tokens=32768,
                               hidden=2048),
        "f1,E4,S4K,V8K": _cfg(f=1, experts=4, tokens=4096, hidden=8192),
        "f1,E1,S4K,V8K": _cfg(f=1, experts=1, tokens=4096, hidden=8192,
                              k=1),
    }
    table_b = Table("Table 5b: improvement per setting",
                    ["setting", "vs static P1", "vs static P2",
                     "adaptive choice"])
    b_rows = {}
    for name, cfg in settings.items():
        imp = _improvements(cfg, topo)
        chosen = InlineParallelismRouter(topo).decide(cfg).chosen
        b_rows[name] = (imp[Parallelism.P1_EP_DP],
                        imp[Parallelism.P2_EP_MP], chosen)
        table_b.add_row(name, f"{imp[Parallelism.P1_EP_DP]:.1%}",
                        f"{imp[Parallelism.P2_EP_MP]:.1%}", chosen.value)

    # Hybrid dynamic stream f = 1 ~ 16: adaptive vs both statics.
    stream = sample_capacity_factors(64, 1.0, 16.0, seed=0)
    totals = {Parallelism.P1_EP_DP: 0.0, Parallelism.P2_EP_MP: 0.0}
    adaptive_total = 0.0
    for f in stream:
        cfg = _cfg(f=float(f), experts=4, tokens=2048, hidden=8192)
        costs = {s: strategy_cost(cfg, topo, s).total_time
                 for s in totals}
        for s in totals:
            totals[s] += costs[s]
        adaptive_total += min(costs.values())
    hybrid = {s: (t - adaptive_total) / t for s, t in totals.items()}
    table_b.add_row("f1~16,E4,S2K,V8K",
                    f"{hybrid[Parallelism.P1_EP_DP]:.1%}",
                    f"{hybrid[Parallelism.P2_EP_MP]:.1%}", "adaptive")

    if verbose:
        table_a.show()
        table_b.show()
        print("Paper shape: the adaptive router never loses, prefers P2 "
              "for parameter-heavy settings and P1 for token-heavy "
              "ones, and beats both statics simultaneously on the "
              "hybrid stream.")
    emit("tab05", "Table 5: adaptive parallelism switching", [
        Metric("improvement_vs_p1_f1",
               a_rows[(Parallelism.P1_EP_DP, 1.0)], "fraction",
               higher_is_better=True),
        Metric("improvement_vs_p2_f16",
               a_rows[(Parallelism.P2_EP_MP, 16.0)], "fraction",
               higher_is_better=True),
        Metric("hybrid_improvement_vs_p1",
               hybrid[Parallelism.P1_EP_DP], "fraction",
               higher_is_better=True),
        Metric("hybrid_improvement_vs_p2",
               hybrid[Parallelism.P2_EP_MP], "fraction",
               higher_is_better=True),
    ], config={"world": WORLD})
    return {"a": a_rows, "b": b_rows, "hybrid": hybrid}


def test_bench_tab05(once):
    results = once(run, verbose=False)
    # Improvements are never negative (the router never loses).
    assert all(v >= 0 for v in results["a"].values())
    # At f = 1 the adaptive choice beats static P1; at f = 16 it beats
    # static P2 (the paper's Table 5a diagonal).
    assert results["a"][(Parallelism.P1_EP_DP, 1.0)] > 0
    assert results["a"][(Parallelism.P2_EP_MP, 16.0)] > 0
    # Token-heavy settings choose P1, parameter-heavy choose P2.
    assert results["b"]["f1,E2,S32K,V2K"][2] is Parallelism.P1_EP_DP
    assert results["b"]["f1,E4,S1K,V8K"][2] is Parallelism.P2_EP_MP
    # Hybrid stream: positive improvement against both statics.
    assert all(v > 0 for v in results["hybrid"].values())


if __name__ == "__main__":
    run()
