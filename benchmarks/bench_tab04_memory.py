"""Table 4 — GPU memory of one MoE layer, Fairseq vs Tutel.

Static settings: M = V = 4096, top-k = 2, dE = 2; tokens/step sweeps
4,096 to 32,768.  The dense path's (T, E, dC) tensors grow
quadratically; the sparse path's index vectors grow linearly.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.memory import dense_moe_memory, sparse_moe_memory
from repro.core.config import MoEConfig
from repro.core.units import GIB

TOKENS = (4096, 8192, 16384, 32768)
PAPER = {4096: (3.7, 2.9), 8192: (6.2, 3.2),
         16384: (16.3, 4.0), 32768: (57.9, 5.7)}


def _cfg(tokens):
    return MoEConfig(world_size=1, experts_per_gpu=2, model_dim=4096,
                     hidden_dim=4096, tokens_per_gpu=tokens, top_k=2,
                     capacity_factor=1.0)


def run(verbose: bool = True):
    table = Table("Table 4: single-MoE-layer GPU memory",
                  ["tokens/step", "Fairseq (paper)", "Tutel (paper)",
                   "saving (paper)"])
    results = {}
    for tokens in TOKENS:
        cfg = _cfg(tokens)
        dense = dense_moe_memory(cfg).total_bytes / GIB
        sparse = sparse_moe_memory(cfg).total_bytes / GIB
        saving = 1 - sparse / dense
        paper_d, paper_s = PAPER[tokens]
        paper_saving = 1 - paper_s / paper_d
        results[tokens] = (dense, sparse, saving)
        table.add_row(tokens,
                      f"{dense:.1f} GiB ({paper_d} GiB)",
                      f"{sparse:.1f} GiB ({paper_s} GiB)",
                      f"{saving:.1%} ({paper_saving:.1%})")
    if verbose:
        table.show()
        print("Largest dense tensors at 32K tokens:")
        for name, nbytes in dense_moe_memory(_cfg(32768)).top(4):
            print(f"  {name}: {nbytes / GIB:.2f} GiB")
    emit("tab04", "Table 4: single-MoE-layer GPU memory", [
        Metric("memory_saving_4096", results[4096][2], "fraction",
               higher_is_better=True),
        Metric("memory_saving_32768", results[32768][2], "fraction",
               higher_is_better=True),
        Metric("sparse_gib_32768", results[32768][1], "GiB",
               higher_is_better=False),
    ], config={"tokens": list(TOKENS)})
    return results


def test_bench_tab04(once):
    results = once(run, verbose=False)
    for tokens, (dense, sparse, saving) in results.items():
        paper_d, paper_s = PAPER[tokens]
        assert abs(saving - (1 - paper_s / paper_d)) < 0.15
        assert paper_d / 2 < dense < paper_d * 2
    # Savings grow with the token count (the paper's -21.6% -> -90.2%).
    savings = [results[t][2] for t in TOKENS]
    assert savings == sorted(savings)


if __name__ == "__main__":
    run()
