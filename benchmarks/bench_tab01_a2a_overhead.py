"""Table 1 — All-to-All overhead ratio and potential overlap speedup.

A typical MoE setting at 16/64/256 GPUs: measure the computation and
All-to-All shares of the (unoverlapped) MoE step, then the potential
speedup if All-to-All were fully hidden behind computation.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.core.units import fmt_time
from repro.runtime.plan import FAIRSEQ_FEATURES, moe_step_time

# The overhead analysis assumes efficient kernels and no overlap — the
# point of the table is what *overlapping* could save, so the dense
# encode/decode inefficiency (a separate problem, Section 4.2) is
# factored out by enabling the fast kernels and the flexible layout
# (keeping computation flat across scales, as in the paper's table).
NO_OVERLAP = FAIRSEQ_FEATURES.with_(name="no-overlap", fast_kernels=True,
                                    flexible_a2a=True)

WORLDS = (16, 64, 256)
PAPER = {16: (0.337, 1.51), 64: (0.463, 1.86), 256: (0.567, 1.76)}


def _cfg(world):
    return MoEConfig(world_size=world, experts_per_gpu=2,
                     model_dim=2048, hidden_dim=2048,
                     tokens_per_gpu=16384, top_k=2, capacity_factor=1.0)


def run(verbose: bool = True):
    table = Table("Table 1: All-to-All overhead and potential speedup",
                  ["#GPUs", "MoE step", "compute", "All-to-All",
                   "A2A ratio (paper)", "potential speedup (paper)"])
    results = {}
    for world in WORLDS:
        bd = moe_step_time(_cfg(world), ndv4_topology(world),
                           NO_OVERLAP)
        compute = bd.compute_only
        a2a = bd.total - compute
        ratio = a2a / bd.total
        # Fully overlapping A2A with compute saves min(a2a, compute).
        saved = min(a2a, compute)
        speedup = bd.total / (bd.total - saved)
        results[world] = (bd.total, compute, a2a, ratio, speedup)
        paper_ratio, paper_speedup = PAPER[world]
        table.add_row(world, fmt_time(bd.total), fmt_time(compute),
                      fmt_time(a2a),
                      f"{ratio:.1%} ({paper_ratio:.1%})",
                      f"{speedup:.2f}x ({paper_speedup:.2f}x)")
    if verbose:
        table.show()
    emit("tab01", "Table 1: All-to-All overhead ratio", [
        Metric(f"a2a_ratio_{w}gpus", results[w][3], "fraction")
        for w in WORLDS
    ] + [
        Metric("potential_speedup_256gpus", results[256][4], "x",
               higher_is_better=True),
    ], config={"worlds": list(WORLDS)})
    return results


def test_bench_tab01(once):
    results = once(run, verbose=False)
    ratios = [results[w][3] for w in WORLDS]
    # The A2A share grows with scale (paper: 33.7% -> 56.7%).
    assert ratios == sorted(ratios)
    assert 0.1 < ratios[0] < 0.7
    assert ratios[-1] > 0.3
    # Potential speedups land in the paper's 1.5-1.9x band (loosely).
    for w in WORLDS:
        assert 1.2 < results[w][4] < 2.5


if __name__ == "__main__":
    run()
