"""Figure 24 — encode/decode kernel time, Tutel sparse vs Fairseq dense.

This is a *real measurement*, not a model: the dense GShard einsum path
(Figure 18a) and the sparse Tutel path (Figure 18b) both run in NumPy
on actual data, and the sparse path's O(T*k*M) work beats the dense
O(T*E*dC*M) by a growing factor as tokens scale — the same shape as the
paper's CUDA measurement.
"""

import time

import numpy as np

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.core.units import fmt_time
from repro.moe.encode import (
    dense_decode,
    dense_encode,
    fast_decode,
    fast_encode,
)
from repro.moe.gating import softmax, top_k_routing

TOKEN_COUNTS = (512, 1024, 2048, 4096)
MODEL_DIM = 256
EXPERTS = 8
TOP_K = 2


def _case(tokens, seed=0):
    rng = np.random.default_rng(seed)
    probs = softmax(rng.normal(size=(tokens, EXPERTS)))
    capacity = max(1, TOP_K * tokens // EXPERTS)
    crit = top_k_routing(probs, TOP_K, capacity=capacity)
    x = rng.normal(size=(tokens, MODEL_DIM))
    z = rng.normal(size=(EXPERTS, capacity, MODEL_DIM))
    return x, z, crit


def _time(fn, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(verbose: bool = True):
    table = Table("Figure 24: encode+decode kernel time (measured)",
                  ["tokens/step", "fairseq dense", "tutel sparse",
                   "speedup"])
    results = {}
    for tokens in TOKEN_COUNTS:
        x, z, crit = _case(tokens)
        dense_t = (_time(lambda: dense_encode(x, crit))
                   + _time(lambda: dense_decode(z, crit)))
        sparse_t = (_time(lambda: fast_encode(x, crit))
                    + _time(lambda: fast_decode(z, crit)))
        results[tokens] = (dense_t, sparse_t)
        table.add_row(tokens, fmt_time(dense_t), fmt_time(sparse_t),
                      f"{dense_t / sparse_t:.1f}x")
    if verbose:
        table.show()
        print("Real NumPy timing; the dense cost grows ~quadratically "
              "in tokens (dC tracks T), the sparse cost linearly — the "
              "paper's Figure 24 gap.")
    # Wall-clock numbers: recorded for the report but excluded from the
    # regression gate by default (kind="measured").
    top = max(TOKEN_COUNTS)
    emit("fig24", "Figure 24: encode/decode kernel time (measured)", [
        Metric("sparse_speedup_4096tok", results[top][0] / results[top][1],
               "x", kind="measured", higher_is_better=True),
        Metric("dense_ms_4096tok", results[top][0] * 1e3, "ms",
               kind="measured"),
        Metric("sparse_ms_4096tok", results[top][1] * 1e3, "ms",
               kind="measured"),
    ], config={"token_counts": list(TOKEN_COUNTS),
               "model_dim": MODEL_DIM, "experts": EXPERTS})
    return results


def test_bench_fig24(benchmark):
    x, z, crit = _case(4096)

    def both():
        fast_decode(fast_encode(x, crit), crit)
    benchmark(both)
    # Correctness + the headline claim: sparse is much faster.
    np.testing.assert_allclose(fast_encode(x, crit),
                               dense_encode(x, crit))
    results = run(verbose=False)
    dense_t, sparse_t = results[max(TOKEN_COUNTS)]
    assert dense_t > 3 * sparse_t


if __name__ == "__main__":
    run()
