"""Table 8 — SwinV2-MoE training/inference speed, Fairseq vs Tutel.

E = 32 experts (one per GPU at W = 32), top-1 routing, f = 1.0, per-GPU
rates in images/second, 8 to 128 GPUs.  The dense column anchors the
backbone; the MoE columns add our modelled per-layer overheads.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.models.swin import SWINV2_B, swinv2_moe_speed
from repro.runtime.plan import FAIRSEQ_FEATURES, TUTEL_FEATURES

WORLDS = (8, 16, 32, 64, 128)
PAPER = {  # (dense train/infer, fairseq train/infer, tutel train/infer)
    8: ((291, 1198), (240, 507), (274, 1053)),
    16: ((290, 1198), (173, 473), (253, 943)),
    32: ((288, 1195), (162, 455), (249, 892)),
    64: ((285, 1187), (159, 429), (234, 835)),
    128: ((256, 1103), (146, 375), (226, 792)),
}


def run(verbose: bool = True):
    table = Table("Table 8: SwinV2-MoE images/second per GPU",
                  ["#GPUs", "dense t/i (paper)", "fairseq t/i (paper)",
                   "tutel t/i (paper)", "speedup t/i (paper)"])
    results = {}
    for world in WORLDS:
        fair = swinv2_moe_speed(SWINV2_B, FAIRSEQ_FEATURES, world=world)
        tutel = swinv2_moe_speed(SWINV2_B, TUTEL_FEATURES, world=world)
        results[world] = (fair, tutel)
        (pd, pfair, ptut) = PAPER[world]
        speed_t = tutel.train_rate / fair.train_rate
        speed_i = tutel.infer_rate / fair.infer_rate
        paper_st = ptut[0] / pfair[0]
        paper_si = ptut[1] / pfair[1]
        table.add_row(
            world,
            f"{SWINV2_B.dense_train_rate:.0f}/{SWINV2_B.dense_infer_rate:.0f}"
            f" ({pd[0]}/{pd[1]})",
            f"{fair.train_rate:.0f}/{fair.infer_rate:.0f} "
            f"({pfair[0]}/{pfair[1]})",
            f"{tutel.train_rate:.0f}/{tutel.infer_rate:.0f} "
            f"({ptut[0]}/{ptut[1]})",
            f"{speed_t:.2f}x/{speed_i:.2f}x "
            f"({paper_st:.2f}x/{paper_si:.2f}x)")
    if verbose:
        table.show()
    fair32, tutel32 = results[32]
    emit("tab08", "Table 8: SwinV2-MoE end-to-end speed", [
        Metric("train_speedup_32gpus",
               tutel32.train_rate / fair32.train_rate, "x",
               higher_is_better=True),
        Metric("infer_speedup_32gpus",
               tutel32.infer_rate / fair32.infer_rate, "x",
               higher_is_better=True),
        Metric("tutel_train_rate_128gpus", results[128][1].train_rate,
               "img/s", higher_is_better=True),
    ], config={"worlds": list(WORLDS)})
    return results


def test_bench_tab08(once):
    results = once(run, verbose=False)
    for world, (fair, tutel) in results.items():
        # Tutel beats Fairseq in both modes at every scale.
        assert tutel.train_rate > fair.train_rate
        assert tutel.infer_rate > fair.infer_rate
        # Speedup bands around the paper's 1.14-1.55x / 1.95-2.11x.
        assert 1.0 < tutel.train_rate / fair.train_rate < 2.5
        assert 1.2 < tutel.infer_rate / fair.infer_rate < 3.5
        # MoE never exceeds the dense backbone rate.
        assert tutel.train_rate <= SWINV2_B.dense_train_rate


if __name__ == "__main__":
    run()
