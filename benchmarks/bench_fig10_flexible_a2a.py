"""Figure 10 — expert computation: raw A2A layout vs Flexible A2A.

Flexible All-to-All keeps the expert input layout at (dE, C, M)
regardless of scale, so the per-problem row count never collapses; the
raw layout (W, dE, dC, M) reproduces the Figure 7 regression.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.gemm import expert_ffn_time
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.core.units import fmt_time

WORLDS = (1, 8, 64, 256, 1024, 2048)


def _cfg(world):
    return MoEConfig(world_size=world, experts_per_gpu=1,
                     model_dim=2048, hidden_dim=2048,
                     tokens_per_gpu=16384, top_k=1, capacity_factor=1.0)


def run(verbose: bool = True):
    table = Table("Figure 10: expert compute, A2A vs Flexible A2A layout",
                  ["#GPUs", "raw A2A layout", "Flexible A2A layout",
                   "gain"])
    results = {}
    for world in WORLDS:
        cfg = _cfg(world)
        gpu = ndv4_topology(world).gpu
        raw = expert_ffn_time(gpu, world, cfg.capacity_per_gpu,
                              2048, 2048)
        flex = expert_ffn_time(gpu, 1, cfg.global_capacity, 2048, 2048)
        results[world] = (raw, flex)
        table.add_row(world, fmt_time(raw), fmt_time(flex),
                      f"{raw / flex:.2f}x")
    if verbose:
        table.show()
        print("Flexible A2A keeps expert time flat across scales "
              "(paper Figure 10).")
    flex_times = [flex for _, flex in results.values()]
    emit("fig10", "Figure 10: Flexible All-to-All layout fix", [
        Metric("gain_2048gpus", results[2048][0] / results[2048][1],
               "x", higher_is_better=True),
        Metric("flex_flatness", max(flex_times) / min(flex_times), "x",
               higher_is_better=False),
    ], config={"worlds": list(WORLDS)})
    return results


def test_bench_fig10(once):
    results = once(run, verbose=False)
    # The flexible layout is scale-independent (within launch noise).
    flex_times = [flex for _, flex in results.values()]
    assert max(flex_times) < 1.2 * min(flex_times)
    # The raw layout regresses heavily at 2,048 GPUs.
    raw, flex = results[2048]
    assert raw > 5 * flex


if __name__ == "__main__":
    run()
