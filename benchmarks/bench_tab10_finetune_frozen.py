"""Table 10 — downstream fine-tuning: tuned vs frozen MoE layers.

The paper's COCO finding: directly fine-tuning all layers degrades the
sparse model below its dense counterpart (-1.7 box AP), while *fixing*
the MoE layers during fine-tuning recovers and surpasses it (+0.4).
Our downstream protocol relabels the same latent clusters with few
samples; updating the MoE layers on scarce data corrupts the routing
the pre-training learned.
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.train.experiments import finetune_frozen_vs_tuned


def run(verbose: bool = True):
    scale = accuracy_scale()
    results = finetune_frozen_vs_tuned(scale)
    table = Table("Table 10: downstream fine-tuning accuracy",
                  ["model", "MoE layers", "downstream acc"])
    table.add_row("dense", "-", f"{results['dense']:.3f}")
    table.add_row("moe", "tuned", f"{results['tuned']:.3f}")
    table.add_row("moe", "fixed", f"{results['fixed']:.3f}")
    if verbose:
        table.show()
        print("Paper: tuned MoE underperforms the dense baseline; "
              "fixing the MoE layers in fine-tuning recovers the "
              "advantage.")
    emit("tab10", "Table 10: fine-tuning with frozen MoE layers", [
        Metric("fixed_accuracy", results["fixed"], "fraction",
               higher_is_better=True, tolerance=0.10),
        Metric("tuned_accuracy", results["tuned"], "fraction",
               higher_is_better=True, tolerance=0.10),
        Metric("freeze_advantage", results["fixed"] - results["tuned"],
               "fraction", tolerance=0.5),
    ], config={"steps": scale.steps, "seed": scale.seed})
    return results


def test_bench_tab10(once):
    results = once(run, verbose=False)
    # The paper's qualitative finding: freezing helps fine-tuning.
    assert results["fixed"] >= results["tuned"] - 0.02
    # All runs beat chance (1/8 classes).
    assert min(results.values()) > 0.15


if __name__ == "__main__":
    run()
