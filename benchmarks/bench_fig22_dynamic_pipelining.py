"""Figure 22 — adaptive pipelining under dynamic workloads.

tokens/step = 4,096, M = V = 4,096, dE = 2.  Capacity factors f in
{4, 16} emulate different workload patterns across iterations; the
adaptive pipeliner (Algorithm 2) is compared against the degree-1
linear baseline at each scale.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.pipeline.adaptive import OnlinePipeliningSearch
from repro.pipeline.schedule import (
    PipelineStrategy,
    all_strategies,
    pipeline_segment_time,
)

WORLDS = (16, 32, 64, 128, 256)
FACTORS = (4.0, 16.0)


def _cfg(world, f):
    return MoEConfig(world_size=world, experts_per_gpu=2,
                     model_dim=4096, hidden_dim=4096,
                     tokens_per_gpu=4096, top_k=2, capacity_factor=f)


def run(verbose: bool = True):
    baseline = PipelineStrategy(degree=1)
    table = Table("Figure 22: adaptive pipelining vs baseline "
                  "(deg1 + linear A2A)",
                  ["#GPUs", "f=4 improvement", "f=16 improvement",
                   "chosen (f=4)", "chosen (f=16)"])
    results = {}
    for world in WORLDS:
        topo = ndv4_topology(world)
        row = {}
        for f in FACTORS:
            cfg = _cfg(world, f)
            base = pipeline_segment_time(cfg, topo, baseline)
            # Online search converges to the oracle best; run it to
            # convergence the way the runtime would.
            search = OnlinePipeliningSearch(bucket_length=1.0)
            chosen = None
            for _ in range(len(all_strategies()) + 1):
                chosen, _ = search.step(
                    f, lambda s: pipeline_segment_time(cfg, topo, s))
            adaptive = pipeline_segment_time(cfg, topo, chosen)
            row[f] = ((base - adaptive) / base, chosen)
        results[world] = row
        table.add_row(world, f"{row[4.0][0]:.0%}", f"{row[16.0][0]:.0%}",
                      row[4.0][1].describe(), row[16.0][1].describe())
    if verbose:
        table.show()
        print("Paper: up to 30% improvement at f=4 and up to 67% at "
              "f=16; the adaptive search always selects the best "
              "strategy.")
    emit("fig22", "Figure 22: adaptive pipelining vs deg1 baseline", [
        Metric("improvement_max_f4",
               max(r[4.0][0] for r in results.values()),
               "fraction", higher_is_better=True),
        Metric("improvement_max_f16",
               max(r[16.0][0] for r in results.values()),
               "fraction", higher_is_better=True),
        Metric("improvement_w64_f4", results[64][4.0][0], "fraction",
               higher_is_better=True),
        Metric("improvement_w64_f16", results[64][16.0][0], "fraction",
               higher_is_better=True),
    ], config={"worlds": list(WORLDS), "factors": list(FACTORS)})
    return results


def test_bench_fig22(once):
    results = once(run, verbose=False)
    for world, row in results.items():
        for f, (improvement, chosen) in row.items():
            assert improvement >= 0
    # The search converges to the oracle best everywhere.
    from repro.pipeline.schedule import all_strategies
    world = 64
    for f in FACTORS:
        cfg = _cfg(world, f)
        topo = ndv4_topology(world)
        oracle = min(all_strategies(),
                     key=lambda s: pipeline_segment_time(cfg, topo, s))
        assert results[world][f][1] == oracle
    # Larger f exposes more overlap opportunity somewhere.
    assert max(r[16.0][0] for r in results.values()) >= \
        max(r[4.0][0] for r in results.values()) - 0.05


if __name__ == "__main__":
    run()
