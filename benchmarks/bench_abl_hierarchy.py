"""Ablation — 2DH hierarchy width and the Section 4.3 extensions.

(a) Local group size m = 8 (NDv4) vs m = 256 (next-gen NVSwitch): with
    a wider first level, the inter-node fan-out n/m stays tiny even at
    32K GPUs, extending 2DH's reach toward the 100K-GPU regime the
    paper sketches.
(b) A 3-level hierarchy (3DH: intra-node, intra-group, inter-group) for
    dragonfly-style topologies, modelled by composing the aggregation
    arithmetic once more.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology, nvswitch256_topology
from repro.collectives.schedule import (
    linear_a2a_time,
    threedh_a2a_time,
    twodh_a2a_time,
)
from repro.core.units import MIB, fmt_time

WORLDS = (2048, 8192, 32768)
SIZE = 8 * MIB


def run(verbose: bool = True):
    table = Table(f"Ablation: hierarchy width at S = {SIZE // MIB} MiB",
                  ["#GPUs", "linear (m=8)", "2DH (m=8)", "2DH (m=256)",
                   "3DH (m=8, g=16)"])
    results = {}
    for world in WORLDS:
        t8 = ndv4_topology(world)
        t256 = nvswitch256_topology(world)
        row = (linear_a2a_time(t8, SIZE), twodh_a2a_time(t8, SIZE),
               twodh_a2a_time(t256, SIZE),
               threedh_a2a_time(t8, SIZE, nodes_per_group=16))
        results[world] = row
        table.add_row(world, *[fmt_time(t) for t in row])
    if verbose:
        table.show()
        print("Wider local domains (m = 256) and a third level keep "
              "the long-haul message count small at extreme scales — "
              "the Section 4.3 extension path.")
    biggest = results[WORLDS[-1]]
    emit("abl_hierarchy", "Ablation: 2DH hierarchy width", [
        Metric("wide_domain_gain_32768", biggest[1] / biggest[2], "x",
               higher_is_better=True),
        Metric("threedh_gain_32768", biggest[1] / biggest[3], "x",
               higher_is_better=True),
    ], config={"worlds": list(WORLDS), "size_mib": SIZE // MIB})
    return results


def test_bench_abl_hierarchy(once):
    results = once(run, verbose=False)
    for world, (linear, twodh8, twodh256, threedh) in results.items():
        assert twodh8 < linear
        # The wider NVSwitch domain strictly helps at these scales.
        assert twodh256 < twodh8
    # The third level pays off at the largest scale.
    biggest = results[WORLDS[-1]]
    assert biggest[3] < biggest[1]


if __name__ == "__main__":
    run()
