"""Table 12 — ablation of top-k and train/inference capacity factors.

The paper's grid: k in {1, 2}, train-f in {1.0, 0.625}, infer-f in
{1.25, 1.0, 0.625, 0.5}.  Accuracy degrades gracefully as inference
capacity shrinks, k = 2 is slightly better but costlier, and the
inference GFLOPs/speed columns come from the SwinV2 cost model.
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.models.swin import SWINV2_B, inference_gflops
from repro.train.experiments import topk_capacity_ablation


def run(verbose: bool = True):
    scale = accuracy_scale()
    rows = topk_capacity_ablation(scale)
    table = Table("Table 12: top-k / capacity-factor ablation",
                  ["k", "train-f", "infer-f", "infer GFLOPs (SwinV2-B)",
                   "eval acc"])
    for row in rows:
        gflops = inference_gflops(SWINV2_B, row["k"], row["infer_f"])
        table.add_row(row["k"], row["train_f"], row["infer_f"],
                      f"{gflops:.2f}", f"{row['accuracy']:.3f}")
    if verbose:
        table.show()
        print("Paper shape: accuracy falls slowly as infer-f shrinks "
              "(38.6 -> 38.0 for k=1), k=2 is at least as accurate.")
    by_key = {(r["k"], r["train_f"], r["infer_f"]): r["accuracy"]
              for r in rows}
    emit("tab12", "Table 12: top-k / capacity ablation", [
        Metric("k1_full_capacity_accuracy", by_key[(1, 1.0, 1.0)],
               "fraction", higher_is_better=True, tolerance=0.10),
        Metric("k2_full_capacity_accuracy", by_key[(2, 1.0, 1.0)],
               "fraction", higher_is_better=True, tolerance=0.10),
        Metric("k1_low_capacity_drop",
               by_key[(1, 1.0, 1.0)] - by_key[(1, 1.0, 0.5)],
               "fraction", tolerance=0.5),
    ], config={"steps": scale.steps, "seed": scale.seed})
    return rows


def test_bench_tab12(once):
    rows = once(run, verbose=False)
    by_key = {(r["k"], r["train_f"], r["infer_f"]): r["accuracy"]
              for r in rows}
    # Shrinking inference capacity never helps much (monotone-ish).
    assert by_key[(1, 1.0, 1.0)] >= by_key[(1, 1.0, 0.5)] - 0.03
    assert by_key[(2, 1.0, 1.0)] >= by_key[(2, 1.0, 0.625)] - 0.03
    # All cells beat chance.
    assert min(by_key.values()) > 0.2


if __name__ == "__main__":
    run()
