"""Ablation — online bucketed search vs exhaustive vs static strategy.

Quantifies the design choice behind Algorithm 2: over a dynamic
capacity-factor stream, compare cumulative MoE segment time under

* an oracle that re-times all 8 strategies every iteration (exhaustive
  search: best possible choices but pays 8x measurement cost);
* the bucketed online search (pays exploration once per bucket);
* each static strategy.
"""

import numpy as np

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.models.workload import sample_capacity_factors
from repro.pipeline.adaptive import OnlinePipeliningSearch
from repro.pipeline.schedule import all_strategies, pipeline_segment_time

WORLD = 64
STEPS = 120


def _cfg(f):
    return MoEConfig(world_size=WORLD, experts_per_gpu=2,
                     model_dim=2048, hidden_dim=2048,
                     tokens_per_gpu=4096, top_k=2,
                     capacity_factor=float(f))


def run(verbose: bool = True):
    topo = ndv4_topology(WORLD)
    factors = sample_capacity_factors(STEPS, 1.0, 16.0, seed=3)
    strategies = all_strategies()

    static_totals = {s: 0.0 for s in strategies}
    oracle_total = 0.0
    oracle_measurements = 0
    online_total = 0.0
    online_measurements = 0
    search = OnlinePipeliningSearch(bucket_length=1.0)

    for f in factors:
        cfg = _cfg(f)
        times = {s: pipeline_segment_time(cfg, topo, s)
                 for s in strategies}
        for s in strategies:
            static_totals[s] += times[s]
        oracle_total += min(times.values())
        oracle_measurements += len(strategies)
        strategy, elapsed = search.step(
            float(f), lambda s: times[s])
        online_total += elapsed
        online_measurements += 1

    table = Table("Ablation: strategy-selection policies over a "
                  f"dynamic f stream ({STEPS} iterations)",
                  ["policy", "total segment time", "vs oracle",
                   "measurements"])
    table.add_row("oracle (exhaustive)", f"{oracle_total:.3f} s",
                  "1.000x", oracle_measurements)
    table.add_row("online bucketed (Alg. 2)", f"{online_total:.3f} s",
                  f"{online_total / oracle_total:.3f}x",
                  online_measurements)
    worst = max(static_totals.values())
    best_static = min(static_totals.values())
    table.add_row("best static", f"{best_static:.3f} s",
                  f"{best_static / oracle_total:.3f}x", 0)
    table.add_row("worst static", f"{worst:.3f} s",
                  f"{worst / oracle_total:.3f}x", 0)
    if verbose:
        table.show()
        print("The online search approaches the oracle within a few "
              "percent while measuring each iteration once instead of "
              "eight times.")
    emit("abl_online_search", "Ablation: online bucketed search", [
        Metric("online_vs_oracle", online_total / oracle_total, "x",
               higher_is_better=False),
        Metric("worst_static_vs_oracle", worst / oracle_total, "x"),
        Metric("measurement_saving",
               oracle_measurements / online_measurements, "x",
               higher_is_better=True),
    ], config={"world": WORLD, "steps": STEPS})
    return {"oracle": oracle_total, "online": online_total,
            "best_static": best_static, "worst_static": worst}


def test_bench_abl_online_search(once):
    r = once(run, verbose=False)
    # Online ends within 15% of the oracle and beats the worst static.
    assert r["online"] < 1.15 * r["oracle"]
    assert r["online"] < r["worst_static"]
    # The oracle lower-bounds everything.
    assert r["oracle"] <= r["best_static"] + 1e-9
    assert r["oracle"] <= r["online"] + 1e-9


if __name__ == "__main__":
    run()
