"""Table 9 — sparse SwinV2-MoE vs its dense counterpart.

The paper: SwinV2-MoE-B beats SwinV2-B on pre-training accuracy
(+1.3), fine-tuning (+0.4) and 5-shot linear evaluation (+2.0).  Our
reproduction trains matched dense/MoE token classifiers on the
clustered synthetic task; the claim under test is the *ordering* and
the sign of every gap.
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.train.experiments import dense_vs_sparse


def run(verbose: bool = True):
    scale = accuracy_scale()
    dense, moe = dense_vs_sparse(scale)
    table = Table("Table 9: dense vs sparse accuracy",
                  ["model", "eval acc", "5-shot probe acc",
                   "train loss", "params"])
    for r in (dense, moe):
        probe = "-" if r.probe_accuracy is None else \
            f"{r.probe_accuracy:.3f}"
        table.add_row(r.name, f"{r.eval_accuracy:.3f}", probe,
                      f"{r.final_train_loss:.3f}", r.params)
    if verbose:
        table.show()
        print(f"MoE gain: {moe.eval_accuracy - dense.eval_accuracy:+.3f}"
              " eval accuracy (paper: +1.3 top-1 on IN-22K); lower "
              "train loss mirrors Table 11's loss column.")
    emit("tab09", "Table 9: sparse vs dense accuracy", [
        Metric("moe_eval_accuracy", moe.eval_accuracy, "fraction",
               higher_is_better=True, tolerance=0.10),
        Metric("dense_eval_accuracy", dense.eval_accuracy, "fraction",
               higher_is_better=True, tolerance=0.10),
        Metric("moe_accuracy_gain",
               moe.eval_accuracy - dense.eval_accuracy, "fraction",
               higher_is_better=True, tolerance=0.5),
    ], config={"steps": scale.steps, "seed": scale.seed})
    return dense, moe


def test_bench_tab09(once):
    dense, moe = once(run, verbose=False)
    # The headline: sparse beats dense at equal activated computation.
    assert moe.eval_accuracy > dense.eval_accuracy
    assert moe.final_train_loss < dense.final_train_loss
    assert moe.params > dense.params


if __name__ == "__main__":
    run()
