"""Figure 3 — runtime preference of P1 vs P2 under varying f and k.

The model uses 16K fflayer hidden size, 2,048 fflayer channel size and
batch size 4 (tokens scale with f through the capacity).  Throughput
ratio P2/P1 above 1.0 means P2 wins.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.parallel.strategy import Parallelism, strategy_cost

FACTORS = (1.0, 2.0, 4.0, 8.0, 16.0)
TOP_KS = (1, 2, 4)


def _cfg(f, k, world=8):
    return MoEConfig(world_size=world, experts_per_gpu=4 / world,
                     model_dim=2048, hidden_dim=16384,
                     tokens_per_gpu=4 * 512, top_k=k,
                     capacity_factor=f)


def run(verbose: bool = True):
    topo = ndv4_topology(8)
    table = Table("Figure 3: P1 vs P2 throughput ratio (P2/P1, >1 means "
                  "P2 wins)", ["f"] + [f"top-{k}" for k in TOP_KS])
    ratios = {}
    for f in FACTORS:
        row = []
        for k in TOP_KS:
            cfg = _cfg(f, k)
            p1 = strategy_cost(cfg, topo, Parallelism.P1_EP_DP).total_time
            p2 = strategy_cost(cfg, topo, Parallelism.P2_EP_MP).total_time
            ratios[(f, k)] = p1 / p2  # throughput ratio
            row.append(f"{p1 / p2:.3f}")
        table.add_row(f, *row)
    if verbose:
        table.show()
        print("Paper shape: P2 preferred at small f, P1 at large f; the "
              "crossover f shifts with k.")
    emit("fig03", "Figure 3: P1 vs P2 runtime preference", [
        Metric("p2_advantage_f1_k1", ratios[(1.0, 1)], "ratio",
               higher_is_better=True),
        Metric("p1_advantage_f16_k4", 1.0 / ratios[(16.0, 4)], "ratio",
               higher_is_better=True),
    ], config={"factors": list(FACTORS), "top_ks": list(TOP_KS)})
    return ratios


def test_bench_fig03(once):
    ratios = once(run, verbose=False)
    for k in TOP_KS:
        series = [ratios[(f, k)] for f in FACTORS]
        # P2's advantage shrinks monotonically as f grows.
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))
    # At k=1, f=1 the token volume is smallest: P2 must win there.
    assert ratios[(1.0, 1)] > 1.0
    # At k=4, f=16 the token volume dominates: P1 must win.
    assert ratios[(16.0, 4)] < 1.0


if __name__ == "__main__":
    run()
