"""Figure 20 — linear vs 2DH All-to-All latency, 64 to 4,096 GPUs.

The paper's headline communication result: 2DH wins for small messages
from small scales, loses at large-message/small-scale (extra copies),
and wins everywhere once the world is large; NCCL's linear algorithm
could not even run at 4,096 GPUs.
"""

from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.cluster.topology import ndv4_topology
from repro.collectives.schedule import (
    linear_a2a_time,
    naive_local_agg_a2a_time,
    twodh_a2a_time,
)
from repro.core.units import MIB, fmt_time

WORLDS = (64, 128, 256, 512, 1024, 2048, 4096)
SIZES = (1 * MIB, 32 * MIB, 256 * MIB)


def run(verbose: bool = True):
    results = {}
    for total in SIZES:
        table = Table(
            f"Figure 20: All-to-All latency at S = {total // MIB} MiB",
            ["#GPUs", "linear", "naive local agg", "2DH",
             "2DH speedup"])
        rows = {}
        for world in WORLDS:
            topo = ndv4_topology(world)
            linear = linear_a2a_time(topo, total)
            naive = naive_local_agg_a2a_time(topo, total)
            twodh = twodh_a2a_time(topo, total)
            rows[world] = (linear, naive, twodh)
            table.add_row(world, fmt_time(linear), fmt_time(naive),
                          fmt_time(twodh), f"{linear / twodh:.2f}x")
        results[total] = rows
        if verbose:
            table.show()
    if verbose:
        best = max(rows[0] / rows[2] for rows in
                   [results[1 * MIB][w] for w in (1024, 2048)])
        print(f"Max small-message 2DH speedup at 1-2K GPUs: {best:.1f}x "
              "(paper: up to 20.7x)")
    emit("fig20", "Figure 20: linear vs 2DH All-to-All scaling", [
        Metric("twodh_speedup_1mib_2048",
               results[1 * MIB][2048][0] / results[1 * MIB][2048][2],
               "x", higher_is_better=True),
        Metric("twodh_speedup_256mib_2048",
               results[256 * MIB][2048][0] / results[256 * MIB][2048][2],
               "x", higher_is_better=True),
        Metric("linear_advantage_256mib_64",
               results[256 * MIB][64][2] / results[256 * MIB][64][0],
               "x"),
    ], config={"worlds": list(WORLDS), "sizes_mib": [s // MIB for s in SIZES]})
    return results


def test_bench_fig20(once):
    results = once(run, verbose=False)
    # Small size: 2DH wins everywhere.
    for world in WORLDS:
        linear, _, twodh = results[1 * MIB][world]
        assert twodh < linear
    # Large size: linear wins at 64 GPUs, 2DH at 2,048.
    assert results[256 * MIB][64][0] < results[256 * MIB][64][2]
    assert results[256 * MIB][2048][2] < results[256 * MIB][2048][0]


if __name__ == "__main__":
    run()
