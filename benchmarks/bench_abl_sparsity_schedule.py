"""Ablation — dynamic sparsity schedules (the Section 4.1 knobs).

Tutel supports changing ``k`` and ``f`` at every iteration; the paper
suggests users "dynamically fine-tune sparsity".  This ablation trains
the toy MoE classifier under three regimes:

* static top-1 (cheapest),
* static top-2 (most accurate, most compute),
* top-2 annealed to top-1 halfway through training,

and reports accuracy next to the average routed compute (mean k * f —
proportional to MoE fflayer FLOPs).
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.nn.models import MoEClassifier
from repro.train.experiments import make_task
from repro.train.schedules import ConstantSchedule, StepSchedule
from repro.train.trainer import train_model

import numpy as np


def _train(scale, task, schedule, name):
    train = task.sample(scale.train_samples,
                        np.random.default_rng(scale.seed + 1))
    test = task.sample(scale.test_samples,
                       np.random.default_rng(scale.seed + 2))
    model = MoEClassifier(scale.input_dim, scale.model_dim,
                          scale.hidden_dim, scale.num_classes,
                          scale.num_blocks, scale.num_clusters,
                          np.random.default_rng(scale.seed), top_k=2,
                          capacity_factor=1.25)
    result = train_model(model, train, test, steps=scale.steps,
                         batch_size=scale.batch_size, lr=scale.lr,
                         seed=scale.seed, top_k_schedule=schedule)
    mean_k = np.mean([schedule(s) for s in range(scale.steps)])
    return {"name": name, "accuracy": result.eval_accuracy,
            "mean_k": float(mean_k),
            "final_k": model.moe_layers()[0].top_k}


def run(verbose: bool = True):
    scale = accuracy_scale()
    task = make_task(scale)
    half = scale.steps // 2
    regimes = [
        (ConstantSchedule(1), "static top-1"),
        (ConstantSchedule(2), "static top-2"),
        (StepSchedule(values=(2, 1), milestones=(half,)),
         "top-2 -> top-1 anneal"),
    ]
    rows = [_train(scale, task, sched, name) for sched, name in regimes]

    table = Table("Ablation: dynamic top-k schedules",
                  ["regime", "eval acc", "mean routed k",
                   "relative MoE compute"])
    base = rows[0]["mean_k"]
    for row in rows:
        table.add_row(row["name"], f"{row['accuracy']:.3f}",
                      f"{row['mean_k']:.2f}",
                      f"{row['mean_k'] / base:.2f}x")
    if verbose:
        table.show()
        print("The anneal recovers most of top-2's accuracy at a "
              "fraction of its routed compute — the dynamic-sparsity "
              "use case of Section 4.1.")
    by_name = {row["name"]: row for row in rows}
    emit("abl_sparsity_schedule", "Ablation: dynamic top-k schedules", [
        Metric("anneal_accuracy",
               by_name["top-2 -> top-1 anneal"]["accuracy"], "fraction",
               higher_is_better=True, tolerance=0.10),
        Metric("anneal_mean_k",
               by_name["top-2 -> top-1 anneal"]["mean_k"], "k"),
        Metric("top2_accuracy", by_name["static top-2"]["accuracy"],
               "fraction", higher_is_better=True, tolerance=0.10),
    ], config={"steps": scale.steps, "seed": scale.seed})
    return by_name


def test_bench_abl_sparsity(once):
    rows = once(run, verbose=False)
    anneal = rows["top-2 -> top-1 anneal"]
    k1 = rows["static top-1"]
    k2 = rows["static top-2"]
    # The anneal's routed compute sits strictly between the statics.
    assert k1["mean_k"] < anneal["mean_k"] < k2["mean_k"]
    # It ends in the cheap top-1 configuration.
    assert anneal["final_k"] == 1
    # And its accuracy at least matches static top-1 (within noise).
    assert anneal["accuracy"] > k1["accuracy"] - 0.05


if __name__ == "__main__":
    run()
