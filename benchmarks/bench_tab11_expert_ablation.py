"""Table 11 — ablation on the number of experts.

The paper sweeps E in {8, 16, 32, 64, 128} for SwinV2-S/B: accuracy
improves up to E = 32-64 then saturates or dips, while parameters grow
linearly and activated parameters stay constant.  Our sweep uses the
synthetic task with 32 latent clusters, so the same saturation point is
predicted by construction.
"""

from conftest import accuracy_scale
from repro.bench.harness import Table
from repro.bench.report import Metric, emit
from repro.models.swin import SWINV2_S, moe_parameter_count
from repro.train.experiments import expert_count_sweep, train_dense

EXPERTS = (8, 16, 32, 64)


def run(verbose: bool = True):
    scale = accuracy_scale()
    dense = train_dense(scale)
    sweep = expert_count_sweep(scale, expert_counts=EXPERTS)
    table = Table("Table 11: expert-count ablation",
                  ["model", "E", "eval acc", "train loss",
                   "toy params", "SwinV2-S #param (paper)"])
    table.add_row("dense", "-", f"{dense.eval_accuracy:.3f}",
                  f"{dense.final_train_loss:.3f}", dense.params,
                  f"{SWINV2_S.dense_params / 1e6:.1f}M")
    results = {}
    for e, r in zip(EXPERTS, sweep):
        results[e] = r
        table.add_row("moe", e, f"{r.eval_accuracy:.3f}",
                      f"{r.final_train_loss:.3f}", r.params,
                      f"{moe_parameter_count(SWINV2_S, e) / 1e6:.1f}M")
    if verbose:
        table.show()
        best = max(results, key=lambda e: results[e].eval_accuracy)
        print(f"Best expert count: {best} (paper: 32 and 64 perform "
              "best; the task has 32 latent clusters).")
    emit("tab11", "Table 11: expert-count ablation", [
        Metric("best_moe_accuracy",
               max(r.eval_accuracy for r in results.values()),
               "fraction", higher_is_better=True, tolerance=0.10),
        Metric("dense_accuracy", dense.eval_accuracy, "fraction",
               higher_is_better=True, tolerance=0.10),
        Metric("best_expert_count",
               float(max(results, key=lambda e: results[e].eval_accuracy)),
               "experts", tolerance=1.0),
    ], config={"experts": list(EXPERTS), "steps": scale.steps,
               "seed": scale.seed})
    return dense, results


def test_bench_tab11(once):
    dense, results = once(run, verbose=False)
    accs = {e: r.eval_accuracy for e, r in results.items()}
    # Every expert count beats dense (paper: all positive deltas).
    assert max(accs.values()) > dense.eval_accuracy
    # More experts than 8 helps: the best count is >= 16.
    best = max(accs, key=accs.__getitem__)
    assert best >= 16
    # Parameters grow monotonically with E.
    params = [results[e].params for e in sorted(results)]
    assert params == sorted(params)


if __name__ == "__main__":
    run()
