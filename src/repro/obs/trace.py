"""Structured trace events with Chrome-trace and JSONL export.

The qualitative half of :mod:`repro.obs`.  A :class:`TraceRecorder`
accumulates typed :class:`TraceEvent` records — complete spans
(``ph="X"``) and instant markers (``ph="i"``) — on named *tracks*.
Tracks unify the two substrates: wall-clock spans from the functional
NumPy side land on tracks like ``"main"`` while simulated-clock spans
from :mod:`repro.cluster.simulator` land on ``"sim/gpu0/compute"`` /
``"sim/gpu0/comm"`` — one schema, one file, one timeline viewer.

Export targets:

* **Chrome trace JSON** (:meth:`TraceRecorder.to_chrome_trace`) —
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev; tracks
  become named threads via ``thread_name`` metadata events, and
  timestamps are converted from seconds to the format's microseconds.
* **JSONL** (:meth:`TraceRecorder.dumps_jsonl`) — one event object per
  line, for ad-hoc ``jq``/pandas analysis.

Event categories used across the codebase are the ``CAT_*`` constants
below; they mirror the paper's cost decomposition (Figure 23: gate,
encode, All-to-All, expert FFN, decode) plus the adaptive-runtime and
training layers above it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "CAT_MOE",
    "CAT_TRAIN",
    "CAT_COLLECTIVE",
    "CAT_PIPELINE",
    "CAT_SIM",
    "CAT_BENCH",
    "CAT_FAULT",
    "CAT_CKPT",
    "CAT_HEALTH",
    "CAT_PROF",
    "CAT_SERVE",
]

# Event categories (the Chrome-trace ``cat`` field).
CAT_MOE = "moe"                # gate / encode / expert_ffn / decode spans
CAT_TRAIN = "train"            # per-step training spans
CAT_COLLECTIVE = "collective"  # all-to-all / allreduce family
CAT_PIPELINE = "pipeline"      # strategy-search exploration events
CAT_SIM = "sim"                # simulated-clock op spans
CAT_BENCH = "bench"            # explicit benchmark timers
CAT_FAULT = "fault"            # injected faults and recoveries
CAT_CKPT = "ckpt"              # checkpoint save/restore markers
CAT_HEALTH = "health"          # online health-detector alerts
CAT_PROF = "prof"              # op-level profiler spans and counters
CAT_SERVE = "serve"            # online-serving requests and batches

_MICRO = 1e6


@dataclass(frozen=True)
class TraceEvent:
    """One typed event.

    ``ts``/``dur`` are in *seconds* on the recorder's timeline (wall
    clock since recorder start, or simulated time); export converts to
    the microseconds Chrome expects.  ``phase`` is ``"X"`` for a
    complete span, ``"i"`` for an instant marker (``dur`` 0), ``"C"``
    for a counter sample whose series values live in ``args`` (the
    profiler's live-bytes / cumulative-FLOP tracks), or one of
    ``"s"``/``"t"``/``"f"`` for flow start/step/finish arrows linking
    spans across tracks (the serving engine draws one flow per request
    from its arrival to the batch that served it); flow events carry
    their flow id in ``args["flow_id"]``.
    """

    name: str
    cat: str
    ts: float
    dur: float = 0.0
    track: str = "main"
    phase: str = "X"
    args: dict = field(default_factory=dict)

    def to_chrome(self, tid: int, pid: int = 0) -> dict:
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.phase,
            "ts": self.ts * _MICRO,
            "pid": pid,
            "tid": tid,
        }
        if self.phase == "X":
            event["dur"] = self.dur * _MICRO
        elif self.phase == "i":
            event["s"] = "t"  # instant scope: thread
        elif self.phase in ("s", "t", "f"):
            # Flow arrows: Chrome matches start/step/finish by id; the
            # finish binds to the enclosing slice ("bp": "e") so the
            # arrow lands on the batch span that served the request.
            event["id"] = self.args.get("flow_id", 0)
            if self.phase == "f":
                event["bp"] = "e"
        # "C" counter events carry only their args series.
        if self.args:
            event["args"] = dict(self.args)
        return event

    def to_json_obj(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "ph": self.phase,
            "ts": self.ts,
            "dur": self.dur,
            "track": self.track,
            "args": dict(self.args),
        }

    @classmethod
    def from_json_obj(cls, obj: dict) -> "TraceEvent":
        """Inverse of :meth:`to_json_obj` (JSONL round-trip)."""
        return cls(name=obj["name"], cat=obj["cat"],
                   ts=float(obj["ts"]), dur=float(obj.get("dur", 0.0)),
                   track=obj.get("track", "main"),
                   phase=obj.get("ph", "X"),
                   args=dict(obj.get("args", {})))


class TraceRecorder:
    """Append-only event sink with bounded growth.

    ``max_events`` caps memory for long sweeps; past it, events are
    counted in :attr:`dropped` instead of stored (the metrics registry
    keeps aggregating regardless).
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def span(self, name: str, cat: str, ts: float, dur: float,
             track: str = "main", args: dict | None = None) -> None:
        """Record one complete span (``ph="X"``)."""
        self.record(TraceEvent(name=name, cat=cat, ts=ts, dur=dur,
                               track=track, args=args or {}))

    def instant(self, name: str, cat: str, ts: float,
                track: str = "main", args: dict | None = None) -> None:
        """Record one instant marker (``ph="i"``)."""
        self.record(TraceEvent(name=name, cat=cat, ts=ts, track=track,
                               phase="i", args=args or {}))

    def flow(self, name: str, cat: str, phase: str, ts: float,
             flow_id: int, track: str = "main",
             args: dict | None = None) -> None:
        """Record one flow event (``ph`` in ``"s"``/``"t"``/``"f"``).

        Events with the same ``flow_id`` (and name/cat) are drawn as
        one arrow chain in the Chrome trace viewer — the serving
        engine uses one flow per request, started at arrival on the
        request track and finished on the engine track at batch close.
        """
        if phase not in ("s", "t", "f"):
            raise ValueError(
                f"flow phase must be 's', 't' or 'f', got {phase!r}")
        flow_args = dict(args or {})
        flow_args["flow_id"] = int(flow_id)
        self.record(TraceEvent(name=name, cat=cat, ts=ts, track=track,
                               phase=phase, args=flow_args))

    def counter(self, name: str, cat: str, ts: float, values: dict,
                track: str = "main") -> None:
        """Record one counter sample (``ph="C"``).

        ``values`` maps series name to numeric value; Chrome/Perfetto
        render consecutive samples of the same ``name`` as a stacked
        area chart.
        """
        self.record(TraceEvent(name=name, cat=cat, ts=ts, track=track,
                               phase="C", args=dict(values)))

    # -- export --------------------------------------------------------

    def tracks(self) -> list[str]:
        """Track names in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    def to_chrome_trace(self) -> dict:
        """The ``chrome://tracing`` JSON object (dict form)."""
        tids = {track: i for i, track in enumerate(self.tracks())}
        trace_events: list[dict] = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": track}}
            for track, tid in tids.items()
        ]
        trace_events.extend(
            event.to_chrome(tid=tids[event.track])
            for event in self.events)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def dumps_chrome_trace(self) -> str:
        return json.dumps(self.to_chrome_trace())

    def dump_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps_chrome_trace())

    def dumps_jsonl(self) -> str:
        return "\n".join(json.dumps(e.to_json_obj()) for e in self.events)

    def dump_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps_jsonl())
            if self.events:
                fh.write("\n")

    @classmethod
    def loads_jsonl(cls, text: str) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`dumps_jsonl` output."""
        recorder = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                recorder.record(TraceEvent.from_json_obj(json.loads(line)))
        return recorder

    @classmethod
    def load_jsonl(cls, path: str) -> "TraceRecorder":
        with open(path) as fh:
            return cls.loads_jsonl(fh.read())
