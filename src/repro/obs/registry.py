"""Process-wide metrics: counters, gauges, and histogram timers.

The quantitative half of :mod:`repro.obs`.  A :class:`MetricsRegistry`
owns named instruments created on first use:

* :class:`Counter` — monotonically increasing totals (steps run,
  tokens dropped, buckets rebuilt);
* :class:`Gauge` — last-written values (current loss, current needed
  capacity factor);
* :class:`Histogram` — accumulated distributions, the backing store of
  every ``span(...)`` / ``@timed`` measurement (count / total / min /
  max / mean plus reservoir-sampled p50/p95/p99, in seconds for
  timers).

Instruments are plain attribute-update objects — no locks, no label
cartesian products — because the substrate is single-process NumPy and
the hot path must stay cheap even when observability is enabled.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "RESERVOIR_SIZE", "SUMMARY_KEYS"]

#: Number of samples each histogram keeps for quantile estimation.
RESERVOIR_SIZE = 256

#: The contract of :meth:`Histogram.summary`: every key below is
#: present in every summary — including ``count: 0`` on a cold
#: instrument — so aggregating consumers (the profiler, dashboards)
#: never need to guard against missing keys.
SUMMARY_KEYS = ("empty", "count", "total", "mean", "min", "max",
                "p50", "p95", "p99")


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, "
                             f"got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins value."""

    name: str
    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


@dataclass
class Histogram:
    """A streaming distribution summary (no bucket boundaries needed).

    Timers observe durations in seconds; anything else can observe any
    non-negative or negative float.  Besides the running aggregates, a
    fixed-size uniform reservoir (Vitter's Algorithm R) of at most
    :data:`RESERVOIR_SIZE` samples backs the p50/p95/p99 estimates, so
    memory stays O(1) per instrument regardless of observation count.
    The reservoir's RNG is seeded from the instrument name, so
    identical observation sequences always produce identical quantiles
    — no global random state is consumed.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    _reservoir: list[float] = field(default_factory=list, repr=False)
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._rng = random.Random(zlib.crc32(self.name.encode("utf-8")))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds *every* observation,
        i.e. quantiles are exact order statistics rather than sampled
        estimates.  Serving SLO gates read p99 from short ``--fast``
        runs, which rely on this being True at ``count <=
        RESERVOIR_SIZE``."""
        return self.count <= RESERVOIR_SIZE

    def quantile(self, q: float) -> float:
        """Reservoir-estimated quantile ``q`` in [0, 1].

        Exact while ``count <= RESERVOIR_SIZE``; a uniform-sample
        estimate beyond that.  Linear interpolation between order
        statistics; 0.0 when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        pos = q * (len(ordered) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict[str, float | bool]:
        """Aggregate dump; every :data:`SUMMARY_KEYS` field is a
        defined finite value even with zero observations — ``count`` is
        emitted as 0 on a cold instrument, and ``empty`` flags that
        case so consumers can tell a true 0.0 from "nothing was
        observed"."""
        out = {
            "empty": self.count == 0,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
        assert tuple(out) == SUMMARY_KEYS
        return out


@dataclass
class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump of every instrument (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self.histograms.items())},
        }

    def render(self) -> str:
        """Aligned text summary for CLI / bench output."""
        lines = ["== metrics =="]
        for name, c in sorted(self.counters.items()):
            lines.append(f"  counter    {name:40s} {c.value:g}")
        for name, g in sorted(self.gauges.items()):
            lines.append(f"  gauge      {name:40s} {g.value:g}")
        for name, h in sorted(self.histograms.items()):
            if not h.count:
                continue
            lines.append(
                f"  histogram  {name:40s} n={h.count} "
                f"mean={h.mean:.3e} min={h.min:.3e} max={h.max:.3e} "
                f"p50={h.quantile(0.50):.3e} p95={h.quantile(0.95):.3e} "
                f"p99={h.quantile(0.99):.3e} total={h.total:.3e}")
        return "\n".join(lines)
