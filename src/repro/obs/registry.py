"""Process-wide metrics: counters, gauges, and histogram timers.

The quantitative half of :mod:`repro.obs`.  A :class:`MetricsRegistry`
owns named instruments created on first use:

* :class:`Counter` — monotonically increasing totals (steps run,
  tokens dropped, buckets rebuilt);
* :class:`Gauge` — last-written values (current loss, current needed
  capacity factor);
* :class:`Histogram` — accumulated distributions, the backing store of
  every ``span(...)`` / ``@timed`` measurement (count / total / min /
  max / mean, in seconds for timers).

Instruments are plain attribute-update objects — no locks, no label
cartesian products — because the substrate is single-process NumPy and
the hot path must stay cheap even when observability is enabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, "
                             f"got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins value."""

    name: str
    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


@dataclass
class Histogram:
    """A streaming distribution summary (no bucket boundaries needed).

    Timers observe durations in seconds; anything else can observe any
    non-negative or negative float — only summary statistics are kept,
    so memory stays O(1) per instrument regardless of observation
    count.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


@dataclass
class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump of every instrument (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self.histograms.items())},
        }

    def render(self) -> str:
        """Aligned text summary for CLI / bench output."""
        lines = ["== metrics =="]
        for name, c in sorted(self.counters.items()):
            lines.append(f"  counter    {name:40s} {c.value:g}")
        for name, g in sorted(self.gauges.items()):
            lines.append(f"  gauge      {name:40s} {g.value:g}")
        for name, h in sorted(self.histograms.items()):
            if not h.count:
                continue
            lines.append(
                f"  histogram  {name:40s} n={h.count} "
                f"mean={h.mean:.3e} min={h.min:.3e} max={h.max:.3e} "
                f"total={h.total:.3e}")
        return "\n".join(lines)
