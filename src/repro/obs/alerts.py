"""Declarative alert rules over live run telemetry (``repro.obs.alerts``).

Prometheus-style alerting for the run registry: an
:class:`AlertEngine` holds an ordered list of :class:`AlertRule`
(threshold / rate / absence expressions over named metric samples,
``for``-duration holds, severity, hysteresis on resolve) and is
evaluated on a **deterministic tick** — the training step or serving
batch id — never the wall clock, so the same run and rules always
produce the identical alert event sequence.

Each fire/resolve transition lands in two places:

* the run registry, as a ``kind="alert"`` event whose payload matches
  the health-monitor alert schema the dashboard table already reads
  (``kind`` / ``severity`` / ``value`` / ``threshold`` / ``message``,
  plus ``alertname`` and ``state``);
* the metrics registry, as the ``ALERTS{alertname=...,severity=...}``
  labeled gauge family (1 while firing, 0 after resolve) rendered by
  :mod:`repro.obs.prometheus` — the convention Prometheus itself uses
  to expose alert state.

The engine also tracks outstanding faults by observing the run's
event stream (``kind="fault"`` raises the count, ``kind="recovery"``
lowers it) through the :func:`repro.obs.runs.add_stream_hook`
mechanism, which feeds the resilience rule (``recovery_overdue``) no
single subsystem could evaluate alone: the trainer, the serving
engine, and the chaos scenario engine all emit faults on their own
code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.obs.overhead import get_ledger, perf_ns
from repro.obs.prometheus import labeled_name

__all__ = [
    "ALERTS_FAMILY",
    "AlertRule",
    "AlertTransition",
    "AlertEngine",
    "default_rules",
    "routing_samples",
    "merge_worst",
]

#: Labeled gauge family name mirroring firing state (Prometheus
#: convention: ``ALERTS{alertname="...",severity="..."} 1``).
ALERTS_FAMILY = "ALERTS"

_OPS = ("<", "<=", ">", ">=")
_KINDS = ("threshold", "rate", "absent")


def _cmp(value: float, op: str, threshold: float) -> bool:
    if op == "<":
        return value < threshold
    if op == "<=":
        return value <= threshold
    if op == ">":
        return value > threshold
    return value >= threshold


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule.

    ``kind="threshold"`` compares the sample against ``threshold``
    with ``op``; ``kind="rate"`` compares the per-tick delta of the
    sample; ``kind="absent"`` fires when the metric has not been
    sampled for ``for_ticks`` consecutive ticks.  ``for_ticks`` is the
    ``for:`` hold — the condition must stay bad that many consecutive
    ticks before the rule fires.  ``resolve_threshold`` adds
    hysteresis: a firing rule resolves only once the value crosses
    back past it (not merely past ``threshold``), so a metric jittering
    at the bound cannot flap the alert.
    """

    name: str
    metric: str
    op: str = ">"
    threshold: float = 0.0
    for_ticks: int = 0
    severity: str = "warn"
    kind: str = "threshold"
    resolve_threshold: float | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rule name must be non-empty")
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: op must be one of {_OPS}, "
                f"got {self.op!r}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"rule {self.name!r}: kind must be one of {_KINDS}, "
                f"got {self.kind!r}")
        if self.for_ticks < 0:
            raise ValueError(
                f"rule {self.name!r}: for_ticks must be >= 0, "
                f"got {self.for_ticks}")

    @property
    def gauge_name(self) -> str:
        return labeled_name(ALERTS_FAMILY, {"alertname": self.name,
                                            "severity": self.severity})

    def _cleared(self, value: float) -> bool:
        """Should a firing rule resolve at ``value``?

        Without ``resolve_threshold`` the rule resolves as soon as its
        condition stops holding; with one, the value must cross
        strictly past the resolve bound (hysteresis).
        """
        if self.resolve_threshold is None:
            return not _cmp(value, self.op, self.threshold)
        if self.op in ("<", "<="):
            return value > self.resolve_threshold
        return value < self.resolve_threshold


@dataclass(frozen=True)
class AlertTransition:
    """One fire or resolve decision of one rule at one tick."""

    tick: int
    rule: AlertRule
    state: str                 # "firing" | "resolved"
    value: float | None

    def to_event_data(self) -> dict:
        return {
            "kind": self.rule.name,
            "alertname": self.rule.name,
            "severity": self.rule.severity,
            "state": self.state,
            "value": self.value,
            "threshold": self.rule.threshold,
            "message": (self.rule.message
                        or f"{self.rule.metric} {self.rule.op} "
                           f"{self.rule.threshold:g}")
                       + f" [{self.state}]",
        }


@dataclass
class _RuleState:
    pending_since: int | None = None
    firing: bool = False
    last_value: float | None = None
    last_seen: int | None = None


class AlertEngine:
    """Evaluates an ordered rule list on deterministic ticks.

    ``evaluate(tick, samples)`` walks the rules in declaration order
    (determinism: no dict-order dependence on the caller's side
    matters because each rule reads exactly one named sample) and
    returns the transitions; pass ``run=`` and/or ``registry=`` to
    also emit alert events and mirror the ``ALERTS`` gauge family.
    ``stream_hook`` is the fault tracker — register it with
    :func:`repro.obs.runs.add_stream_hook` so ``fault`` / ``recovery``
    events from *any* emitter update ``outstanding_faults``, surfaced
    to rules as the ``faults.outstanding`` sample.
    """

    def __init__(self, rules: Sequence[AlertRule]) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names in {names}")
        self.rules = list(rules)
        self._states = [_RuleState() for _ in self.rules]
        self.outstanding_faults = 0
        self.transitions: list[AlertTransition] = []

    # -- fault tracking (runs.add_stream_hook target) ------------------

    def stream_hook(self, event: Mapping) -> None:
        kind = event.get("kind")
        if kind == "fault":
            self.outstanding_faults += 1
        elif kind == "recovery":
            self.outstanding_faults = max(
                0, self.outstanding_faults - 1)

    # -- evaluation ----------------------------------------------------

    def firing(self) -> list[str]:
        """Names of the rules currently firing, in rule order."""
        return [r.name for r, s in zip(self.rules, self._states)
                if s.firing]

    def evaluate(self, tick: int, samples: Mapping[str, float],
                 run=None, registry=None) -> list[AlertTransition]:
        """One deterministic evaluation pass; returns transitions."""
        led = get_ledger()
        t0 = perf_ns() if led is not None else 0
        samples = dict(samples)
        samples.setdefault("faults.outstanding",
                           float(self.outstanding_faults))
        out: list[AlertTransition] = []
        for rule, state in zip(self.rules, self._states):
            value = samples.get(rule.metric)
            if rule.kind == "absent":
                if value is not None:
                    state.last_seen = tick
                if state.last_seen is None \
                        and state.pending_since is None:
                    state.pending_since = tick  # first-ever tick anchor
                anchor = (state.last_seen
                          if state.last_seen is not None
                          else state.pending_since)
                bad = (value is None
                       and tick - anchor >= rule.for_ticks)
                if state.firing and not bad:
                    state.firing = False
                    out.append(AlertTransition(tick, rule, "resolved",
                                               value))
                elif not state.firing and bad:
                    state.firing = True
                    out.append(AlertTransition(tick, rule, "firing",
                                               None))
                continue
            if value is None:
                continue                  # no sample: hold all state
            observed = value
            if rule.kind == "rate":
                previous = state.last_value
                state.last_value = value
                if previous is None:
                    continue
                observed = value - previous
            bad = _cmp(observed, rule.op, rule.threshold)
            if state.firing:
                if rule._cleared(observed):
                    state.firing = False
                    state.pending_since = None
                    out.append(AlertTransition(tick, rule, "resolved",
                                               observed))
            elif bad:
                if state.pending_since is None:
                    state.pending_since = tick
                if tick - state.pending_since >= rule.for_ticks:
                    state.firing = True
                    out.append(AlertTransition(tick, rule, "firing",
                                               observed))
            else:
                state.pending_since = None
        self.transitions.extend(out)
        if led is not None:
            led.add("alerts", perf_ns() - t0)
        for tr in out:
            if registry is not None:
                registry.gauge(tr.rule.gauge_name).set(
                    1.0 if tr.state == "firing" else 0.0)
                if tr.state == "firing":
                    registry.counter("alerts.fired").inc()
            if run is not None:
                run.emit("alert", step=tick, data=tr.to_event_data())
        return out


# ----------------------------------------------------------------------
# The default rule pack
# ----------------------------------------------------------------------

def default_rules(p99_ms: float | None = None,
                  min_goodput_rps: float | None = None,
                  entropy_floor: float = 0.5,
                  dead_expert_share: float = 0.1,
                  drop_rate: float = 0.3,
                  recovery_deadline_ticks: int = 5
                  ) -> list[AlertRule]:
    """Serving SLO + routing health + resilience rules.

    The serving rules appear only when the caller supplies the
    workload's SLO bounds (``p99_ms`` / ``min_goodput_rps``); the
    routing and resilience rules always apply.  Thresholds follow the
    health-monitor conventions: normalized entropy floor 0.5, a
    "dead" expert is one drawing under 10% of its uniform share for
    five consecutive ticks, drops past 30% are a capacity alarm.
    """
    rules: list[AlertRule] = []
    if p99_ms is not None:
        rules.append(AlertRule(
            name="serving_p99_high", metric="serve.model_p99_ms",
            op=">", threshold=p99_ms, for_ticks=2,
            severity="critical", resolve_threshold=0.9 * p99_ms,
            message=f"modeled p99 latency above SLO {p99_ms:g} ms"))
    if min_goodput_rps is not None:
        rules.append(AlertRule(
            name="serving_goodput_low", metric="serve.goodput_rps",
            op="<", threshold=min_goodput_rps, for_ticks=2,
            severity="warn",
            resolve_threshold=1.1 * min_goodput_rps,
            message=f"rolling goodput below SLO "
                    f"{min_goodput_rps:g} req/s"))
    rules.extend([
        AlertRule(
            name="routing_entropy_floor", metric="routing.entropy",
            op="<", threshold=entropy_floor, for_ticks=3,
            severity="warn",
            resolve_threshold=min(1.0, entropy_floor + 0.05),
            message=f"routing entropy below {entropy_floor:g} — "
                    "gate collapsing"),
        AlertRule(
            name="dead_expert", metric="routing.min_expert_share",
            op="<", threshold=dead_expert_share, for_ticks=5,
            severity="critical",
            resolve_threshold=min(1.0, 1.5 * dead_expert_share),
            message="an expert draws under "
                    f"{dead_expert_share:.0%} of its uniform share"),
        AlertRule(
            name="drop_rate_high", metric="routing.dropped_fraction",
            op=">", threshold=drop_rate, for_ticks=2,
            severity="warn", resolve_threshold=0.8 * drop_rate,
            message=f"token drop rate above {drop_rate:.0%} — "
                    "capacity factor too low"),
        AlertRule(
            name="recovery_overdue", metric="faults.outstanding",
            op=">", threshold=0.0,
            for_ticks=recovery_deadline_ticks, severity="critical",
            message="a fault has gone unrecovered past the "
                    f"{recovery_deadline_ticks}-tick deadline"),
    ])
    return rules


def routing_samples(entropy: float | None,
                    dropped_fraction: float | None,
                    expert_load: Sequence[float] | None
                    ) -> dict[str, float]:
    """Routing-health samples from one layer's statistics.

    ``routing.min_expert_share`` normalizes the least-loaded expert's
    token count by the uniform share, so 1.0 means perfectly balanced
    and 0.0 a fully dead expert, independent of expert count.
    """
    samples: dict[str, float] = {}
    if entropy is not None:
        samples["routing.entropy"] = float(entropy)
    if dropped_fraction is not None:
        samples["routing.dropped_fraction"] = float(dropped_fraction)
    if expert_load:
        total = float(sum(expert_load))
        if total > 0:
            samples["routing.min_expert_share"] = (
                min(float(v) for v in expert_load)
                * len(expert_load) / total)
    return samples


def merge_worst(into: dict[str, float],
                samples: Mapping[str, float]) -> None:
    """Fold one layer's samples into a per-tick dict, keeping the
    worst value across layers (min entropy / min share, max drop)."""
    for key, value in samples.items():
        if key not in into:
            into[key] = value
        elif key == "routing.dropped_fraction":
            into[key] = max(into[key], value)
        else:
            into[key] = min(into[key], value)
