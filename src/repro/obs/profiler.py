"""Deterministic op-level profiler for the functional substrate.

The measured half of the measured-vs-modeled loop (see
:mod:`repro.obs.calibrate` for the other half).  A :class:`Profiler`
threads through the autograd engine (:mod:`repro.autograd.tensor`,
``functional``, ``moe_ops``) and records, per backward-graph op:

* **closed-form FLOPs and bytes read/written** — analytic counts from
  the cost helpers at the bottom of this module, the same formulas the
  reference tests assert against (``2*m*n*k`` for GEMMs, ``O(T*k*M)``
  for the sparse encode/decode versus the dense ``O(T*E*C*M)`` path);
* **arithmetic intensity** — FLOPs per byte moved, derived;
* **wall time** — measured around the op's forward compute and, for
  the backward pass, around each tape node's ``_backward`` closure;
* a **live-set allocation ledger** — every op-output array and every
  gradient array is tracked from creation to release (CPython
  refcounting makes frees deterministic, observed via
  ``weakref.finalize``), yielding *exact* peak bytes and an allocation
  timeline attributed to forward/backward phase and MoE stage
  (gate / dispatch / expert_ffn / combine).

Like the :class:`~repro.obs.Observer`, the profiler is **off by
default and zero-cost when off**: instrumented call sites do one
module-global ``is None`` check.  Enable around a region::

    from repro.obs import profiler

    with profiler.profiling() as prof:
        loss = model(...)[0]
        loss.backward()
    print(prof.render())
    summary = prof.summary()          # JSON-serializable

FLOP conventions (documented so the closed-form counts are
reproducible): one add/sub/mul/compare = 1 FLOP, one divide = 4 FLOPs,
one transcendental (exp/log/tanh/sqrt) = 6 FLOPs.  Byte counts are
itemsize-aware: every cost helper takes an ``itemsize`` argument
(instrumented call sites pass the actual array itemsize) defaulting to
the active substrate dtype's — 4 under the float32 default, 8 under
float64 (:func:`repro.core.substrate.default_itemsize`).
"""

from __future__ import annotations

import contextlib
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.substrate import default_itemsize
from repro.obs.trace import CAT_PROF, TraceRecorder

__all__ = [
    "default_itemsize",
    "PHASE_FORWARD",
    "PHASE_BACKWARD",
    "STAGE_OTHER",
    "MOE_STAGES",
    "OpCost",
    "ZERO_COST",
    "OpRecord",
    "AllocationEvent",
    "AllocationLedger",
    "Profiler",
    "active",
    "get_profiler",
    "set_profiler",
    "profiling",
    "stage",
    "gemm_flops",
    "matmul_cost",
    "elementwise_cost",
    "reduction_cost",
    "routes_of",
    "sparse_encode_cost",
    "sparse_encode_backward_cost",
    "sparse_decode_cost",
    "sparse_decode_backward_cost",
    "dense_encode_flops",
]

PHASE_FORWARD = "forward"
PHASE_BACKWARD = "backward"

#: Stage attributed to ops outside any MoE stage context.
STAGE_OTHER = "other"

#: The paper's Figure 23 cost decomposition, as profiler stages.
MOE_STAGES = ("gate", "dispatch", "expert_ffn", "combine")


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OpCost:
    """Closed-form cost of one op: FLOPs plus bytes moved."""

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved (0 when no bytes move)."""
        total = self.bytes_total
        return self.flops / total if total else 0.0

    def __add__(self, other: "OpCost") -> "OpCost":
        """Component-wise sum — fused ops compose their stage costs."""
        if not isinstance(other, OpCost):
            return NotImplemented
        return OpCost(flops=self.flops + other.flops,
                      bytes_read=self.bytes_read + other.bytes_read,
                      bytes_written=self.bytes_written + other.bytes_written)


ZERO_COST = OpCost()


@dataclass(frozen=True)
class OpRecord:
    """One profiled op execution (forward or backward)."""

    seq: int
    name: str
    phase: str        # PHASE_FORWARD | PHASE_BACKWARD
    stage: str        # MoE stage, or STAGE_OTHER
    ts: float         # seconds on the profiler clock
    wall: float       # measured duration in seconds
    cost: OpCost


@dataclass(frozen=True)
class AllocationEvent:
    """One live-set transition: ``delta`` bytes allocated or freed."""

    seq: int
    ts: float
    delta: int        # positive = alloc, negative = free
    live: int         # live bytes *after* this event
    phase: str
    stage: str
    tag: str          # "data" (op output) or "grad"


class AllocationLedger:
    """Exact live-set accounting over tracked arrays.

    Arrays are keyed by ``id()`` with a reference count so an array
    shared between tensors (a pass-through gradient, for instance) is
    counted once.  The accounting reference count never exceeds the
    real CPython reference count — every retain corresponds to a live
    ``Tensor.data`` / ``Tensor.grad`` reference — so a tracked id can
    never be recycled while its entry is open.

    After :meth:`close` (the profiling context exited), late releases
    from ``weakref.finalize`` still clear their entries but no longer
    append timeline events.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.live_bytes = 0
        self.peak_bytes = 0
        self.events: list[AllocationEvent] = []
        self.dropped = 0
        self.closed = False
        self._seq = 0
        # array id -> [nbytes, refcount]
        self._open: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self.events)

    def _record(self, ts: float, delta: int, phase: str, stage: str,
                tag: str) -> None:
        self.live_bytes += delta
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(AllocationEvent(
            seq=self._seq, ts=ts, delta=delta, live=self.live_bytes,
            phase=phase, stage=stage, tag=tag))
        self._seq += 1

    def retain(self, key: int, nbytes: int, ts: float, phase: str,
               stage: str, tag: str) -> None:
        """Add one accounting reference to array ``key``.

        The first reference records the allocation; further ones only
        bump the refcount (shared arrays are one allocation).
        """
        entry = self._open.get(key)
        if entry is not None:
            entry[1] += 1
            return
        self._open[key] = [nbytes, 1]
        if not self.closed:
            self._record(ts, nbytes, phase, stage, tag)

    def release(self, key: int, ts: float, phase: str, stage: str,
                tag: str) -> None:
        """Drop one accounting reference; frees at refcount zero.

        Tolerant of unknown keys (double finalizers, arrays tracked
        before the ledger attached).
        """
        entry = self._open.get(key)
        if entry is None:
            return
        if entry[1] > 1:
            entry[1] -= 1
            return
        del self._open[key]
        if not self.closed:
            self._record(ts, -entry[0], phase, stage, tag)

    def close(self) -> None:
        """Stop recording timeline events (late frees only clean up)."""
        self.closed = True

    def timeline(self, max_points: int = 240) -> list[list]:
        """Downsampled ``[seq, live, phase, stage]`` rows.

        Always keeps the first, last and peak events so the plotted
        envelope never understates the true peak.
        """
        events = self.events
        if not events:
            return []
        keep: set[int] = {0, len(events) - 1}
        peak_i = max(range(len(events)), key=lambda i: events[i].live)
        keep.add(peak_i)
        if len(events) > max_points:
            step = len(events) / max_points
            keep.update(int(i * step) for i in range(max_points))
        else:
            keep.update(range(len(events)))
        return [[events[i].seq, events[i].live, events[i].phase,
                 events[i].stage] for i in sorted(keep)]


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------

class _StageCtx:
    """Context manager pushing one MoE stage onto the profiler."""

    __slots__ = ("_prof", "_name")

    def __init__(self, prof: "Profiler", name: str) -> None:
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_StageCtx":
        self._prof._stages.append(self._name)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._prof._stages.pop()
        return False


class _NullCtx:
    """Shared no-op context manager returned when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullCtx":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CTX = _NullCtx()


class Profiler:
    """Op-level recorder: per-op costs, wall times, allocation ledger.

    ``clock`` defaults to :func:`time.perf_counter`, re-based to the
    profiler's creation so timelines start near zero.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 max_records: int = 200_000,
                 max_alloc_events: int = 100_000) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self._clock = clock
        self._t0 = clock()
        self.max_records = max_records
        self.records: list[OpRecord] = []
        self.records_dropped = 0
        self.ledger = AllocationLedger(max_events=max_alloc_events)
        self._stages: list[str] = []
        self._phase = PHASE_FORWARD
        self._seq = 0
        # tensor id -> tracked grad array id (see track_grad)
        self._grad_of: dict[int, int] = {}

    # -- clock ---------------------------------------------------------

    def clock(self) -> float:
        """Seconds on the profiler timeline (0 at creation)."""
        return self._clock() - self._t0

    # -- phase / stage contexts ----------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def current_stage(self) -> str:
        return self._stages[-1] if self._stages else STAGE_OTHER

    def stage(self, name: str) -> _StageCtx:
        """Attribute ops run inside the context to MoE stage ``name``."""
        return _StageCtx(self, name)

    @contextlib.contextmanager
    def backward_pass(self):
        """Attribute ops run inside the context to the backward phase."""
        previous = self._phase
        self._phase = PHASE_BACKWARD
        try:
            yield self
        finally:
            self._phase = previous

    # -- recording -----------------------------------------------------

    def _append(self, name: str, phase: str, stage: str, ts: float,
                wall: float, cost: OpCost) -> None:
        if len(self.records) >= self.max_records:
            self.records_dropped += 1
            return
        self.records.append(OpRecord(
            seq=self._seq, name=name, phase=phase, stage=stage, ts=ts,
            wall=wall, cost=cost))
        self._seq += 1

    def tape_op(self, out, name: str, t0: float, cost: OpCost,
                backward_cost: OpCost | None = None) -> None:
        """Record a completed forward op whose output tensor is ``out``.

        Measures wall time as ``clock() - t0``, tracks ``out.data`` in
        the allocation ledger (views are skipped — their memory belongs
        to the base array), registers a deterministic-release finalizer,
        and stashes ``(name, stage, backward_cost)`` on the tensor so
        the backward pass can attribute its cost without re-deriving
        shapes.
        """
        now = self.clock()
        stage_name = self.current_stage
        self._append(name, self._phase, stage_name, t0, now - t0, cost)
        data = out.data
        if data.base is None and data.nbytes:
            key = id(data)
            self.ledger.retain(key, data.nbytes, now, self._phase,
                               stage_name, "data")
            weakref.finalize(out, self._release_data, key)
        out._op = (name, stage_name,
                   backward_cost if backward_cost is not None else ZERO_COST)

    def _release_data(self, key: int) -> None:
        self.ledger.release(key, self.clock(), self._phase,
                            self.current_stage, "data")

    # -- gradient memory ----------------------------------------------

    def track_grad(self, tensor) -> None:
        """Track a freshly materialized ``tensor.grad`` array.

        Called from ``Tensor._accumulate`` on the None -> array
        transition.  View gradients retain their base array (the actual
        memory owner) so pass-through gradients shared between tensors
        are counted exactly once.
        """
        arr = tensor.grad
        if arr is None or not arr.nbytes:
            return
        target = arr if arr.base is None else arr.base
        tid = id(tensor)
        key = id(target)
        previous = self._grad_of.get(tid)
        if previous == key:
            return
        now = self.clock()
        meta = tensor._op
        stage_name = meta[1] if meta is not None else self.current_stage
        if previous is not None:
            self.ledger.release(previous, now, self._phase, stage_name,
                                "grad")
        self._grad_of[tid] = key
        self.ledger.retain(key, target.nbytes, now, self._phase,
                           stage_name, "grad")
        weakref.finalize(tensor, self._release_grad_for, tid)

    def release_grad(self, tensor) -> None:
        """Release the tracked gradient of ``tensor`` (zero_grad)."""
        self._release_grad_for(id(tensor))

    def _release_grad_for(self, tid: int) -> None:
        key = self._grad_of.pop(tid, None)
        if key is not None:
            self.ledger.release(key, self.clock(), self._phase,
                                self.current_stage, "grad")

    # -- backward execution -------------------------------------------

    def run_backward(self, node) -> None:
        """Execute and time one tape node's backward closure."""
        meta = node._op
        if meta is not None:
            name, stage_name, cost = meta
        else:
            name, stage_name, cost = "op", STAGE_OTHER, ZERO_COST
        t0 = self.clock()
        node._backward(node.grad)
        self._append(name, PHASE_BACKWARD, stage_name, t0,
                     self.clock() - t0, cost)

    # -- aggregation ---------------------------------------------------

    @staticmethod
    def _fold(records: list[OpRecord],
              key: Callable[[OpRecord], str]) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for rec in records:
            bucket = out.get(key(rec))
            if bucket is None:
                bucket = out[key(rec)] = {
                    "count": 0, "flops": 0.0, "bytes_read": 0.0,
                    "bytes_written": 0.0, "wall": 0.0}
            bucket["count"] += 1
            bucket["flops"] += rec.cost.flops
            bucket["bytes_read"] += rec.cost.bytes_read
            bucket["bytes_written"] += rec.cost.bytes_written
            bucket["wall"] += rec.wall
        return out

    def totals(self) -> dict[str, float]:
        flops = sum(r.cost.flops for r in self.records)
        br = sum(r.cost.bytes_read for r in self.records)
        bw = sum(r.cost.bytes_written for r in self.records)
        moved = br + bw
        return {
            "ops": len(self.records),
            "flops": flops,
            "bytes_read": br,
            "bytes_written": bw,
            "wall": sum(r.wall for r in self.records),
            "arithmetic_intensity": flops / moved if moved else 0.0,
        }

    def by_op(self) -> dict[str, dict[str, float]]:
        return self._fold(self.records, lambda r: r.name)

    def by_stage(self) -> dict[str, dict[str, float]]:
        return self._fold(self.records, lambda r: r.stage)

    def by_phase(self) -> dict[str, dict[str, float]]:
        return self._fold(self.records, lambda r: r.phase)

    def op_walls(self, name: str,
                 phase: str = PHASE_FORWARD) -> list[float]:
        """Wall times of every recorded ``name`` op in ``phase``.

        The calibration sweep uses this to pull per-kernel measurements
        out of a profiled run.
        """
        return [r.wall for r in self.records
                if r.name == name and r.phase == phase]

    def summary(self) -> dict[str, Any]:
        """JSON-serializable profile dump (the run-registry payload)."""
        return {
            "schema_version": 1,
            "totals": self.totals(),
            "by_op": self.by_op(),
            "by_stage": self.by_stage(),
            "by_phase": self.by_phase(),
            "peak_bytes": self.ledger.peak_bytes,
            "live_bytes": self.ledger.live_bytes,
            "alloc_events": len(self.ledger.events),
            "alloc_dropped": self.ledger.dropped,
            "records_dropped": self.records_dropped,
            "alloc_timeline": self.ledger.timeline(),
        }

    def render(self) -> str:
        """Aligned text summary for CLI output."""
        lines = ["== profile =="]
        t = self.totals()
        lines.append(
            f"  ops={int(t['ops'])} flops={t['flops']:.3e} "
            f"bytes={t['bytes_read'] + t['bytes_written']:.3e} "
            f"wall={t['wall']:.3e}s "
            f"intensity={t['arithmetic_intensity']:.2f} flop/B")
        lines.append(f"  peak_bytes={self.ledger.peak_bytes} "
                     f"(live={self.ledger.live_bytes})")
        for title, table in (("op", self.by_op()),
                             ("stage", self.by_stage()),
                             ("phase", self.by_phase())):
            lines.append(f"  -- by {title} --")
            ordered = sorted(table.items(), key=lambda kv: -kv[1]["wall"])
            for name, row in ordered:
                moved = row["bytes_read"] + row["bytes_written"]
                lines.append(
                    f"  {name:16s} n={int(row['count']):5d} "
                    f"flops={row['flops']:.3e} bytes={moved:.3e} "
                    f"wall={row['wall']:.3e}s")
        return "\n".join(lines)

    # -- trace export --------------------------------------------------

    def export_trace(self, recorder: TraceRecorder) -> None:
        """Emit op spans and counter tracks into a trace recorder.

        Spans land on ``prof/forward`` / ``prof/backward`` tracks; two
        Chrome counter series (``ph="C"``) carry the live-set bytes and
        cumulative FLOPs so the memory envelope renders as a filled
        chart in Perfetto.
        """
        cumulative = 0.0
        for rec in self.records:
            recorder.span(rec.name, CAT_PROF, rec.ts, rec.wall,
                          track=f"prof/{rec.phase}",
                          args={"stage": rec.stage,
                                "flops": rec.cost.flops,
                                "bytes_read": rec.cost.bytes_read,
                                "bytes_written": rec.cost.bytes_written,
                                "intensity":
                                    rec.cost.arithmetic_intensity})
            cumulative += rec.cost.flops
            recorder.counter("flops_cumulative", CAT_PROF,
                             rec.ts + rec.wall, {"flops": cumulative},
                             track="prof/counters")
        for ev in self.ledger.events:
            recorder.counter("live_bytes", CAT_PROF, ev.ts,
                             {"bytes": ev.live}, track="prof/counters")


# ----------------------------------------------------------------------
# Process-wide profiler (None = disabled, the default)
# ----------------------------------------------------------------------

_profiler: Profiler | None = None


def active() -> Profiler | None:
    """The process-wide profiler, or None when profiling is off.

    Instrumented hot paths call this once per op; the disabled path is
    a single module-global load.
    """
    return _profiler


get_profiler = active


def set_profiler(prof: Profiler | None) -> Profiler | None:
    """Install (or clear, with None) the process-wide profiler."""
    global _profiler
    previous = _profiler
    _profiler = prof
    return previous


@contextlib.contextmanager
def profiling(prof: Profiler | None = None):
    """Enable profiling for the dynamic extent of the context.

    Closes the allocation ledger on exit so stragglers released later
    (interpreter shutdown, garbage collection of leaked graphs) cannot
    distort the recorded timeline, and restores whatever profiler was
    installed before.
    """
    prof = prof if prof is not None else Profiler()
    previous = set_profiler(prof)
    try:
        yield prof
    finally:
        prof.ledger.close()
        set_profiler(previous)


def stage(name: str) -> _StageCtx | _NullCtx:
    """Hot-path stage helper: no-op singleton when profiling is off."""
    prof = _profiler
    if prof is None:
        return _NULL_CTX
    return prof.stage(name)


# ----------------------------------------------------------------------
# Closed-form cost helpers (shared with tests and calibration)
# ----------------------------------------------------------------------

def gemm_flops(m: int, n: int, k: int, batch: int = 1) -> float:
    """Multiply-accumulate count of ``(m, k) @ (k, n)``: ``2*m*n*k``."""
    return 2.0 * batch * m * n * k


def matmul_cost(a_shape: tuple[int, ...], b_shape: tuple[int, ...],
                out_shape: tuple[int, ...],
                itemsize: int | None = None) -> tuple[OpCost, OpCost]:
    """Forward and backward costs of (possibly batched) ``a @ b``.

    Forward: ``2 * |out| * k`` FLOPs.  Backward computes both
    ``grad @ b.T`` and ``a.T @ grad`` — two GEMMs of the same
    multiply-accumulate volume, so ``4 * |out| * k``.
    """
    isz = itemsize if itemsize is not None else default_itemsize()
    k = a_shape[-1]
    a_size = int(np.prod(a_shape))
    b_size = int(np.prod(b_shape))
    out_size = int(np.prod(out_shape))
    fwd = OpCost(flops=2.0 * out_size * k,
                 bytes_read=(a_size + b_size) * isz,
                 bytes_written=out_size * isz)
    bwd = OpCost(flops=4.0 * out_size * k,
                 bytes_read=(out_size + a_size + b_size) * isz,
                 bytes_written=(a_size + b_size) * isz)
    return fwd, bwd


#: Per-element FLOP factors (forward, backward) of the elementwise ops.
#: Conventions: add/sub/mul/compare = 1, divide = 4, transcendental
#: (exp/log/tanh/sqrt) = 6.  E.g. gelu forward is ~4 muls/adds for the
#: cubic polynomial, one tanh (6) and 4 more muls/adds = 14; softmax
#: pays max + subtract + exp + sum + divide per element = 12.
_EW: dict[str, tuple[float, float]] = {
    "add": (1.0, 1.0),
    "neg": (1.0, 1.0),
    "mul": (1.0, 2.0),
    "div": (4.0, 9.0),
    "pow": (7.0, 9.0),
    "relu": (2.0, 1.0),
    "gelu": (14.0, 18.0),
    "tanh": (6.0, 3.0),
    "exp": (6.0, 1.0),
    "log": (6.0, 4.0),
    "softmax": (12.0, 4.0),
    "log_softmax": (14.0, 3.0),
    "layer_norm": (9.0, 12.0),
}


def elementwise_cost(name: str, n: int, n_inputs: int = 1,
                     itemsize: int | None = None) -> tuple[OpCost, OpCost]:
    """Forward/backward cost of an elementwise op over ``n`` elements.

    Forward reads every input and writes the output; backward reads the
    upstream gradient plus the saved inputs and writes one gradient per
    input.
    """
    isz = itemsize if itemsize is not None else default_itemsize()
    f_fwd, f_bwd = _EW[name]
    fwd = OpCost(flops=f_fwd * n,
                 bytes_read=n_inputs * n * isz,
                 bytes_written=n * isz)
    bwd = OpCost(flops=f_bwd * n,
                 bytes_read=(1 + n_inputs) * n * isz,
                 bytes_written=n_inputs * n * isz)
    return fwd, bwd


def reduction_cost(n_in: int, n_out: int,
                   itemsize: int | None = None) -> tuple[OpCost, OpCost]:
    """Cost of a sum-reduction from ``n_in`` to ``n_out`` elements."""
    isz = itemsize if itemsize is not None else default_itemsize()
    fwd = OpCost(flops=float(max(n_in - n_out, 0)),
                 bytes_read=n_in * isz,
                 bytes_written=n_out * isz)
    bwd = OpCost(flops=0.0,
                 bytes_read=n_out * isz,
                 bytes_written=n_in * isz)
    return fwd, bwd


def routes_of(crit) -> int:
    """Live routes ``r <= k*T``: slots that are valid with nonzero gate.

    Matches ``repro.moe.encode._flat_routes`` — the element count the
    sparse kernels actually touch.
    """
    return int(np.count_nonzero(crit.valid & (crit.gates != 0)))


def sparse_encode_cost(routes: int, cells: int, model_dim: int,
                       itemsize: int | None = None) -> OpCost:
    """fast_encode forward: zero-fill ``cells = E*dC`` rows, then
    scatter-copy ``routes`` rows of ``model_dim`` — no FLOPs, pure data
    movement (``O(T*k*M)`` useful elements)."""
    isz = itemsize if itemsize is not None else default_itemsize()
    return OpCost(flops=0.0,
                  bytes_read=routes * model_dim * isz,
                  bytes_written=(cells + routes) * model_dim * isz)


def sparse_encode_backward_cost(routes: int, tokens: int, model_dim: int,
                                itemsize: int | None = None) -> OpCost:
    """fast_encode backward: gather ``routes`` cell-gradient rows and
    scatter-add into ``tokens`` token gradients."""
    isz = itemsize if itemsize is not None else default_itemsize()
    return OpCost(flops=float(routes * model_dim),
                  bytes_read=2.0 * routes * model_dim * isz,
                  bytes_written=(tokens + routes) * model_dim * isz)


def sparse_decode_cost(routes: int, tokens: int, model_dim: int,
                       itemsize: int | None = None) -> OpCost:
    """fast_decode forward: per route one gate multiply and one add per
    element (``2*r*M`` FLOPs) into a zeroed ``(T, M)`` output."""
    isz = itemsize if itemsize is not None else default_itemsize()
    return OpCost(flops=2.0 * routes * model_dim,
                  bytes_read=(2.0 * routes * model_dim + routes) * isz,
                  bytes_written=(tokens + routes) * model_dim * isz)


def sparse_decode_backward_cost(routes: int, cells: int, gate_slots: int,
                                model_dim: int,
                                itemsize: int | None = None) -> OpCost:
    """fast_decode backward: grad_z scatter-add (``2*r*M``) plus the
    per-route gate-gradient dot products (``2*r*M``)."""
    isz = itemsize if itemsize is not None else default_itemsize()
    return OpCost(
        flops=4.0 * routes * model_dim,
        bytes_read=3.0 * routes * model_dim * isz,
        bytes_written=((cells + routes) * model_dim + gate_slots) * isz)


def dense_encode_flops(tokens: int, num_experts: int, capacity: int,
                       model_dim: int) -> float:
    """The dense GShard dispatch einsum ``"tec,tm->ecm"``:
    ``O(T*E*C*M)`` multiply-adds, overwhelmingly zeros (Figure 24's
    dense-vs-sparse gap)."""
    return 2.0 * tokens * num_experts * capacity * model_dim
