"""Persistent, append-only training-run registry (``repro.obs.runs``).

The missing piece between per-step instrumentation (PR 1) and offline
trace/bench analysis (PR 3): nothing so far *persisted* telemetry
across process lifetimes.  A **run** is one directory under the
registry root (``REPRO_RUNS_DIR``, default ``.repro_runs/``):

``<root>/<run_id>/manifest.json``
    Schema-versioned identity: run id, creation timestamp (passed in
    or wall clock), seed, substrate, free-form config dict plus its
    :func:`repro.bench.report.config_fingerprint`, best-effort
    ``git describe``, status, and — once finalized — a summary dict.
``<root>/<run_id>/events.jsonl``
    The append-only event stream.  One JSON object per line:
    ``{"schema": 1, "seq": n, "kind": str, "step": int|null,
    "data": {...}}``.  Kinds in use: ``train_begin`` / ``step`` /
    ``step_skipped`` / ``routing`` / ``routing_load`` /
    ``routing_affinity`` / ``alert`` / ``fault`` / ``recovery`` /
    ``strategy_switch`` / ``ckpt_saved`` / ``ckpt_restored`` /
    ``eval`` / ``bench_table`` / ``bench_result``.
``<root>/<run_id>/metrics.json``
    The final :class:`repro.obs.MetricsRegistry` snapshot (written by
    :meth:`RunWriter.finalize` when an observer was active).

A module-global *active run* mirrors the observer pattern of
:mod:`repro.obs`: instrumented call sites do one ``is None`` check via
:func:`get_run` and stay zero-cost when no run is recording.  The
trainer auto-opens a run when ``REPRO_RUNS_DIR`` is set, benches do the
same through the CLI, and :class:`RunStore` answers the offline
questions (``repro runs list|show|diff|gc``, ``repro dashboard``).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO, Iterator, Mapping

from repro.bench.report import config_fingerprint
from repro.obs.overhead import get_ledger, perf_ns

__all__ = [
    "RUN_SCHEMA_VERSION",
    "DEFAULT_RUNS_DIR",
    "RunManifest",
    "RunWriter",
    "RunStore",
    "MetricDelta",
    "runs_root",
    "env_runs_root",
    "get_run",
    "set_run",
    "recording_run",
    "parse_events_text",
    "add_stream_hook",
    "remove_stream_hook",
]

RUN_SCHEMA_VERSION = 1

#: Registry root used when ``REPRO_RUNS_DIR`` is unset.
DEFAULT_RUNS_DIR = ".repro_runs"

_MANIFEST = "manifest.json"
_EVENTS = "events.jsonl"
_METRICS = "metrics.json"


def parse_events_text(text: str) -> list[dict]:
    """Parse an ``events.jsonl`` payload, tolerating a torn tail.

    A crashed or still-writing concurrent writer can leave the *final*
    line mid-record; readers (the store, the resume path, the live
    tailer, the dashboard) skip that trailing partial line instead of
    raising.  Corruption anywhere *before* the tail is still an error
    — that cannot be produced by an interrupted append-and-flush
    writer, so it indicates real damage worth surfacing.
    """
    lines = text.splitlines()
    last = len(lines) - 1
    while last >= 0 and not lines[last].strip():
        last -= 1
    events: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == last:
                break          # torn final line from a live writer
            raise
    return events


# Observers of the live event stream (the alert engine's fault
# tracker).  Module-level so any emitter — trainer, serving engine,
# scenario engine, resilience paths — feeds the same hooks; emit()
# pays one truthiness check when no hook is registered.
_stream_hooks: list = []


def add_stream_hook(hook) -> None:
    """Register ``hook(event_dict)`` to run on every emitted event."""
    _stream_hooks.append(hook)


def remove_stream_hook(hook) -> None:
    """Unregister a hook previously added (no-op when absent)."""
    try:
        _stream_hooks.remove(hook)
    except ValueError:
        pass


def env_runs_root() -> Path | None:
    """``REPRO_RUNS_DIR`` as a path, or None when recording is off."""
    value = os.environ.get("REPRO_RUNS_DIR")
    return Path(value) if value else None


def runs_root(root: str | Path | None = None) -> Path:
    """Resolve the registry root: explicit arg > env var > default."""
    if root is not None:
        return Path(root)
    return env_runs_root() or Path(DEFAULT_RUNS_DIR)


def _git_describe() -> str:
    """Best-effort ``git describe`` of the working tree ("unknown" when
    git or the repository is unavailable)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else "unknown"


@dataclass
class RunManifest:
    """Schema-versioned identity record of one run."""

    run_id: str
    created_at: float
    seed: int | None = None
    substrate: str = "functional"
    config: dict = field(default_factory=dict)
    git: str = "unknown"
    status: str = "running"            # or "complete"
    summary: dict = field(default_factory=dict)
    schema: int = RUN_SCHEMA_VERSION

    @property
    def fingerprint(self) -> str:
        return config_fingerprint(self.config)

    def to_json_obj(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "seed": self.seed,
            "substrate": self.substrate,
            "config": dict(self.config),
            "fingerprint": self.fingerprint,
            "git": self.git,
            "status": self.status,
            "summary": dict(self.summary),
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "RunManifest":
        if obj.get("schema") != RUN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run manifest schema {obj.get('schema')!r}, "
                f"expected {RUN_SCHEMA_VERSION}")
        return cls(
            run_id=obj["run_id"],
            created_at=float(obj["created_at"]),
            seed=obj.get("seed"),
            substrate=obj.get("substrate", "functional"),
            config=dict(obj.get("config", {})),
            git=obj.get("git", "unknown"),
            status=obj.get("status", "running"),
            summary=dict(obj.get("summary", {})),
            schema=int(obj["schema"]))


def _write_manifest(directory: Path, manifest: RunManifest) -> None:
    (directory / _MANIFEST).write_text(
        json.dumps(manifest.to_json_obj(), indent=1, sort_keys=True)
        + "\n")


class RunWriter:
    """Appends one run's manifest/event-stream/metrics to its directory.

    Create with :meth:`create` (new run directory) or :meth:`resume`
    (reopen an existing one after a checkpoint restore).  ``emit`` is
    the hot path: one JSON line appended and flushed per event, so a
    crashed run keeps everything recorded up to the crash.
    """

    def __init__(self, directory: Path, manifest: RunManifest,
                 next_seq: int = 0) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.current_step: int | None = None
        self._seq = next_seq
        self._fh: IO[str] | None = None

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, root: str | Path | None = None,
               run_id: str | None = None, seed: int | None = None,
               config: Mapping | None = None,
               substrate: str = "functional",
               created_at: float | None = None) -> "RunWriter":
        """Make ``<root>/<run_id>/`` and write its manifest.

        ``created_at`` is the manifest timestamp every ordering
        operation (``list``, ``latest``, ``gc``) sorts by; pass it
        explicitly for deterministic registries (tests, replays) or
        leave None for wall clock.  A generated ``run_id`` combines the
        timestamp and config fingerprint, with a numeric suffix on
        collision.
        """
        base = runs_root(root)
        base.mkdir(parents=True, exist_ok=True)
        ts = time.time() if created_at is None else float(created_at)
        manifest = RunManifest(
            run_id="", created_at=ts, seed=seed, substrate=substrate,
            config=dict(config or {}), git=_git_describe())
        if run_id is None:
            stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(ts))
            run_id = f"run-{stamp}-{manifest.fingerprint[:6]}"
        candidate, n = run_id, 1
        while (base / candidate).exists():
            n += 1
            candidate = f"{run_id}-{n}"
        manifest.run_id = candidate
        directory = base / candidate
        directory.mkdir()
        _write_manifest(directory, manifest)
        (directory / _EVENTS).touch()
        return cls(directory, manifest)

    @classmethod
    def resume(cls, directory: str | Path,
               from_step: int | None = None) -> "RunWriter":
        """Reopen an existing run directory for appending.

        ``from_step`` is the checkpoint step a restored trainer will
        continue from: stepped events at ``step >= from_step`` (and
        stale evaluation records, ``step < 0``) are compacted away so
        the re-run steps append without duplicates — the one permitted
        rewrite of the otherwise append-only stream.
        """
        directory = Path(directory)
        manifest = RunManifest.from_json_obj(
            json.loads((directory / _MANIFEST).read_text()))
        manifest.status = "running"
        _write_manifest(directory, manifest)
        events_path = directory / _EVENTS
        raw = events_path.read_text() if events_path.exists() else ""
        kept: list[dict] = []
        for event in parse_events_text(raw):
            step = event.get("step")
            if from_step is not None and step is not None and (
                    step >= from_step or step < 0):
                continue
            kept.append(event)
        # A torn final line (writer killed mid-write) must be
        # truncated before appending, or the next event would be
        # welded onto the fragment and lost with it.
        torn = bool(raw) and not raw.endswith("\n")
        if from_step is not None or torn:
            events_path.write_text(
                "".join(json.dumps(e) + "\n" for e in kept))
        next_seq = 1 + max((e.get("seq", -1) for e in kept), default=-1)
        writer = cls(directory, manifest, next_seq=next_seq)
        return writer

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- event stream --------------------------------------------------

    def begin_step(self, step: int) -> None:
        """Default ``step`` attached to subsequent layer-level events."""
        self.current_step = step

    def emit(self, kind: str, step: int | None = None,
             data: Mapping | None = None) -> None:
        """Append one event line (flushed, so crashes lose nothing)."""
        led = get_ledger()
        t0 = perf_ns() if led is not None else 0
        if self._fh is None:
            self._fh = open(self.directory / _EVENTS, "a")
        event = {"schema": RUN_SCHEMA_VERSION, "seq": self._seq,
                 "kind": kind,
                 "step": self.current_step if step is None else step,
                 "data": dict(data or {})}
        self._seq += 1
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()
        if led is not None:
            led.add("events", perf_ns() - t0)
        if _stream_hooks:
            for hook in list(_stream_hooks):
                hook(event)

    def update_summary(self, summary: Mapping) -> None:
        """Merge keys into the manifest summary without completing the
        run — lets instrumented code (the trainer) contribute metrics
        to a run someone else opened and will finalize."""
        self.manifest.summary.update(summary)
        _write_manifest(self.directory, self.manifest)

    def finalize(self, registry_snapshot: Mapping | None = None,
                 summary: Mapping | None = None) -> None:
        """Mark the run complete; persist summary + metrics snapshot."""
        if registry_snapshot is not None:
            (self.directory / _METRICS).write_text(
                json.dumps(registry_snapshot, indent=1, sort_keys=True)
                + "\n")
        self.manifest.status = "complete"
        if summary is not None:
            self.manifest.summary = dict(summary)
        _write_manifest(self.directory, self.manifest)
        self.close()


# ----------------------------------------------------------------------
# Process-wide active run (None = not recording, the default)
# ----------------------------------------------------------------------

_run: RunWriter | None = None


def get_run() -> RunWriter | None:
    return _run


def set_run(run: RunWriter | None) -> RunWriter | None:
    """Install (or clear, with None) the process-wide active run."""
    global _run
    previous = _run
    _run = run
    return previous


class recording_run:
    """Context manager: create, install, and finalize a run.

    ::

        with recording_run(config={"bench": "fig25"}) as run:
            ...             # instrumented code emits into the run
    """

    def __init__(self, **create_kwargs: Any) -> None:
        self._kwargs = create_kwargs
        self.run: RunWriter | None = None
        self._previous: RunWriter | None = None

    def __enter__(self) -> RunWriter:
        self.run = RunWriter.create(**self._kwargs)
        self._previous = set_run(self.run)
        return self.run

    def __exit__(self, *exc: object) -> None:
        assert self.run is not None
        if self.run.manifest.status != "complete":
            self.run.finalize()
        set_run(self._previous)


# ----------------------------------------------------------------------
# Offline queries: list / show / diff / gc
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two runs (``repro runs diff``)."""

    name: str
    a: float | None
    b: float | None

    @property
    def delta(self) -> float | None:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a


class RunStore:
    """Read-side API over a registry root."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = runs_root(root)

    def run_ids(self) -> list[str]:
        """All run ids, oldest first (manifest timestamp, then id)."""
        return [m.run_id for m in self.manifests()]

    def manifests(self) -> list[RunManifest]:
        if not self.root.is_dir():
            return []
        out = []
        for path in self.root.iterdir():
            if (path / _MANIFEST).is_file():
                out.append(RunManifest.from_json_obj(
                    json.loads((path / _MANIFEST).read_text())))
        out.sort(key=lambda m: (m.created_at, m.run_id))
        return out

    def path(self, run_id: str) -> Path:
        return self.root / run_id

    def manifest(self, run_id: str) -> RunManifest:
        path = self.path(run_id) / _MANIFEST
        if not path.is_file():
            raise KeyError(f"no run {run_id!r} under {self.root}")
        return RunManifest.from_json_obj(json.loads(path.read_text()))

    def events(self, run_id: str) -> list[dict]:
        path = self.path(run_id) / _EVENTS
        if not path.is_file():
            return []
        return parse_events_text(path.read_text())

    def iter_events(self, run_id: str,
                    kind: str | None = None) -> Iterator[dict]:
        for event in self.events(run_id):
            if kind is None or event.get("kind") == kind:
                yield event

    def metrics(self, run_id: str) -> dict | None:
        path = self.path(run_id) / _METRICS
        if not path.is_file():
            return None
        return json.loads(path.read_text())

    def latest(self) -> str:
        manifests = self.manifests()
        if not manifests:
            raise KeyError(f"no runs under {self.root}")
        return manifests[-1].run_id

    def resolve(self, token: str) -> str:
        """Run id from ``"latest"``, an exact id, or a unique prefix."""
        if token == "latest":
            return self.latest()
        ids = self.run_ids()
        if token in ids:
            return token
        matches = [r for r in ids if r.startswith(token)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"no run matching {token!r} under {self.root}")
        raise KeyError(f"ambiguous run prefix {token!r}: "
                       f"{', '.join(sorted(matches))}")

    # -- diff ----------------------------------------------------------

    def _scalars(self, run_id: str) -> dict[str, float]:
        """Comparable scalars of one run: manifest summary values plus
        the final counters/gauges of the metrics snapshot."""
        out: dict[str, float] = {}
        for key, value in self.manifest(run_id).summary.items():
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                out[f"summary.{key}"] = float(value)
        snapshot = self.metrics(run_id) or {}
        for family in ("counters", "gauges"):
            for name, value in snapshot.get(family, {}).items():
                out[f"{family}.{name}"] = float(value)
        return out

    def diff(self, run_a: str, run_b: str) -> list[MetricDelta]:
        """Per-metric deltas between two runs (b minus a)."""
        a = self._scalars(self.resolve(run_a))
        b = self._scalars(self.resolve(run_b))
        return [MetricDelta(name, a.get(name), b.get(name))
                for name in sorted(set(a) | set(b))]

    # -- gc ------------------------------------------------------------

    def gc(self, keep: int, dry_run: bool = False) -> list[str]:
        """Prune the oldest runs, keeping the newest ``keep``.

        Ordering uses the manifest ``created_at`` (the timestamp the
        run was *created with*, not the wall clock at gc time), so
        pruning is deterministic and unit-testable.  Returns the run
        ids removed (or, with ``dry_run``, those that would be).
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        manifests = self.manifests()
        doomed = manifests[:max(0, len(manifests) - keep)]
        removed = []
        for manifest in doomed:
            if not dry_run:
                shutil.rmtree(self.path(manifest.run_id))
            removed.append(manifest.run_id)
        return removed
