"""Routing provenance: token-path recording, affinity mining, and the
placement-aware cross-node hop ledger (``repro.obs.routing``).

Tutel's adaptive parallelism switches layouts on coarse signals, but
the all-to-all cost is ultimately set by *where tokens go*: which
experts fire together across layers, and how many token-hops cross a
node boundary under the current expert placement.  This module is the
observational half of a MoETuner-style placement optimizer:

* :class:`RoutingRecorder` accumulates, per step/batch, the
  per-(layer, expert) routed-token load, the post-drop *dispatched*
  counts bucketed by token source, and the layer-to-layer
  expert-transition counts (the affinity matrix: how many tokens whose
  primary expert was ``i`` at layer ``l`` had primary expert ``j`` at
  layer ``l+1``);
* the recorder emits schema-versioned ``routing_load`` /
  ``routing_affinity`` events into the run registry
  (:mod:`repro.obs.runs`), and :func:`profile_from_events` folds any
  recorded stream back into a :class:`RoutingProfile`;
* :func:`hop_ledger` attributes every dispatched token of a profile to
  an intra-GPU / intra-node / inter-node hop under a given
  :class:`~repro.parallel.placement.ExpertPlacement` and
  :class:`~repro.cluster.topology.ClusterTopology`, and prices the
  inter-node bytes with the topology's link coefficients (pass a
  calibrated topology's ``at_world`` result to price on fitted ones);
* :func:`whatif_placements` re-prices the *same* recorded traffic
  under alternative placements (round-robin vs ``count_per_node``
  variants) without re-running the model.

Source-bucket convention
------------------------
Recording happens without knowing the eventual world size, so each
layer's dispatched counts are bucketed by token residue
``t % SRC_BUCKETS``.  At scoring time the source GPU of a token is its
data-parallel home rank ``t % num_gpus``; this is recoverable from the
bucket exactly when ``num_gpus`` divides :data:`SRC_BUCKETS`, which is
the invariant :func:`hop_ledger` enforces.  For sharded placements the
destination shard of a dispatched token is the deterministic
``hosts[src_gpu % shards]`` stripe — every surviving slot is exactly
one token-hop, so the ledger's three classes always sum to the total
dispatched (post-drop) slot count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.moe.gating import RoutingCriteria
from repro.moe.metrics import load_gini
from repro.parallel.placement import (
    ExpertPlacement,
    build_placement,
    round_robin_placement,
)

__all__ = [
    "ROUTING_SCHEMA",
    "ROUTING_ARTIFACT",
    "SRC_BUCKETS",
    "RoutingRecorder",
    "RoutingProfile",
    "HopLedger",
    "PlacementScore",
    "profile_from_events",
    "hop_ledger",
    "dispatch_schedule",
    "whatif_placements",
    "candidate_placements",
    "synthetic_profile",
    "routing_metrics",
    "emit_routing",
    "render_routing",
    "record_gauges",
]

#: Schema version stamped into every routing_load / routing_affinity
#: event payload; bump on any incompatible layout change.
ROUTING_SCHEMA = 1

#: Token-source residue classes recorded per layer.  A placement with
#: ``num_gpus`` dividing this (1, 2, 4, 8, 16) can be re-priced exactly
#: from recorded traffic; others raise in :func:`hop_ledger`.
SRC_BUCKETS = 16


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------

class RoutingRecorder:
    """Accumulates routing provenance across the steps of one run.

    ``observe_batch`` takes the :class:`RoutingCriteria` of every MoE
    layer for one batch, in layer order, and folds them into integer
    count arrays; ``emit`` appends the batch's schema-versioned events
    to a run writer.  All counts are exact integers, so two runs with
    the same seed produce bit-identical records.
    """

    def __init__(self, num_layers: int, num_experts: int) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if num_experts < 1:
            raise ValueError(
                f"num_experts must be >= 1, got {num_experts}")
        self.num_layers = num_layers
        self.num_experts = num_experts
        #: routed slots per (layer, expert), dropped included.
        self.loads = np.zeros((num_layers, num_experts), dtype=np.int64)
        #: post-drop slots per (layer, src bucket, expert).
        self.dispatched = np.zeros(
            (num_layers, SRC_BUCKETS, num_experts), dtype=np.int64)
        #: primary-route transitions per (layer pair, expert, expert).
        self.transitions = np.zeros(
            (max(0, num_layers - 1), num_experts, num_experts),
            dtype=np.int64)
        self.batches = 0
        self.tokens = 0

    def observe_batch(self,
                      crits: Sequence[RoutingCriteria]) -> None:
        """Fold one batch's per-layer routing decisions in."""
        from repro.obs.overhead import get_ledger, perf_ns
        led = get_ledger()
        t0 = perf_ns() if led is not None else 0
        self._fold(crits)
        if led is not None:
            led.add("routing", perf_ns() - t0)

    def _fold(self, crits: Sequence[RoutingCriteria]) -> None:
        if len(crits) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} layer criteria, "
                f"got {len(crits)}")
        tokens = crits[0].num_tokens
        for li, crit in enumerate(crits):
            if crit.num_experts != self.num_experts:
                raise ValueError(
                    f"layer {li} routes over {crit.num_experts} "
                    f"experts, recorder has {self.num_experts}")
            if crit.num_tokens != tokens:
                raise ValueError(
                    f"layer {li} saw {crit.num_tokens} tokens, "
                    f"layer 0 saw {tokens}")
            self.loads[li] += np.bincount(
                crit.idxs.reshape(-1), minlength=self.num_experts)
            valid = crit.valid
            if valid.any():
                slots, toks = np.nonzero(valid)
                buckets = toks % SRC_BUCKETS
                np.add.at(self.dispatched[li],
                          (buckets, crit.idxs[slots, toks]), 1)
        for li in range(self.num_layers - 1):
            # Affinity counts the primary (rank-0) route of each token
            # at consecutive layers; secondary top-k routes show in the
            # load but not the transition matrix.
            np.add.at(self.transitions[li],
                      (crits[li].idxs[0], crits[li + 1].idxs[0]), 1)
        self.batches += 1
        self.tokens += tokens

    def emit(self, run, step: int | None = None) -> None:
        """Append the cumulative counts as one event pair.

        Call once per step/batch right after ``observe_batch`` — the
        payloads carry the *running* totals, so the last event pair of
        a run is its aggregate and replaying any prefix of the stream
        is consistent (the registry is append-only; per-step deltas
        would make a truncated stream unreadable).
        """
        run.emit("routing_load", step=step, data={
            "schema": ROUTING_SCHEMA,
            "num_layers": self.num_layers,
            "num_experts": self.num_experts,
            "src_buckets": SRC_BUCKETS,
            "batches": self.batches,
            "tokens": self.tokens,
            "loads": self.loads.tolist(),
            "dispatched": self.dispatched.tolist(),
        })
        run.emit("routing_affinity", step=step, data={
            "schema": ROUTING_SCHEMA,
            "num_layers": self.num_layers,
            "num_experts": self.num_experts,
            "batches": self.batches,
            "tokens": self.tokens,
            "transitions": self.transitions.tolist(),
        })

    def profile(self) -> "RoutingProfile":
        """Freeze the accumulated counts into a profile."""
        return RoutingProfile(
            num_layers=self.num_layers,
            num_experts=self.num_experts,
            loads=self.loads.copy(),
            dispatched=self.dispatched.copy(),
            transitions=self.transitions.copy(),
            batches=self.batches,
            tokens=self.tokens)


# ----------------------------------------------------------------------
# The aggregated profile
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RoutingProfile:
    """Aggregated routing provenance of one run.

    ``loads`` is ``(L, E)`` routed-slot counts (dropped included);
    ``dispatched`` is ``(L, SRC_BUCKETS, E)`` post-drop counts bucketed
    by token source; ``transitions`` is ``(L-1, E, E)`` primary-route
    transition counts.  All integer arrays.
    """

    num_layers: int
    num_experts: int
    loads: np.ndarray
    dispatched: np.ndarray
    transitions: np.ndarray
    batches: int
    tokens: int

    @property
    def total_dispatched(self) -> int:
        """Post-drop (token, slot) routes summed over all layers."""
        return int(self.dispatched.sum())

    @property
    def dropped_slots(self) -> int:
        return int(self.loads.sum()) - self.total_dispatched

    def load_gini(self) -> float:
        """Gini of the per-(layer, expert) routed load."""
        return load_gini(self.loads.reshape(-1))

    def affinity(self) -> np.ndarray:
        """The ``(E, E)`` transition matrix summed over layer pairs."""
        if self.transitions.size == 0:
            return np.zeros((self.num_experts, self.num_experts),
                            dtype=np.int64)
        return self.transitions.sum(axis=0)

    def self_affinity_fraction(self) -> float:
        """Share of transitions that stay on the same expert index —
        the diagonal mass MoETuner's co-placement argument keys on."""
        total = int(self.transitions.sum())
        if total == 0:
            return 0.0
        return float(np.trace(self.affinity())) / total


def profile_from_events(events: Iterable[Mapping]) -> RoutingProfile:
    """Rebuild a profile from a run's recorded event stream.

    Payloads carry running totals, so only the *last* ``routing_load``
    and ``routing_affinity`` events matter; earlier ones are prefixes.
    Raises ``ValueError`` when the stream has no routing events or an
    unknown schema version.
    """
    last_load: Mapping | None = None
    last_affinity: Mapping | None = None
    for event in events:
        kind = event.get("kind")
        if kind not in ("routing_load", "routing_affinity"):
            continue
        data = event.get("data") or {}
        schema = data.get("schema")
        if schema != ROUTING_SCHEMA:
            raise ValueError(
                f"unsupported {kind} schema {schema!r}, expected "
                f"{ROUTING_SCHEMA}")
        if kind == "routing_load":
            last_load = data
        else:
            last_affinity = data
    if last_load is None:
        raise ValueError("run has no routing_load events "
                         "(record with repro.obs.routing)")
    if last_load.get("src_buckets") != SRC_BUCKETS:
        raise ValueError(
            f"recorded src_buckets={last_load.get('src_buckets')!r} "
            f"does not match this build's {SRC_BUCKETS}")
    num_layers = int(last_load["num_layers"])
    num_experts = int(last_load["num_experts"])
    transitions = (np.asarray(last_affinity["transitions"],
                              dtype=np.int64)
                   if last_affinity is not None else
                   np.zeros((max(0, num_layers - 1), num_experts,
                             num_experts), dtype=np.int64))
    if num_layers > 1:
        transitions = transitions.reshape(
            (num_layers - 1, num_experts, num_experts))
    return RoutingProfile(
        num_layers=num_layers,
        num_experts=num_experts,
        loads=np.asarray(last_load["loads"],
                         dtype=np.int64).reshape((num_layers,
                                                  num_experts)),
        dispatched=np.asarray(last_load["dispatched"],
                              dtype=np.int64).reshape(
                                  (num_layers, SRC_BUCKETS,
                                   num_experts)),
        transitions=transitions,
        batches=int(last_load["batches"]),
        tokens=int(last_load["tokens"]))


# ----------------------------------------------------------------------
# The hop ledger
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class HopLedger:
    """Every dispatched token attributed to a hop-locality class.

    Counts are exact integers; ``conserves()`` states the invariant the
    property tests pin: the three classes partition the dispatched
    slots, so their sum equals ``total_hops`` exactly (and converting
    the counts through float32/float64 cannot change that — they stay
    integral well below 2**24).
    """

    placement_name: str
    num_gpus: int
    intra_gpu: int
    intra_node: int
    inter_node: int
    inter_node_bytes: int
    intra_node_bytes: int
    #: Per-source-GPU serialized inter-node wire seconds; the headline
    #: ``priced_seconds`` is their max (the bottleneck source GPU),
    #: which equals the cluster simulator's makespan for the same
    #: message set — the agreement the property test checks.
    inter_seconds_by_src: tuple[float, ...] = ()
    per_layer: tuple[tuple[int, int, int], ...] = ()

    @property
    def total_hops(self) -> int:
        return self.intra_gpu + self.intra_node + self.inter_node

    @property
    def priced_seconds(self) -> float:
        if not self.inter_seconds_by_src:
            return 0.0
        return max(self.inter_seconds_by_src)

    @property
    def inter_node_fraction(self) -> float:
        if self.total_hops == 0:
            return 0.0
        return self.inter_node / self.total_hops

    def conserves(self, total_dispatched: int) -> bool:
        return self.total_hops == total_dispatched


def _check_world(profile: RoutingProfile, placement: ExpertPlacement,
                 topology: ClusterTopology) -> None:
    if placement.num_global_experts != profile.num_experts:
        raise ValueError(
            f"placement hosts {placement.num_global_experts} experts, "
            f"profile routed over {profile.num_experts}")
    if topology.num_gpus < placement.num_gpus:
        raise ValueError(
            f"topology spans {topology.num_gpus} GPUs, placement "
            f"needs {placement.num_gpus}")
    if SRC_BUCKETS % placement.num_gpus != 0:
        raise ValueError(
            f"num_gpus={placement.num_gpus} does not divide the "
            f"recorded {SRC_BUCKETS} source buckets; the token->source "
            f"map is not recoverable")


def hop_ledger(profile: RoutingProfile, placement: ExpertPlacement,
               topology: ClusterTopology, *,
               bytes_per_token: int,
               name: str = "placement") -> HopLedger:
    """Attribute the profile's dispatched traffic to hop classes.

    A dispatched token's source GPU is its data-parallel home rank
    ``t % num_gpus``; its destination is the GPU hosting the selected
    expert (for sharded experts, the ``hosts[src % shards]`` stripe).
    Each surviving slot is exactly one hop: same GPU → intra-GPU, same
    node → intra-node, else inter-node.  Inter-node bytes are priced on
    ``topology.inter_link`` as one aggregated message per (src, dst)
    pair, serialized per source GPU — pass a calibrated topology to
    price on fitted link coefficients.
    """
    if bytes_per_token < 1:
        raise ValueError(
            f"bytes_per_token must be >= 1, got {bytes_per_token}")
    _check_world(profile, placement, topology)
    num_gpus = placement.num_gpus
    intra_gpu = intra_node = inter_node = 0
    per_layer: list[tuple[int, int, int]] = []
    pair_bytes: dict[tuple[int, int], int] = {}
    intra_bytes = 0
    for li in range(profile.num_layers):
        l_gpu = l_node = l_inter = 0
        for bucket in range(SRC_BUCKETS):
            src = bucket % num_gpus
            row = profile.dispatched[li, bucket]
            for expert in range(profile.num_experts):
                count = int(row[expert])
                if count == 0:
                    continue
                hosts = placement.expert_to_gpus[expert]
                dst = hosts[src % len(hosts)]
                if dst == src:
                    l_gpu += count
                elif topology.same_node(src, dst):
                    l_node += count
                    intra_bytes += count * bytes_per_token
                else:
                    l_inter += count
                    key = (src, dst)
                    pair_bytes[key] = (pair_bytes.get(key, 0)
                                       + count * bytes_per_token)
        intra_gpu += l_gpu
        intra_node += l_node
        inter_node += l_inter
        per_layer.append((l_gpu, l_node, l_inter))
    by_src = [0.0] * num_gpus
    for (src, _dst), nbytes in sorted(pair_bytes.items()):
        by_src[src] += topology.inter_link.message_time(nbytes)
    return HopLedger(
        placement_name=name,
        num_gpus=num_gpus,
        intra_gpu=intra_gpu,
        intra_node=intra_node,
        inter_node=inter_node,
        inter_node_bytes=sum(pair_bytes.values()),
        intra_node_bytes=intra_bytes,
        inter_seconds_by_src=tuple(by_src),
        per_layer=tuple(per_layer))


def dispatch_schedule(profile: RoutingProfile,
                      placement: ExpertPlacement,
                      topology: ClusterTopology, *,
                      bytes_per_token: int):
    """The ledger's inter-node message set as a simulator Schedule.

    One comm op per (src, dst) GPU pair carrying that pair's aggregated
    dispatch bytes, serialized on the source GPU's comm stream — the
    exact traffic :func:`hop_ledger` prices analytically, in simulable
    form.  ``simulate(schedule).makespan`` equals the ledger's
    ``priced_seconds``; the property test pins that agreement.
    """
    from repro.cluster.simulator import Schedule

    _check_world(profile, placement, topology)
    num_gpus = placement.num_gpus
    pair_bytes: dict[tuple[int, int], int] = {}
    for li in range(profile.num_layers):
        for bucket in range(SRC_BUCKETS):
            src = bucket % num_gpus
            row = profile.dispatched[li, bucket]
            for expert in range(profile.num_experts):
                count = int(row[expert])
                if count == 0:
                    continue
                hosts = placement.expert_to_gpus[expert]
                dst = hosts[src % len(hosts)]
                if dst != src and not topology.same_node(src, dst):
                    key = (src, dst)
                    pair_bytes[key] = (pair_bytes.get(key, 0)
                                       + count * bytes_per_token)
    schedule = Schedule()
    for (src, dst), nbytes in sorted(pair_bytes.items()):
        schedule.new_op(
            work=topology.inter_link.message_time(nbytes),
            gpu=src, stream="comm", kind="comm",
            label=f"dispatch/g{src}->g{dst}")
    return schedule


# ----------------------------------------------------------------------
# The what-if placement scorer
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlacementScore:
    """One placement's ledger under the recorded traffic."""

    name: str
    count_per_node: int | None
    ledger: HopLedger


def candidate_placements(num_experts: int, num_gpus: int
                         ) -> dict[str, ExpertPlacement]:
    """The standard what-if set for a recorded profile.

    Always contains ``round_robin`` (expert ``e`` on GPU ``e % n``)
    when expert counts allow it, plus every legal ``count_per_node``
    variant: positive blocks when experts cover the world evenly, the
    sharded negatives when the world exceeds the expert count.
    """
    out: dict[str, ExpertPlacement] = {}
    if num_experts % num_gpus == 0:
        x = num_experts // num_gpus
        out[f"contiguous_x{x}"] = build_placement(num_gpus, x)
        if num_experts > num_gpus:
            out["round_robin"] = round_robin_placement(num_gpus,
                                                       num_experts)
    if num_gpus % num_experts == 0 and num_gpus > num_experts:
        shards = num_gpus // num_experts
        out[f"sharded_x-{shards}"] = build_placement(num_gpus, -shards)
    if not out:
        raise ValueError(
            f"no legal placement of {num_experts} experts on "
            f"{num_gpus} GPUs")
    return out


def whatif_placements(profile: RoutingProfile,
                      topology: ClusterTopology, *,
                      bytes_per_token: int,
                      placements: Mapping[str, ExpertPlacement]
                      | None = None) -> list[PlacementScore]:
    """Re-price the recorded traffic under alternative placements.

    No model re-run: the profile's dispatched counts are re-attributed
    under each placement on the same topology.  Results are sorted by
    (priced inter-node seconds, inter-node hops, name) so the cheapest
    placement leads.
    """
    if placements is None:
        placements = candidate_placements(profile.num_experts,
                                          topology.num_gpus)
    scores = []
    for pname in sorted(placements):
        placement = placements[pname]
        ledger = hop_ledger(profile, placement, topology,
                            bytes_per_token=bytes_per_token, name=pname)
        cpn: int | None = None
        if placement.shards_per_expert > 1:
            cpn = -placement.shards_per_expert
        elif placement.num_global_experts % placement.num_gpus == 0:
            per = placement.num_global_experts // placement.num_gpus
            if placement.gpu_to_experts == build_placement(
                    placement.num_gpus, per).gpu_to_experts:
                cpn = per
        scores.append(PlacementScore(name=pname, count_per_node=cpn,
                                     ledger=ledger))
    scores.sort(key=lambda s: (s.ledger.priced_seconds,
                               s.ledger.inter_node, s.name))
    return scores


# ----------------------------------------------------------------------
# Deterministic synthetic traffic (the `repro route --fast` source)
# ----------------------------------------------------------------------

def synthetic_profile(seed: int = 0, *, num_layers: int = 3,
                      num_experts: int = 8, tokens: int = 512,
                      steps: int = 8, top_k: int = 2,
                      capacity_factor: float = 1.25,
                      recorder: RoutingRecorder | None = None,
                      run=None) -> RoutingProfile:
    """A seeded Markov routing trace through the real gating machinery.

    Draws each token's primary expert from a skewed categorical at
    layer 0 and a sticky transition kernel afterwards (tokens tend to
    stay in their expert "family", giving the affinity matrix real
    diagonal mass), adds a uniform secondary route per extra top-k
    slot, then runs the draws through the *real*
    :func:`~repro.moe.gating.compute_locations` capacity assignment to
    get authentic drops.  Only integer RNG draws — no GEMMs, no
    argsort-over-float ties — so the profile is bit-identical across
    machines and BLAS builds: the property ``BENCH_routing.json`` gates
    at tolerance 0.
    """
    import math

    from repro.moe.gating import compute_locations

    if top_k < 1 or top_k > num_experts:
        raise ValueError(f"top_k must be in [1, {num_experts}]")
    rng = np.random.default_rng(seed)
    rec = recorder or RoutingRecorder(num_layers, num_experts)
    capacity = max(1, math.ceil(top_k * tokens * capacity_factor
                                / num_experts))
    # Sticky transition kernel: stay with probability ~0.55, move to a
    # neighbour with ~0.25, anywhere else uniformly.
    kernel = np.full((num_experts, num_experts),
                     0.20 / max(1, num_experts - 2))
    for e in range(num_experts):
        kernel[e, e] = 0.55
        kernel[e, (e + 1) % num_experts] = 0.25
    kernel /= kernel.sum(axis=1, keepdims=True)
    # Skewed layer-0 popularity (Zipf-ish): the load-imbalance signal.
    pop = 1.0 / np.arange(1, num_experts + 1)
    pop /= pop.sum()

    for _ in range(steps):
        crits = []
        prev = rng.choice(num_experts, size=tokens, p=pop)
        for li in range(num_layers):
            if li > 0:
                nxt = np.empty(tokens, dtype=np.int64)
                for e in range(num_experts):
                    mask = prev == e
                    n = int(mask.sum())
                    if n:
                        nxt[mask] = rng.choice(num_experts, size=n,
                                               p=kernel[e])
                prev = nxt
            idxs = np.empty((top_k, tokens), dtype=np.int64)
            idxs[0] = prev
            for slot in range(1, top_k):
                # Secondary routes: uniform over the other experts.
                offset = rng.integers(1, num_experts, size=tokens)
                idxs[slot] = (prev + offset) % num_experts
            locations = compute_locations(idxs, num_experts)
            crits.append(RoutingCriteria(
                idxs=idxs, locations=locations,
                gates=(locations < capacity).astype(np.float64),
                capacity=capacity, num_experts=num_experts))
        rec.observe_batch(crits)
        if run is not None:
            rec.emit(run, step=rec.batches - 1)
    return rec.profile()


# ----------------------------------------------------------------------
# Prometheus gauges
# ----------------------------------------------------------------------

def record_gauges(ob, profile: RoutingProfile,
                  scores: Sequence[PlacementScore]) -> None:
    """Publish the profile + ledger headline numbers as obs
    instruments (scrapeable through :mod:`repro.obs.prometheus`).

    The monotonic totals (tokens, batches, dispatched, dropped slots)
    are **counters**, not gauges, so the Prometheus exposition carries
    the correct ``# TYPE``; the derived statistics stay gauges.
    """
    ob.count("routing.tokens", float(profile.tokens))
    ob.count("routing.batches", float(profile.batches))
    ob.count("routing.dispatched", float(profile.total_dispatched))
    ob.count("routing.dropped_slots", float(profile.dropped_slots))
    ob.gauge("routing.load_gini", profile.load_gini())
    ob.gauge("routing.self_affinity",
             profile.self_affinity_fraction())
    for score in scores:
        led = score.ledger
        prefix = f"routing.whatif.{score.name}"
        ob.gauge(f"{prefix}.intra_gpu_hops", float(led.intra_gpu))
        ob.gauge(f"{prefix}.intra_node_hops", float(led.intra_node))
        ob.gauge(f"{prefix}.inter_node_hops", float(led.inter_node))
        ob.gauge(f"{prefix}.inter_node_mib",
                 led.inter_node_bytes / 2.0 ** 20)
        ob.gauge(f"{prefix}.priced_ms", led.priced_seconds * 1e3)


# ----------------------------------------------------------------------
# BENCH_routing.json + the human report
# ----------------------------------------------------------------------

ROUTING_ARTIFACT = "routing"


def routing_metrics(profile: RoutingProfile,
                    scores: Sequence[PlacementScore]) -> list:
    """The routing provenance as bench metrics.

    Everything is ``kind="model"`` at tolerance 0: profiles come from
    integer counts and the pricing from closed-form link coefficients,
    so the same seed must reproduce every digit — any drift is a
    determinism break, which is exactly what the regress gate exists
    to catch.
    """
    from repro.bench.report import Metric

    def m(name, value, unit="", hib=None):
        return Metric(name=name, value=float(value), unit=unit,
                      kind="model", higher_is_better=hib, tolerance=0.0)

    out = [
        m("tokens", profile.tokens, "tokens"),
        m("batches", profile.batches, "batches"),
        m("total_dispatched", profile.total_dispatched, "slots"),
        m("dropped_slots", profile.dropped_slots, "slots", hib=False),
        m("load_gini", profile.load_gini(), "", hib=False),
        m("self_affinity", profile.self_affinity_fraction(), ""),
    ]
    for score in scores:
        led = score.ledger
        p = score.name
        out.extend([
            m(f"{p}.intra_gpu_hops", led.intra_gpu, "hops", hib=True),
            m(f"{p}.intra_node_hops", led.intra_node, "hops"),
            m(f"{p}.inter_node_hops", led.inter_node, "hops",
              hib=False),
            m(f"{p}.inter_node_mib", led.inter_node_bytes / 2.0 ** 20,
              "MiB", hib=False),
            m(f"{p}.priced_ms", led.priced_seconds * 1e3, "ms",
              hib=False),
        ])
    return out


def emit_routing(profile: RoutingProfile,
                 scores: Sequence[PlacementScore], *,
                 config: Mapping, directory=None,
                 verbose: bool = False):
    """Write (when configured) the ``BENCH_routing.json`` record."""
    from repro.bench.report import emit as bench_emit

    return bench_emit(
        ROUTING_ARTIFACT,
        "Routing provenance: load, affinity, and the placement hop "
        "ledger",
        routing_metrics(profile, scores),
        config=dict(config), directory=directory, verbose=verbose)


def render_routing(profile: RoutingProfile,
                   scores: Sequence[PlacementScore]) -> str:
    """Human summary: the profile headline plus one ledger row per
    what-if placement, cheapest first."""
    from repro.bench.harness import Table

    lines = [
        f"routing profile: {profile.batches} batch(es), "
        f"{profile.tokens} tokens, {profile.num_layers} layer(s) x "
        f"{profile.num_experts} experts",
        f"  dispatched {profile.total_dispatched} slots "
        f"({profile.dropped_slots} dropped), load gini "
        f"{profile.load_gini():.4f}, self-affinity "
        f"{profile.self_affinity_fraction():.4f}",
    ]
    table = Table(
        "placement what-if (same traffic, re-priced)",
        ["placement", "gpus", "intra-gpu", "intra-node", "inter-node",
         "inter MiB", "priced ms"])
    for score in scores:
        led = score.ledger
        table.add_row(
            score.name, led.num_gpus, led.intra_gpu, led.intra_node,
            led.inter_node, f"{led.inter_node_bytes / 2 ** 20:.3f}",
            f"{led.priced_seconds * 1e3:.4f}")
    return "\n".join(lines) + "\n" + table.render()
