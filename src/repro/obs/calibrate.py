"""Simulator-fidelity calibration: fit the cost model to measurements.

The performance story of this repo rests on the analytic simulator
(:mod:`repro.cluster.simulator` plus the kernel/collective cost models).
This module closes the loop between that simulator and the functional
substrate it abstracts:

1. **Measure** — run a profiled sweep of real workloads through the
   autograd/functional layer: dense GEMMs at varying row counts,
   sparse MoE encode/decode (``moe_dispatch`` / ``moe_combine``) at
   varying ``T``/``E``/``k``/``C``, and all-to-all exchanges of varying
   payload through :func:`repro.collectives.functional.all_to_all_linear`.
   Compute-kernel walls come from the op-level profiler
   (:mod:`repro.obs.profiler`); collective walls from ``perf_counter``.
   Workloads are repeated in interleaved round-robin order (so a slow
   host phase degrades every workload alike, as common mode the fit
   absorbs) and the per-workload minimum after a warmup round is kept —
   the closest observable to the noise-free cost the simulator models.

2. **Fit** — non-negative least squares, with each residual weighted by
   ``1/measured`` so the optimizer minimizes exactly the *relative*
   error the fidelity gate scores:

   * GEMM walls are linear in ``[1, flops, flops/rows]`` with
     coefficients ``[launch, 1/peak, rows_half/peak]`` — recovering the
     fitted ``peak_flops`` and the :class:`~repro.cluster.gemm.GemmModel`
     efficiency knee (``eta_max`` is absorbed into the fitted peak);
   * encode and decode walls are each linear in ``[1, bytes_moved]`` —
     per-kernel launch overhead and effective memory bandwidth (the two
     kernels differ: scatter writes stream, weighted gather reduces);
   * the all-to-all measurements fit the alpha–beta
     :class:`~repro.cluster.topology.LinkSpec`: the functional exchange
     executes all ``n`` ranks serially on one machine, so the measured
     total is ``n`` times the per-rank model, linear in
     ``[n, n(n-1), (n-1)*S]`` with coefficients ``(latency,
     message_overhead, 1/bandwidth)``.

3. **Re-simulate & report** — the same workloads are replayed through
   :func:`repro.cluster.simulator.simulate` on the fitted topology and
   the per-op-class signed relative error ``(sim - measured)/measured``
   is aggregated into p50/p95 statistics.  The headline fidelity metric
   ``sim_vs_measured_p95_err`` (p95 of the absolute signed error across
   every workload) is emitted as a schema-versioned
   ``BENCH_calibration.json`` and gated by ``repro regress``.

All measurements run in the substrate's active dtype
(:func:`repro.core.substrate.default_dtype` — float32 by default,
``REPRO_DTYPE=float64`` to override) and every modelled byte count uses
:func:`dtype_bytes` so the fit sees the itemsize the arrays actually
have; the fitted coefficients describe *this host at this dtype*, not
an A100 — the point is that the simulator's functional forms transfer.
Payload sizes are chosen to stay within one cache regime: the
alpha-beta model is piecewise-linear at best across a working-set
cliff, and calibration should fit a line to a line.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.autograd.moe_ops import moe_combine, moe_dispatch
from repro.autograd.tensor import Tensor
from repro.bench.report import BenchResult, Metric, emit
from repro.cluster.gemm import GemmModel, batched_gemm_time
from repro.cluster.simulator import Schedule, simulate
from repro.cluster.topology import (
    ClusterTopology,
    GpuSpec,
    LinkSpec,
    ndv4_topology,
)
from repro.collectives.functional import all_to_all_linear
from repro.collectives.schedule import linear_a2a_time
from repro.core.config import MoEConfig
from repro.core.substrate import default_dtype, default_itemsize
from repro.moe.gating import RoutingCriteria, compute_locations
from repro.obs.profiler import Profiler, profiling
from repro.runtime.kernels import sparse_decode_time, sparse_encode_time

__all__ = [
    "SCHEMA_VERSION",
    "dtype_bytes",
    "Workload",
    "Measurement",
    "CalibratedTopology",
    "CalibrationReport",
    "gemm_workloads",
    "moe_kernel_workloads",
    "a2a_workloads",
    "measure_workloads",
    "fit_compute",
    "fit_a2a",
    "fit_topology",
    "simulate_workload",
    "run_calibration",
    "emit_calibration",
    "report_to_json",
]

SCHEMA_VERSION = 1


def dtype_bytes() -> int:
    """Itemsize of the substrate's active dtype (4 for float32, 8 for
    float64).  Was a hardcoded ``DTYPE_BYTES = 8`` before ISSUE 6 —
    which double-counted every modelled byte once the substrate moved
    to float32."""
    return default_itemsize()

_GEMM_SHAPES_FAST = ((16, 128, 128), (64, 128, 128),
                     (128, 128, 128), (256, 128, 128))
_GEMM_SHAPES_FULL = _GEMM_SHAPES_FAST + (
    (32, 128, 128), (384, 128, 128), (128, 256, 256), (256, 256, 256))

# (tokens, experts, top_k, capacity_factor, model_dim); model_dim is
# kept large so the routed-byte traffic dominates per-call overhead.
_MOE_SHAPES_FAST = ((512, 8, 2, 1.25, 256), (1024, 8, 2, 1.25, 256),
                    (2048, 8, 2, 1.25, 256))
_MOE_SHAPES_FULL = _MOE_SHAPES_FAST + (
    (1024, 16, 4, 1.25, 128), (2048, 16, 2, 1.25, 256),
    (1024, 8, 4, 1.25, 256), (1024, 8, 2, 1.25, 512))

# (world size, rows per peer); payloads are (n, rows, 32) arrays of
# the substrate's active dtype.
# Shapes are capped so input+output working sets stay cache-resident.
_A2A_SHAPES_FAST = ((2, 128), (2, 512), (4, 64), (4, 192),
                    (8, 24), (8, 48))
_A2A_SHAPES_FULL = _A2A_SHAPES_FAST + ((2, 256), (4, 128), (8, 32))
_A2A_COLS = 32


@dataclass(frozen=True)
class Workload:
    """One calibration point: an op class plus its shape parameters."""

    op_class: str  # "gemm" | "encode" | "decode" | "a2a"
    label: str
    params: dict


@dataclass(frozen=True)
class Measurement:
    """A workload with its measured wall time (seconds, best-of)."""

    workload: Workload
    measured: float


@dataclass(frozen=True)
class CalibratedTopology:
    """Fitted cluster model, drop-in usable by :mod:`repro.cluster`.

    ``topology.gpu`` is a representative spec (GEMM-fitted peak and
    launch, geometric-mean sparse-kernel bandwidth); the per-kernel
    throughput coefficients the fit actually recovered live in
    ``kernel_coefficients`` and :meth:`gpu_for` builds the spec for one
    op class.  ``topology.gpus_per_node`` is the largest calibrated
    world size so every modelled exchange rides the (single) fitted
    link — a one-machine harness cannot tell the fabrics apart.
    """

    topology: ClusterTopology
    gemm: GemmModel
    kernel_coefficients: dict = field(default_factory=dict)
    fit: dict = field(default_factory=dict)

    @property
    def gpu(self) -> GpuSpec:
        return self.topology.gpu

    def gpu_for(self, op_class: str) -> GpuSpec:
        """GPU spec with this op class's fitted launch/throughput."""
        from dataclasses import replace
        coef = self.kernel_coefficients.get(op_class)
        if not coef:
            return self.gpu
        kwargs = {}
        if "launch" in coef:
            kwargs["kernel_launch_overhead"] = coef["launch"]
        if "memory_bandwidth" in coef:
            kwargs["memory_bandwidth"] = coef["memory_bandwidth"]
        if "peak_flops" in coef:
            kwargs["peak_flops"] = coef["peak_flops"]
        return replace(self.gpu, **kwargs)

    def at_world(self, num_gpus: int) -> ClusterTopology:
        return self.topology.with_num_gpus(num_gpus)


def _moe_config(params: dict) -> MoEConfig:
    return MoEConfig(
        world_size=1, gpus_per_node=1,
        experts_per_gpu=float(params["experts"]),
        model_dim=int(params["model_dim"]),
        tokens_per_gpu=int(params["tokens"]),
        top_k=int(params["top_k"]),
        capacity_factor=float(params["capacity_factor"]),
        dtype_bytes=dtype_bytes())


def _moe_moved_bytes(cfg: MoEConfig) -> float:
    """Bytes the sparse scatter model says the kernel moves.

    Mirrors ``repro.runtime.kernels._sparse_scatter_time``: the routed
    rows are read and written (2x) plus one pass over the ``(E, dC, M)``
    capacity buffer.
    """
    routed = cfg.top_k * cfg.tokens_per_gpu * cfg.model_dim \
        * cfg.dtype_bytes
    buffer = cfg.num_global_experts * cfg.capacity_per_gpu \
        * cfg.model_dim * cfg.dtype_bytes
    return 2.0 * routed + buffer


def _a2a_payload_bytes(params: dict) -> float:
    """Per-rank buffer size S of one all-to-all workload."""
    n = int(params["world"])
    return float(n * int(params["rows"]) * _A2A_COLS * dtype_bytes())


def gemm_workloads(fast: bool = False) -> list[Workload]:
    shapes = _GEMM_SHAPES_FAST if fast else _GEMM_SHAPES_FULL
    return [Workload("gemm", f"gemm_{m}x{k}x{n}",
                     {"m": m, "k": k, "n": n})
            for m, k, n in shapes]


def moe_kernel_workloads(fast: bool = False) -> list[Workload]:
    shapes = _MOE_SHAPES_FAST if fast else _MOE_SHAPES_FULL
    out: list[Workload] = []
    for t, e, k, f, m in shapes:
        params = {"tokens": t, "experts": e, "top_k": k,
                  "capacity_factor": f, "model_dim": m}
        tag = f"T{t}_E{e}_k{k}_M{m}"
        out.append(Workload("encode", f"encode_{tag}", dict(params)))
        out.append(Workload("decode", f"decode_{tag}", dict(params)))
    return out


def a2a_workloads(fast: bool = False) -> list[Workload]:
    shapes = _A2A_SHAPES_FAST if fast else _A2A_SHAPES_FULL
    return [Workload("a2a", f"a2a_n{n}_rows{rows}",
                     {"world": n, "rows": rows})
            for n, rows in shapes]


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def _routing(rng: np.random.Generator, t: int, e: int, k: int,
             capacity: int) -> RoutingCriteria:
    """Uniform-random top-k routing decisions for a synthetic sweep."""
    order = np.argsort(rng.random((t, e)), axis=1)[:, :k]
    idxs = np.ascontiguousarray(order.T)
    locations = compute_locations(idxs, e)
    gates = np.full((k, t), 1.0 / k, dtype=default_dtype())
    return RoutingCriteria(idxs=idxs, locations=locations, gates=gates,
                           capacity=capacity, num_experts=e)


def _profiled_wall(op_name: str, run: Callable[[], None]) -> float:
    """Wall time of one op invocation, read from a scratch profiler."""
    prof = Profiler(max_records=16, max_alloc_events=16)
    with profiling(prof):
        run()
    return prof.op_walls(op_name)[0]


def _gemm_runner(w: Workload,
                 rng: np.random.Generator) -> Callable[[], float]:
    dt = default_dtype()
    a = rng.standard_normal((w.params["m"], w.params["k"])).astype(dt)
    b = rng.standard_normal((w.params["k"], w.params["n"])).astype(dt)
    return lambda: _profiled_wall(
        "matmul", lambda: Tensor(a) @ Tensor(b))


def _moe_runner(w: Workload,
                rng: np.random.Generator) -> Callable[[], float]:
    cfg = _moe_config(w.params)
    crit = _routing(rng, cfg.tokens_per_gpu, cfg.num_global_experts,
                    cfg.top_k, cfg.capacity_per_gpu)
    x = rng.standard_normal(
        (cfg.tokens_per_gpu, cfg.model_dim)).astype(default_dtype())
    if w.op_class == "encode":
        return lambda: _profiled_wall(
            "moe_dispatch", lambda: moe_dispatch(Tensor(x), crit))
    z = np.asarray(moe_dispatch(Tensor(x), crit).data)
    return lambda: _profiled_wall(
        "moe_combine",
        lambda: moe_combine(Tensor(z), Tensor(crit.gates), crit))


def _a2a_runner(w: Workload, rng: np.random.Generator,
                clock=time.perf_counter) -> Callable[[], float]:
    n = int(w.params["world"])
    inputs = [rng.standard_normal(
        (n, int(w.params["rows"]), _A2A_COLS)).astype(default_dtype())
        for _ in range(n)]

    def run() -> float:
        t0 = clock()
        all_to_all_linear(inputs)
        return clock() - t0
    return run


def measure_workloads(workloads: list[Workload], repeats: int = 4,
                      burst: int = 3, seed: int = 0
                      ) -> list[Measurement]:
    """Measure every workload, interleaved in bursts, keeping the best.

    Each of ``repeats`` rounds visits the workloads round-robin and
    runs each as a back-to-back *burst* of ``burst`` invocations (the
    first burst doubles as warmup); the overall per-workload minimum is
    kept.  Bursts keep caches warm for the measured invocation —
    matching the steady-state regime the simulator models — while the
    round-robin turns transient host slowdowns into common mode across
    workloads instead of a bias against whichever ran during them.
    """
    if repeats < 1 or burst < 1:
        raise ValueError(
            f"repeats and burst must be >= 1, got {repeats}, {burst}")
    rng = np.random.default_rng(seed)
    runners: list[Callable[[], float]] = []
    for w in workloads:
        if w.op_class == "gemm":
            runners.append(_gemm_runner(w, rng))
        elif w.op_class in ("encode", "decode"):
            runners.append(_moe_runner(w, rng))
        elif w.op_class == "a2a":
            runners.append(_a2a_runner(w, rng))
        else:
            raise ValueError(f"unknown op class {w.op_class!r}")
    best = [float("inf")] * len(runners)
    for rnd in range(repeats):
        for i, run in enumerate(runners):
            walls = [run() for _ in range(burst + (1 if rnd == 0 else 0))]
            if rnd == 0:
                walls = walls[1:]  # first call of round 0 is warmup
            best[i] = min(best[i], *walls)
    return [Measurement(w, max(wall, 1e-9))
            for w, wall in zip(workloads, best)]


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------

def _nonneg_relative_lstsq(design: list[list[float]],
                           y: list[float]) -> np.ndarray:
    """Least squares on relative residuals, coefficients clamped >= 0.

    Each row is weighted by ``1/y`` so the fit minimizes the squared
    *relative* error — the quantity the fidelity report scores.  The
    non-negativity uses a simple active-set scheme: solve, drop the
    most negative coefficient's column, repeat; dropped coefficients
    are 0 (e.g. a launch overhead too small to resolve).
    """
    a = np.asarray(design, dtype=np.float64)
    target = np.asarray(y, dtype=np.float64)
    weights = 1.0 / target
    a = a * weights[:, None]
    target = np.ones_like(target)
    active = list(range(a.shape[1]))
    coef = np.zeros(a.shape[1])
    while active:
        sol, *_ = np.linalg.lstsq(a[:, active], target, rcond=None)
        if np.all(sol >= 0.0):
            coef[active] = sol
            break
        active.pop(int(np.argmin(sol)))
    return coef


def _of_class(measurements: list[Measurement],
              op_class: str) -> list[Measurement]:
    return [m for m in measurements if m.workload.op_class == op_class]


def fit_compute(measurements: list[Measurement]
                ) -> tuple[GpuSpec, GemmModel, dict, dict]:
    """Fit per-kernel throughput coefficients for the compute classes.

    Returns ``(representative GpuSpec, GemmModel, kernel_coefficients,
    provenance)``.  GEMM, encode, and decode each get their own launch
    overhead and throughput — the simulator's kernel models share a
    :class:`GpuSpec`, so :meth:`CalibratedTopology.gpu_for` rebuilds
    the right spec per op class.
    """
    default = GpuSpec()

    gemm_meas = _of_class(measurements, "gemm")
    if len(gemm_meas) < 3:
        raise ValueError("need >= 3 gemm measurements to fit")
    design = []
    for meas in gemm_meas:
        m, k, n = (meas.workload.params["m"], meas.workload.params["k"],
                   meas.workload.params["n"])
        flops = 2.0 * m * k * n
        design.append([1.0, flops, flops / m])
    c_launch, c_peak, c_knee = _nonneg_relative_lstsq(
        design, [m.measured for m in gemm_meas])
    peak = 1.0 / c_peak if c_peak > 0 else default.peak_flops
    # eta_max is absorbed into the fitted peak; the knee alone shapes
    # the small-rows efficiency falloff.  GemmModel needs rows_half > 0.
    rows_half = c_knee / c_peak if c_peak > 0 and c_knee > 0 else 1e-3
    gemm_model = GemmModel(eta_max=1.0, rows_half=rows_half)

    coefficients: dict[str, dict] = {
        "gemm": {"launch": max(c_launch, 0.0), "peak_flops": peak}}
    for op_class in ("encode", "decode"):
        meas_c = _of_class(measurements, op_class)
        if len(meas_c) < 2:
            raise ValueError(
                f"need >= 2 {op_class} measurements to fit")
        design = [[1.0, _moe_moved_bytes(_moe_config(m.workload.params))]
                  for m in meas_c]
        launch, c_bw = _nonneg_relative_lstsq(
            design, [m.measured for m in meas_c])
        coefficients[op_class] = {
            "launch": max(launch, 0.0),
            "memory_bandwidth": (1.0 / c_bw if c_bw > 0
                                 else default.memory_bandwidth)}

    # Representative spec: GEMM peak/launch, geometric-mean sparse
    # bandwidth — sensible defaults for downstream consumers that use
    # the topology without per-kernel overrides.
    mean_bw = float(np.sqrt(
        coefficients["encode"]["memory_bandwidth"]
        * coefficients["decode"]["memory_bandwidth"]))
    gpu = GpuSpec(peak_flops=peak, memory_bandwidth=mean_bw,
                  memory_bytes=default.memory_bytes,
                  kernel_launch_overhead=coefficients["gemm"]["launch"])
    provenance = {"rows_half": rows_half,
                  "points": {cls: len(_of_class(measurements, cls))
                             for cls in ("gemm", "encode", "decode")}}
    return gpu, gemm_model, coefficients, provenance


def fit_a2a(measurements: list[Measurement]) -> tuple[LinkSpec, dict]:
    """Fit the alpha-beta link model from all-to-all wall times.

    The functional exchange runs its ``n`` per-rank loops serially, so
    ``measured ~= n * (latency + (n-1)*overhead + (n-1)*(S/n)/bw)`` —
    linear in ``[n, n(n-1), (n-1)*S]``.
    """
    a2a_meas = _of_class(measurements, "a2a")
    if len(a2a_meas) < 3:
        raise ValueError("need >= 3 a2a measurements to fit")
    design = []
    for meas in a2a_meas:
        n = float(meas.workload.params["world"])
        payload = _a2a_payload_bytes(meas.workload.params)
        design.append([n, n * (n - 1.0), (n - 1.0) * payload])
    c_lat, c_ovh, c_bw = _nonneg_relative_lstsq(
        design, [m.measured for m in a2a_meas])
    bandwidth = 1.0 / c_bw if c_bw > 0 else 1e12
    link = LinkSpec(bandwidth=bandwidth, latency=max(c_lat, 0.0),
                    message_overhead=max(c_ovh, 0.0))
    provenance = {"bandwidth": link.bandwidth, "latency": link.latency,
                  "message_overhead": link.message_overhead,
                  "points": len(a2a_meas)}
    return link, provenance


def fit_topology(measurements: list[Measurement]) -> CalibratedTopology:
    """Full fit: GPU + GEMM model + link, packaged as a topology."""
    gpu, gemm_model, coefficients, compute_fit = \
        fit_compute(measurements)
    link, a2a_fit = fit_a2a(measurements)
    worlds = [int(m.workload.params["world"]) for m in measurements
              if m.workload.op_class == "a2a"]
    max_world = max(worlds) if worlds else 1
    topo = ndv4_topology(num_gpus=max_world, gpus_per_node=max_world) \
        .with_gpu(gpu).with_links(link)
    return CalibratedTopology(
        topology=topo, gemm=gemm_model,
        kernel_coefficients=coefficients,
        fit={"schema": SCHEMA_VERSION, "compute": compute_fit,
             "a2a": a2a_fit})


# ----------------------------------------------------------------------
# Re-simulation and the fidelity report
# ----------------------------------------------------------------------

def simulate_workload(calibrated: CalibratedTopology,
                      workload: Workload) -> float:
    """Predicted wall time of one workload on the fitted topology."""
    sched = Schedule()
    if workload.op_class == "gemm":
        m, k, n = (workload.params["m"], workload.params["k"],
                   workload.params["n"])
        sched.new_op(work=batched_gemm_time(calibrated.gpu_for("gemm"),
                                            1, m, k, n, calibrated.gemm),
                     label=workload.label)
    elif workload.op_class in ("encode", "decode"):
        cfg = _moe_config(workload.params)
        timer = (sparse_encode_time if workload.op_class == "encode"
                 else sparse_decode_time)
        sched.new_op(work=timer(cfg, calibrated.gpu_for(workload.op_class)),
                     label=workload.label)
    elif workload.op_class == "a2a":
        n = int(workload.params["world"])
        per_rank = linear_a2a_time(calibrated.at_world(n),
                                   _a2a_payload_bytes(workload.params))
        # The functional exchange runs the ranks serially on this host:
        # n ops on one (gpu, stream) pair serialize FIFO.
        for rank in range(n):
            sched.new_op(work=per_rank, stream="comm", kind="comm",
                         label=f"{workload.label}_r{rank}")
    else:
        raise ValueError(f"unknown op class {workload.op_class!r}")
    sched.validate()
    return simulate(sched).makespan


@dataclass
class CalibrationReport:
    """Per-op-class prediction-error report of one calibration run."""

    profile: str  # "fast" | "full"
    calibrated: CalibratedTopology
    rows: list[dict]         # label, op_class, measured, simulated, err
    per_class: dict[str, dict]
    sim_vs_measured_p95_err: float
    schema: int = SCHEMA_VERSION

    def to_json_obj(self) -> dict:
        return {
            "schema": self.schema,
            "profile": self.profile,
            "fit": self.calibrated.fit,
            "kernel_coefficients":
                {k: dict(v) for k, v
                 in self.calibrated.kernel_coefficients.items()},
            "rows": [dict(r) for r in self.rows],
            "per_class": {k: dict(v) for k, v in self.per_class.items()},
            "sim_vs_measured_p95_err": self.sim_vs_measured_p95_err,
        }

    def render(self) -> str:
        from repro.bench.harness import Table

        table = Table("Simulator fidelity (signed rel. error)",
                      ["workload", "class", "measured", "simulated",
                       "err"])
        for r in self.rows:
            table.add_row(r["label"], r["op_class"],
                          f"{r['measured']:.3e}", f"{r['simulated']:.3e}",
                          f"{r['signed_err']:+.1%}")
        summary = Table("Per-class summary",
                        ["class", "points", "p50 signed", "p95 |err|"])
        for cls in sorted(self.per_class):
            s = self.per_class[cls]
            summary.add_row(cls, str(s["count"]),
                            f"{s['p50_signed_err']:+.1%}",
                            f"{s['p95_abs_err']:.1%}")
        return "\n".join([
            table.render(), "", summary.render(),
            f"sim_vs_measured_p95_err: "
            f"{self.sim_vs_measured_p95_err:.1%}"])


def _error_stats(errors: list[float]) -> dict:
    arr = np.asarray(errors, dtype=np.float64)
    return {
        "count": int(arr.size),
        "p50_signed_err": float(np.percentile(arr, 50)),
        "p95_abs_err": float(np.percentile(np.abs(arr), 95)),
        "max_abs_err": float(np.max(np.abs(arr))),
    }


def run_calibration(fast: bool = False, repeats: int = 4,
                    seed: int = 0) -> CalibrationReport:
    """Measure, fit, re-simulate, and report simulator fidelity."""
    compute = gemm_workloads(fast) + moe_kernel_workloads(fast)
    a2a = a2a_workloads(fast)
    # The all-to-all walls are microseconds-scale and the jumpiest on a
    # busy host; give them ~3x the sampling (still cheap in absolute
    # terms) so the per-point minimum reliably finds the fast mode.
    measurements = (
        measure_workloads(compute, repeats=repeats, seed=seed)
        + measure_workloads(a2a, repeats=3 * repeats, seed=seed))
    calibrated = fit_topology(measurements)

    rows: list[dict] = []
    by_class: dict[str, list[float]] = {}
    for meas in measurements:
        sim = simulate_workload(calibrated, meas.workload)
        err = (sim - meas.measured) / meas.measured
        rows.append({"label": meas.workload.label,
                     "op_class": meas.workload.op_class,
                     "measured": meas.measured, "simulated": sim,
                     "signed_err": err})
        by_class.setdefault(meas.workload.op_class, []).append(err)
    per_class = {cls: _error_stats(errs)
                 for cls, errs in by_class.items()}
    overall = float(np.percentile(
        np.abs([r["signed_err"] for r in rows]), 95))
    return CalibrationReport(
        profile="fast" if fast else "full", calibrated=calibrated,
        rows=rows, per_class=per_class,
        sim_vs_measured_p95_err=overall)


def emit_calibration(report: CalibrationReport,
                     directory=None, verbose: bool = False
                     ) -> BenchResult:
    """Emit ``BENCH_calibration.json`` for the regression gate.

    The headline fidelity metric is ``kind="model"`` so ``repro
    regress`` gates it (the committed baseline pins the value at the
    15% acceptance bound with ``higher_is_better=False`` and a 0.5
    relative tolerance for noisy CI hosts, i.e. the gate trips above
    22.5%); fitted coefficients and per-class stats are host-dependent
    and ride along as ``kind="measured"``.
    """
    metrics = [Metric("sim_vs_measured_p95_err",
                      report.sim_vs_measured_p95_err, unit="rel",
                      kind="model", higher_is_better=False,
                      tolerance=0.5)]
    for cls in sorted(report.per_class):
        stats = report.per_class[cls]
        metrics.append(Metric(f"{cls}_p50_signed_err",
                              stats["p50_signed_err"], unit="rel",
                              kind="measured"))
        metrics.append(Metric(f"{cls}_p95_abs_err",
                              stats["p95_abs_err"], unit="rel",
                              kind="measured"))
    gpu = report.calibrated.gpu
    link = report.calibrated.topology.intra_link
    for name, value, unit in (
            ("fitted_peak_flops", gpu.peak_flops, "flop/s"),
            ("fitted_memory_bandwidth", gpu.memory_bandwidth, "B/s"),
            ("fitted_launch_overhead", gpu.kernel_launch_overhead, "s"),
            ("fitted_rows_half", report.calibrated.gemm.rows_half,
             "rows"),
            ("fitted_link_bandwidth", link.bandwidth, "B/s"),
            ("fitted_link_latency", link.latency, "s"),
            ("fitted_link_overhead", link.message_overhead, "s")):
        metrics.append(Metric(name, value, unit=unit, kind="measured"))
    config = {"schema": SCHEMA_VERSION, "profile": report.profile,
              "classes": sorted(report.per_class),
              "fit": "nonneg-relative-lstsq",
              "dtype": np.dtype(default_dtype()).name,
              "dtype_bytes": dtype_bytes()}
    return emit("calibration", "Simulator-fidelity calibration",
                metrics, config=config, directory=directory,
                verbose=verbose)


def report_to_json(report: CalibrationReport) -> str:
    """Full report (rows included) as a JSON string (``--json``)."""
    return json.dumps(report.to_json_obj(), indent=1, sort_keys=True)
