"""repro.obs — unified step-level instrumentation for both substrates.

The paper's headline artifacts are measurements of Tutel's own runtime
(Figure 1's capacity-factor dynamics, Figure 5's strategy distribution,
Figures 22–24's time breakdowns), so the reproduction carries a shared
observability layer instead of per-bench ad-hoc timing:

* :class:`~repro.obs.registry.MetricsRegistry` — process-wide counters
  / gauges / histogram timers;
* :class:`~repro.obs.trace.TraceRecorder` — typed trace events with
  Chrome-trace (``chrome://tracing`` / Perfetto) and JSONL export;
* :class:`Observer` — binds the two, adds the ``span(...)`` context
  manager / ``@timed`` decorator, and keeps the per-step
  :class:`RoutingRecord` history (drop fraction, imbalance, needed
  capacity factor — the Figure 1 series) that instrumented MoE layers
  append to.

Instrumentation is **off by default and zero-cost when off**: hot call
sites do one module-global ``is None`` check (``span()`` returns the
shared :data:`NULL_SPAN` singleton, whose enter/exit do nothing).
Enable explicitly::

    from repro import obs

    ob = obs.enable()                  # metrics + trace recording
    ...run a training step / bench...
    ob.recorder.dump_chrome_trace("trace.json")
    print(ob.registry.render())
    obs.disable()

or set ``REPRO_TRACE=/path/trace.json`` around any bench (see
``benchmarks/conftest.py`` and ``repro obs --help``).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.overhead import get_ledger as _overhead_ledger
from repro.obs.overhead import perf_ns as _perf_ns
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    CAT_BENCH,
    CAT_CKPT,
    CAT_COLLECTIVE,
    CAT_FAULT,
    CAT_HEALTH,
    CAT_MOE,
    CAT_PIPELINE,
    CAT_PROF,
    CAT_SERVE,
    CAT_SIM,
    CAT_TRAIN,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "TraceRecorder",
    "RoutingRecord",
    "Observer",
    "NULL_SPAN",
    "get_observer",
    "set_observer",
    "enable",
    "disable",
    "observing",
    "span",
    "instant",
    "timed",
    "CAT_MOE",
    "CAT_TRAIN",
    "CAT_COLLECTIVE",
    "CAT_PIPELINE",
    "CAT_SIM",
    "CAT_SERVE",
    "CAT_BENCH",
    "CAT_FAULT",
    "CAT_CKPT",
    "CAT_HEALTH",
    "CAT_PROF",
]


class _NullSpan:
    """Shared no-op context manager returned when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """A live timing span: histogram observation + trace event on exit."""

    __slots__ = ("_ob", "name", "cat", "track", "args", "start")

    def __init__(self, ob: "Observer", name: str, cat: str, track: str,
                 args: dict | None) -> None:
        self._ob = ob
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.start = self._ob.clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._ob._finish_span(self)
        return False


@dataclass(frozen=True)
class RoutingRecord:
    """One MoE layer's routing diagnostics at one training step.

    ``layer`` is the layer's sequence number within the step (forward
    order), ``stats`` the :class:`repro.moe.metrics.RoutingStats`-shaped
    object the layer recorded.
    """

    step: int
    layer: int
    stats: Any


class Observer:
    """A metrics registry plus (optionally) a trace recorder.

    ``clock`` defaults to :func:`time.perf_counter`; all wall-clock
    spans are re-based to the observer's creation time so traces start
    near zero and line up with simulated-clock tracks.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 recorder: TraceRecorder | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder
        self._clock = clock
        self._t0 = clock()
        self.routing_history: list[RoutingRecord] = []
        self._step = 0
        self._routing_seq = 0

    # -- clock ---------------------------------------------------------

    def clock(self) -> float:
        """Seconds on the observer timeline (0 at observer creation)."""
        return self._clock() - self._t0

    # -- spans ---------------------------------------------------------

    def span(self, name: str, cat: str = CAT_BENCH, track: str = "main",
             args: dict | None = None) -> _Span:
        return _Span(self, name, cat, track, args)

    def _finish_span(self, sp: _Span) -> None:
        end = self.clock()
        dur = end - sp.start
        led = _overhead_ledger()
        if led is None:
            self.registry.histogram(f"{sp.cat}.{sp.name}").observe(dur)
            if self.recorder is not None:
                self.recorder.span(sp.name, sp.cat, sp.start, dur,
                                   track=sp.track, args=sp.args)
            return
        t0 = _perf_ns()
        self.registry.histogram(f"{sp.cat}.{sp.name}").observe(dur)
        t1 = _perf_ns()
        led.add("metrics", t1 - t0)
        if self.recorder is not None:
            self.recorder.span(sp.name, sp.cat, sp.start, dur,
                               track=sp.track, args=sp.args)
            led.add("trace", _perf_ns() - t1)

    def record_span(self, name: str, cat: str, start: float, dur: float,
                    track: str = "main", args: dict | None = None) -> None:
        """Record a span with explicit timestamps (simulated clocks)."""
        led = _overhead_ledger()
        if led is None:
            self.registry.histogram(f"{cat}.{name}").observe(dur)
            if self.recorder is not None:
                self.recorder.span(name, cat, start, dur, track=track,
                                   args=args)
            return
        t0 = _perf_ns()
        self.registry.histogram(f"{cat}.{name}").observe(dur)
        t1 = _perf_ns()
        led.add("metrics", t1 - t0)
        if self.recorder is not None:
            self.recorder.span(name, cat, start, dur, track=track,
                               args=args)
            led.add("trace", _perf_ns() - t1)

    def instant(self, name: str, cat: str = CAT_BENCH,
                track: str = "main", args: dict | None = None) -> None:
        """Record an instant marker at the current clock reading."""
        self.registry.counter(f"{cat}.{name}").inc()
        if self.recorder is not None:
            self.recorder.instant(name, cat, self.clock(), track=track,
                                  args=args)

    def record_instant(self, name: str, cat: str, ts: float,
                       track: str = "main",
                       args: dict | None = None) -> None:
        """Record an instant marker with an explicit timestamp
        (simulated clocks — the fault-injection path)."""
        self.registry.counter(f"{cat}.{name}").inc()
        if self.recorder is not None:
            self.recorder.instant(name, cat, ts, track=track, args=args)

    # -- scalar conveniences -------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        led = _overhead_ledger()
        if led is None:
            self.registry.counter(name).inc(amount)
            return
        t0 = _perf_ns()
        self.registry.counter(name).inc(amount)
        led.add("metrics", _perf_ns() - t0)

    def gauge(self, name: str, value: float) -> None:
        led = _overhead_ledger()
        if led is None:
            self.registry.gauge(name).set(value)
            return
        t0 = _perf_ns()
        self.registry.gauge(name).set(value)
        led.add("metrics", _perf_ns() - t0)

    # -- per-step routing history (the Figure 1 series) ----------------

    def begin_step(self, step: int | None = None) -> None:
        """Mark a training-step boundary for routing-history records."""
        self._step = step if step is not None else self._step + 1
        self._routing_seq = 0

    def record_routing(self, stats: Any) -> None:
        """Append one layer's routing diagnostics for the current step.

        ``stats`` is duck-typed against
        :class:`repro.moe.metrics.RoutingStats` (``num_tokens``,
        ``num_experts``, ``top_k``, ``dropped_fraction``,
        ``load_imbalance``, ``needed_capacity``).
        """
        self.routing_history.append(
            RoutingRecord(self._step, self._routing_seq, stats))
        self._routing_seq += 1
        self.gauge("routing.dropped_fraction", stats.dropped_fraction)
        self.gauge("routing.load_imbalance", stats.load_imbalance)
        tokens = stats.num_tokens * stats.top_k
        if tokens > 0:
            self.gauge("routing.needed_capacity_factor",
                       stats.needed_capacity * stats.num_experts / tokens)

    def capacity_factor_series(self, layer: int = 0) -> list[float]:
        """Needed-capacity-factor trace of one layer across steps.

        Records with a negative step (evaluation forwards) are
        excluded — this is the training-time Figure 1 series.
        """
        series = []
        for rec in self.routing_history:
            if rec.layer != layer or rec.step < 0:
                continue
            tokens = rec.stats.num_tokens * rec.stats.top_k
            if tokens > 0:
                series.append(rec.stats.needed_capacity
                              * rec.stats.num_experts / tokens)
        return series


# ----------------------------------------------------------------------
# Process-wide observer (None = disabled, the default)
# ----------------------------------------------------------------------

_observer: Observer | None = None


def get_observer() -> Observer | None:
    return _observer


def set_observer(ob: Observer | None) -> Observer | None:
    """Install (or clear, with None) the process-wide observer."""
    global _observer
    previous = _observer
    _observer = ob
    return previous


def enable(trace: bool = True, max_events: int = 1_000_000) -> Observer:
    """Install and return a fresh process-wide observer."""
    recorder = TraceRecorder(max_events=max_events) if trace else None
    ob = Observer(recorder=recorder)
    set_observer(ob)
    return ob


def disable() -> None:
    set_observer(None)


def observing() -> bool:
    return _observer is not None


def span(name: str, cat: str = CAT_BENCH,
         track: str = "main") -> _Span | _NullSpan:
    """Hot-path span helper: one ``is None`` check when disabled.

    Call sites keep no per-call kwargs so the disabled path allocates
    nothing and returns the shared :data:`NULL_SPAN` singleton.
    """
    ob = _observer
    if ob is None:
        return NULL_SPAN
    return _Span(ob, name, cat, track, None)


def instant(name: str, cat: str = CAT_BENCH, track: str = "main",
            args: dict | None = None) -> None:
    """Record an instant marker on the process-wide observer, if any."""
    ob = _observer
    if ob is not None:
        ob.instant(name, cat, track=track, args=args)


def timed(name: str | None = None,
          cat: str = CAT_BENCH) -> Callable[[Callable], Callable]:
    """Decorator: time every call of ``fn`` when observability is on.

    The observer is looked up at call time, so decorated functions stay
    no-ops until :func:`enable` runs.
    """
    def deco(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*a, **kw):
            ob = _observer
            if ob is None:
                return fn(*a, **kw)
            with ob.span(label, cat):
                return fn(*a, **kw)

        return wrapper

    return deco
