"""Prometheus text-exposition export of a :class:`MetricsRegistry`.

Stdlib-only rendering of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so
serving metrics are scrapeable (or dumpable to a file a node exporter
picks up):

* counters  → ``# TYPE <name> counter`` samples;
* gauges    → ``# TYPE <name> gauge`` samples;
* histograms → ``# TYPE <name> summary``: one ``{quantile="..."}``
  sample per reservoir quantile plus the ``_sum``/``_count`` pair.

Instrument names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) — dots and other separators become
underscores — and the original name travels in a ``# HELP`` line.
:func:`parse_prometheus` is the inverse used by the round-trip format
test (and handy for ad-hoc scraping assertions).
"""

from __future__ import annotations

import re

from repro.obs.registry import MetricsRegistry

__all__ = ["QUANTILES", "prometheus_name", "render_prometheus",
           "parse_prometheus"]

#: Reservoir quantiles exported per histogram.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")


def prometheus_name(name: str) -> str:
    """The instrument name mapped onto the Prometheus grammar."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    assert _NAME_OK.match(out)
    return out


def _fmt(value: float) -> str:
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as one text-exposition document."""
    lines: list[str] = []

    def head(pname: str, original: str, kind: str) -> None:
        lines.append(f"# HELP {pname} {original}")
        lines.append(f"# TYPE {pname} {kind}")

    for name, c in sorted(registry.counters.items()):
        pname = prometheus_name(name)
        head(pname, name, "counter")
        lines.append(f"{pname} {_fmt(c.value)}")
    for name, g in sorted(registry.gauges.items()):
        pname = prometheus_name(name)
        head(pname, name, "gauge")
        lines.append(f"{pname} {_fmt(g.value)}")
    for name, h in sorted(registry.histograms.items()):
        pname = prometheus_name(name)
        head(pname, name, "summary")
        for q in QUANTILES:
            lines.append(
                f'{pname}{{quantile="{q:g}"}} {_fmt(h.quantile(q))}')
        lines.append(f"{pname}_sum {_fmt(h.total)}")
        lines.append(f"{pname}_count {_fmt(h.count)}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, dict]:
    """Inverse of :func:`render_prometheus`.

    Returns ``{metric_name: {"type": ..., "help": ..., "samples":
    {sample_key: value}}}`` where ``sample_key`` is the bare name,
    ``name_sum``/``name_count``, or ``name{quantile="..."}`` exactly
    as rendered.  Raises ``ValueError`` on malformed lines, so the
    round-trip test doubles as a format validator.
    """
    metrics: dict[str, dict] = {}
    current: dict | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            current = metrics.setdefault(
                name, {"type": None, "help": help_text, "samples": {}})
            current["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            current = metrics.setdefault(
                name, {"type": None, "help": "", "samples": {}})
            current["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(
                f"line {lineno}: not a prometheus sample: {line!r}")
        sample_name = m.group("name")
        base = sample_name
        for suffix in ("_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in metrics:
                base = base[: -len(suffix)]
                break
        if base not in metrics:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its "
                f"# TYPE header")
        key = sample_name
        if m.group("labels"):
            key = f"{sample_name}{{{m.group('labels')}}}"
        metrics[base]["samples"][key] = float(m.group("value"))
    return metrics
