"""Prometheus text-exposition export of a :class:`MetricsRegistry`.

Stdlib-only rendering of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so
serving metrics are scrapeable (or dumpable to a file a node exporter
picks up):

* counters  → ``# TYPE <name> counter`` samples;
* gauges    → ``# TYPE <name> gauge`` samples;
* histograms → ``# TYPE <name> summary``: one ``{quantile="..."}``
  sample per reservoir quantile plus the ``_sum``/``_count`` pair;
* labeled families → instrument names built with
  :func:`labeled_name` (``ALERTS{alertname="...",severity="..."}``)
  render as one shared ``HELP``/``TYPE`` head with per-label-set
  sample lines, the convention the alert engine uses to expose
  firing state.

Instrument names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) — dots and other separators become
underscores — and the original name travels in a ``# HELP`` line,
escaped per the spec (``\\`` for backslash, ``\n`` for newline; label
values additionally escape ``"``).  :func:`parse_prometheus` is the
inverse used by the round-trip format test (and handy for ad-hoc
scraping assertions): it unescapes HELP text, and its label scanner
understands quoted values containing ``}``, ``{``, escapes, and
anything else a hostile instrument name drags in.
"""

from __future__ import annotations

import re

from repro.obs.registry import MetricsRegistry

__all__ = ["QUANTILES", "prometheus_name", "labeled_name",
           "render_prometheus", "parse_prometheus"]

#: Reservoir quantiles exported per histogram.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_NAME_PREFIX = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_KEY = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def prometheus_name(name: str) -> str:
    """The instrument name mapped onto the Prometheus grammar."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    assert _NAME_OK.match(out)
    return out


def labeled_name(family: str, labels: "dict[str, str]") -> str:
    """A registry instrument name carrying a Prometheus label set.

    The flat :class:`MetricsRegistry` has no native label support, so
    labeled families (``ALERTS{alertname=...,severity=...}``) are
    encoded in the instrument *name*: ``family{key="escaped value"}``
    with keys sorted for determinism.  :func:`render_prometheus`
    detects the encoding (validated with the same scanner the parser
    uses) and renders one shared ``HELP``/``TYPE`` head per family
    with per-label-set samples.
    """
    if not labels:
        return family
    body = ",".join(
        f'{key}="{_escape_label_value(str(labels[key]))}"'
        for key in sorted(labels))
    return f"{family}{{{body}}}"


def _split_labeled(name: str) -> "tuple[str, list[tuple[str, str]]] | None":
    """Decode a :func:`labeled_name` encoding, or None.

    Returns ``(family, [(key, unescaped value), ...])`` only when the
    whole suffix is one well-formed label block (validated via
    :func:`_scan_labels`); hostile instrument names with stray braces
    fall back to full-name sanitization instead of producing invalid
    exposition lines.
    """
    brace = name.find("{")
    if brace <= 0 or not name.endswith("}"):
        return None
    try:
        pairs, consumed = _scan_labels(name[brace:], 0)
    except ValueError:
        return None
    if consumed != len(name) - brace or not pairs:
        return None
    return name[:brace], pairs


def _fmt(value: float) -> str:
    return repr(float(value))


def _escape_help(text: str) -> str:
    """HELP text escaping per the spec: backslash and line feed."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(text: str) -> str:
    return _unescape(text, quote=False)


def _escape_label_value(text: str) -> str:
    """Label-value escaping: backslash, double-quote, line feed."""
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape(text: str, *, quote: bool) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if quote and nxt == '"':
                out.append('"')
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as one text-exposition document."""
    lines: list[str] = []

    headed: set[str] = set()

    def head(pname: str, original: str, kind: str) -> None:
        lines.append(f"# HELP {pname} {_escape_help(original)}")
        lines.append(f"# TYPE {pname} {kind}")
        headed.add(pname)

    def scalar(name: str, value: float, kind: str) -> None:
        split = _split_labeled(name)
        if split is None:
            pname = prometheus_name(name)
            head(pname, name, kind)
            lines.append(f"{pname} {_fmt(value)}")
            return
        family, pairs = split
        pfam = prometheus_name(family)
        if pfam not in headed:
            head(pfam, family, kind)
        body = ",".join(f'{k}="{_escape_label_value(v)}"'
                        for k, v in pairs)
        lines.append(f"{pfam}{{{body}}} {_fmt(value)}")

    for name, c in sorted(registry.counters.items()):
        scalar(name, c.value, "counter")
    for name, g in sorted(registry.gauges.items()):
        scalar(name, g.value, "gauge")
    for name, h in sorted(registry.histograms.items()):
        pname = prometheus_name(name)
        head(pname, name, "summary")
        for q in QUANTILES:
            label = _escape_label_value(f"{q:g}")
            lines.append(
                f'{pname}{{quantile="{label}"}} {_fmt(h.quantile(q))}')
        lines.append(f"{pname}_sum {_fmt(h.total)}")
        lines.append(f"{pname}_count {_fmt(h.count)}")
    return "\n".join(lines) + "\n" if lines else ""


def _scan_labels(text: str, lineno: int) -> tuple[list[tuple[str, str]],
                                                  int]:
    """Parse a ``{...}`` label block starting at ``text[0] == '{'``.

    Returns the (key, unescaped value) pairs and the index just past
    the closing brace.  A regex cannot do this: quoted values may
    contain ``}``, ``{``, ``,``, and escape sequences.
    """
    pairs: list[tuple[str, str]] = []
    i = 1
    while True:
        while i < len(text) and text[i] in " \t":
            i += 1
        if i < len(text) and text[i] == "}":
            return pairs, i + 1
        m = _LABEL_KEY.match(text, i)
        if m is None:
            raise ValueError(
                f"line {lineno}: expected label name at column {i}: "
                f"{text!r}")
        key = m.group(0)
        i = m.end()
        if text[i:i + 2] != '="':
            raise ValueError(
                f"line {lineno}: expected '=\"' after label "
                f"{key!r}: {text!r}")
        i += 2
        raw: list[str] = []
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                raw.append(text[i:i + 2])
                i += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            i += 1
        if i >= len(text):
            raise ValueError(
                f"line {lineno}: unterminated label value: {text!r}")
        i += 1  # past the closing quote
        pairs.append((key, _unescape("".join(raw), quote=True)))
        if i < len(text) and text[i] == ",":
            i += 1
        elif i < len(text) and text[i] != "}":
            raise ValueError(
                f"line {lineno}: expected ',' or '}}' after label "
                f"value: {text!r}")


def parse_prometheus(text: str) -> dict[str, dict]:
    """Inverse of :func:`render_prometheus`.

    Returns ``{metric_name: {"type": ..., "help": ..., "samples":
    {sample_key: value}}}`` where ``sample_key`` is the bare name,
    ``name_sum``/``name_count``, or ``name{key="value"}`` with the
    label values *unescaped* and re-quoted canonically.  HELP text is
    unescaped, so escaped documents round-trip to the original
    instrument names.  Raises ``ValueError`` on malformed lines, so
    the round-trip test doubles as a format validator.
    """
    metrics: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            current = metrics.setdefault(
                name, {"type": None, "help": "", "samples": {}})
            current["help"] = _unescape_help(help_text)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            current = metrics.setdefault(
                name, {"type": None, "help": "", "samples": {}})
            current["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        m = _NAME_PREFIX.match(line)
        if m is None:
            raise ValueError(
                f"line {lineno}: not a prometheus sample: {line!r}")
        sample_name = m.group(0)
        i = m.end()
        labels: list[tuple[str, str]] = []
        if i < len(line) and line[i] == "{":
            labels, consumed = _scan_labels(line[i:], lineno)
            i += consumed
        value_text = line[i:].strip()
        if not value_text or len(value_text.split()) != 1:
            raise ValueError(
                f"line {lineno}: expected one sample value, got "
                f"{line!r}")
        base = sample_name
        for suffix in ("_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in metrics:
                base = base[: -len(suffix)]
                break
        if base not in metrics:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its "
                f"# TYPE header")
        key = sample_name
        if labels:
            body = ",".join(f'{k}="{v}"' for k, v in labels)
            key = f"{sample_name}{{{body}}}"
        metrics[base]["samples"][key] = float(value_text)
    return metrics
