"""Online MoE training-health detectors (``repro.obs.health``).

The adaptive machinery only pays off when its failure modes are
*visible while they happen*: expert collapse, routing-entropy drift,
capacity overflow and strategy churn are exactly what the paper's
dynamic workloads (Figure 1, Table 12) induce.  A
:class:`HealthMonitor` sits on the trainer's step loop, consumes the
per-layer :class:`repro.moe.metrics.RoutingStats` plus scalar step
signals, and emits structured :class:`HealthAlert` events into both
the active run's event stream (:mod:`repro.obs.runs`) and the trace
recorder (``CAT_HEALTH`` instants).

Detector math (all deterministic — pure functions of the observed
sequence, no RNG, so alerts land on identical steps under a fixed
seed):

* **EWMA z-score** (:class:`EwmaDetector`) — exponentially weighted
  mean ``m ← m + α·(x − m)`` and variance ``v ← (1−α)·(v + α·d²)``
  with ``d = x − m_prev``; the score of a new ``x`` is
  ``z = (x − m)/√v`` against the *pre-update* moments.  Used on
  routing entropy (drift down), load Gini (drift up) and the gradient
  norm (spikes).  No score until ``warmup`` observations.
* **Absolute floors/ceilings** — normalized entropy below
  ``entropy_floor`` is a collapse regardless of history; drop rate and
  needed-capacity-factor cross fixed thresholds.
* **Dead-expert detection** — an expert whose routed load stays below
  ``dead_floor_fraction`` of its uniform share (``T·k/E``) for
  ``dead_window`` *consecutive* steps is declared dead (expert failure
  or gate starvation).
* **Hysteresis** — every detector alerts on *entering* the bad state
  and re-arms when the signal recovers, so a persistent condition is
  one alert, not one per step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.obs import CAT_HEALTH, get_observer
from repro.obs.runs import get_run

__all__ = [
    "HealthAlert",
    "HealthConfig",
    "EwmaDetector",
    "HealthMonitor",
]


@dataclass(frozen=True)
class HealthAlert:
    """One structured health event.

    ``kind`` is one of ``entropy_drift`` / ``imbalance_drift`` /
    ``drop_rate`` / ``capacity_overflow`` / ``dead_expert`` /
    ``grad_spike``; ``severity`` is ``"warn"`` or ``"critical"``.
    """

    kind: str
    step: int
    severity: str
    value: float
    threshold: float
    layer: int | None = None
    expert: int | None = None
    message: str = ""

    def to_json_obj(self) -> dict:
        return {
            "kind": self.kind, "step": self.step,
            "severity": self.severity, "value": self.value,
            "threshold": self.threshold, "layer": self.layer,
            "expert": self.expert, "message": self.message,
        }

    def describe(self) -> str:
        where = "" if self.layer is None else f" layer={self.layer}"
        if self.expert is not None:
            where += f" expert={self.expert}"
        return (f"[{self.severity}] {self.kind}@step {self.step}{where}: "
                f"{self.message}")


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and windows of every detector (all tunable)."""

    ewma_alpha: float = 0.15
    warmup_steps: int = 8
    entropy_z: float = 4.0            # downward z-score on entropy
    entropy_floor: float = 0.5        # absolute normalized-entropy floor
    gini_z: float = 4.0               # upward z-score on load Gini
    gini_ceiling: float = 0.8         # absolute Gini ceiling
    drop_rate_threshold: float = 0.3  # fraction of tokens dropped
    overflow_factor: float = 3.0      # needed capacity factor ceiling
    grad_z: float = 6.0               # upward z-score on gradient norm
    dead_floor_fraction: float = 0.1  # of the uniform share T*k/E
    dead_window: int = 5              # consecutive starved steps

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.dead_window < 1:
            raise ValueError(
                f"dead_window must be >= 1, got {self.dead_window}")


class EwmaDetector:
    """EWMA mean/variance tracker scoring each value pre-update."""

    __slots__ = ("alpha", "warmup", "count", "mean", "var")

    def __init__(self, alpha: float, warmup: int) -> None:
        self.alpha = alpha
        self.warmup = warmup
        self.count = 0
        self.mean = 0.0
        self.var = 0.0

    def update(self, value: float) -> float:
        """Fold ``value`` in; return its z-score against the moments
        *before* the update (0.0 during warmup or at zero variance)."""
        value = float(value)
        if self.count == 0:
            z = 0.0
            self.mean = value
        else:
            sd = math.sqrt(self.var)
            z = ((value - self.mean) / sd
                 if sd > 1e-12 and self.count >= self.warmup else 0.0)
            delta = value - self.mean
            self.mean += self.alpha * delta
            self.var = (1.0 - self.alpha) * (
                self.var + self.alpha * delta * delta)
        self.count += 1
        return z


class _Hysteresis:
    """Alert-on-entry latch: ``trip(bad)`` is True only on a
    good -> bad transition."""

    __slots__ = ("bad",)

    def __init__(self) -> None:
        self.bad = False

    def trip(self, bad: bool) -> bool:
        fired = bad and not self.bad
        self.bad = bad
        return fired


@dataclass
class HealthMonitor:
    """Per-run online detector bank.

    ``observe_routing`` / ``observe_step`` return the alerts they
    raised *and* emit each one into the active run's event stream and
    the process observer (``CAT_HEALTH`` instant + counter), when
    either is installed.
    """

    config: HealthConfig = field(default_factory=HealthConfig)
    alerts: list[HealthAlert] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._entropy: dict[int, EwmaDetector] = {}
        self._gini: dict[int, EwmaDetector] = {}
        self._grad = EwmaDetector(self.config.ewma_alpha,
                                  self.config.warmup_steps)
        self._latches: dict[tuple, _Hysteresis] = {}
        self._dead_count: dict[tuple[int, int], int] = {}
        self._dead_alerted: set[tuple[int, int]] = set()

    # -- plumbing ------------------------------------------------------

    def _latch(self, *key: Any) -> _Hysteresis:
        latch = self._latches.get(key)
        if latch is None:
            latch = self._latches[key] = _Hysteresis()
        return latch

    def _detector(self, bank: dict[int, EwmaDetector],
                  layer: int) -> EwmaDetector:
        det = bank.get(layer)
        if det is None:
            det = bank[layer] = EwmaDetector(self.config.ewma_alpha,
                                             self.config.warmup_steps)
        return det

    def _raise_alert(self, alert: HealthAlert) -> HealthAlert:
        self.alerts.append(alert)
        run = get_run()
        if run is not None:
            run.emit("alert", step=alert.step, data=alert.to_json_obj())
        ob = get_observer()
        if ob is not None:
            ob.instant(alert.kind, CAT_HEALTH,
                       args=alert.to_json_obj())
        return alert

    # -- routing-side detectors ----------------------------------------

    def observe_routing(self, step: int, layer: int,
                        stats: Any) -> list[HealthAlert]:
        """Feed one layer's :class:`RoutingStats` for one step.

        ``stats`` is duck-typed (``num_tokens``, ``top_k``,
        ``routing_entropy``, ``load_gini``, ``dropped_fraction``,
        ``needed_capacity_factor``, ``expert_load``).  Zero-token
        steps are skipped outright — the metrics guards keep them
        NaN-free, but they carry no routing evidence.
        """
        cfg = self.config
        if stats.num_tokens <= 0:
            return []
        raised: list[HealthAlert] = []

        entropy = float(stats.routing_entropy)
        z = self._detector(self._entropy, layer).update(entropy)
        collapsed = entropy < cfg.entropy_floor
        if self._latch("entropy", layer).trip(
                collapsed or z <= -cfg.entropy_z):
            raised.append(self._raise_alert(HealthAlert(
                kind="entropy_drift", step=step, layer=layer,
                severity="critical" if collapsed else "warn",
                value=entropy,
                threshold=(cfg.entropy_floor if collapsed
                           else -cfg.entropy_z),
                message=(f"routing entropy {entropy:.3f} "
                         + (f"below floor {cfg.entropy_floor}"
                            if collapsed else f"z={z:.1f} drop")))))

        gini = float(stats.load_gini)
        z = self._detector(self._gini, layer).update(gini)
        skewed = gini > cfg.gini_ceiling
        if self._latch("gini", layer).trip(skewed or z >= cfg.gini_z):
            raised.append(self._raise_alert(HealthAlert(
                kind="imbalance_drift", step=step, layer=layer,
                severity="critical" if skewed else "warn",
                value=gini,
                threshold=(cfg.gini_ceiling if skewed else cfg.gini_z),
                message=(f"load Gini {gini:.3f} "
                         + (f"above ceiling {cfg.gini_ceiling}"
                            if skewed else f"z={z:.1f} rise")))))

        dropped = float(stats.dropped_fraction)
        if self._latch("drop", layer).trip(
                dropped > cfg.drop_rate_threshold):
            raised.append(self._raise_alert(HealthAlert(
                kind="drop_rate", step=step, layer=layer,
                severity="warn", value=dropped,
                threshold=cfg.drop_rate_threshold,
                message=f"{dropped:.1%} of routed tokens dropped")))

        needed_f = float(stats.needed_capacity_factor)
        if self._latch("overflow", layer).trip(
                needed_f > cfg.overflow_factor):
            raised.append(self._raise_alert(HealthAlert(
                kind="capacity_overflow", step=step, layer=layer,
                severity="warn", value=needed_f,
                threshold=cfg.overflow_factor,
                message=(f"needed capacity factor {needed_f:.2f} "
                         f"exceeds {cfg.overflow_factor}"))))

        raised.extend(self._observe_dead_experts(step, layer, stats))
        return raised

    def _observe_dead_experts(self, step: int, layer: int,
                              stats: Any) -> list[HealthAlert]:
        cfg = self.config
        load = stats.expert_load
        num_experts = len(load)
        if num_experts < 2:
            return []
        share = stats.num_tokens * stats.top_k / num_experts
        floor = cfg.dead_floor_fraction * share
        raised: list[HealthAlert] = []
        for expert, count in enumerate(load):
            key = (layer, expert)
            if count < floor:
                self._dead_count[key] = self._dead_count.get(key, 0) + 1
                if (self._dead_count[key] >= cfg.dead_window
                        and key not in self._dead_alerted):
                    self._dead_alerted.add(key)
                    raised.append(self._raise_alert(HealthAlert(
                        kind="dead_expert", step=step, layer=layer,
                        expert=expert, severity="critical",
                        value=float(count), threshold=floor,
                        message=(f"expert {expert} below "
                                 f"{cfg.dead_floor_fraction:.0%} of "
                                 f"uniform share for "
                                 f"{cfg.dead_window} steps"))))
            else:
                self._dead_count[key] = 0
                self._dead_alerted.discard(key)
        return raised

    # -- scalar step signals -------------------------------------------

    def observe_step(self, step: int, loss: float | None = None,
                     grad_norm: float | None = None
                     ) -> list[HealthAlert]:
        """Feed the step-level scalars (loss kept for the event stream;
        the gradient norm drives the spike detector)."""
        raised: list[HealthAlert] = []
        if grad_norm is not None and math.isfinite(grad_norm):
            z = self._grad.update(grad_norm)
            if self._latch("grad").trip(z >= self.config.grad_z):
                raised.append(self._raise_alert(HealthAlert(
                    kind="grad_spike", step=step, severity="warn",
                    value=float(grad_norm), threshold=self.config.grad_z,
                    message=(f"gradient norm {grad_norm:.3g} spiked "
                             f"(z={z:.1f})"))))
        return raised
