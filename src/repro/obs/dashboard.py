"""Static HTML dashboard for a recorded run (``repro.obs.dashboard``).

``repro dashboard <run_id|latest>`` renders one run directory
(:mod:`repro.obs.runs`) into a **self-contained** HTML file: inline
SVG sparklines and heatmaps, inline CSS, no JavaScript, no external
assets — pure stdlib, viewable from ``file://`` on an air-gapped box.

Sections: run identity header, stat tiles, loss / gradient-norm
sparklines with health-alert markers, per-layer routing panels
(entropy + load-Gini bands, per-expert utilization heatmap over
steps), profiler panels when the run carries a ``profile`` event
(live-bytes allocation timeline, per-stage FLOP-share bars, peak-
memory tile), the fault / recovery / strategy / checkpoint timeline,
the alerts table, and a collapsible step table so every plotted
number is also readable as text.

Color discipline follows the repo's viz conventions: one categorical
series hue, a single-hue sequential blue ramp for the heatmap, status
colors reserved for alert severity and always paired with a text
label, all ink on CSS custom properties with a dark scheme selected
via ``prefers-color-scheme``.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.runs import RunStore

__all__ = ["RunSeries", "build_series", "render_dashboard",
           "write_dashboard"]

# Single-hue sequential ramp (steps 100..700), lightest = near zero.
_RAMP = ["#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec",
         "#5598e7", "#3987e5", "#2a78d6", "#256abf", "#1c5cab",
         "#184f95", "#104281", "#0d366b"]

#: severity -> (status token, text glyph); never color alone.
_SEVERITY = {"warn": ("warning", "!"), "critical": ("critical", "✖")}

_TIMELINE_KINDS = ("fault", "recovery", "strategy_switch",
                   "ckpt_saved", "ckpt_restored", "scenario")
_TIMELINE_GLYPHS = {"fault": ("critical", "✖"),
                    "recovery": ("good", "✓"),
                    "strategy_switch": ("warning", "⇄"),
                    "ckpt_saved": ("good", "▽"),
                    "ckpt_restored": ("warning", "△"),
                    "scenario": ("warning", "◆")}

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink-1);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink-1: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5;
    --border: rgba(255, 255, 255, 0.10);
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 24px 0 8px; }
.sub { color: var(--ink-2); font-size: 13px; margin-bottom: 16px; }
.sub code { color: var(--ink-2); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 110px;
}
.tile .label { color: var(--muted); font-size: 11px;
  text-transform: uppercase; letter-spacing: 0.04em; }
.tile .value { font-size: 22px; margin-top: 2px; }
.tile .value small { font-size: 12px; color: var(--ink-2); }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; margin-bottom: 14px;
}
.panel .title { font-size: 13px; color: var(--ink-2);
  margin-bottom: 6px; }
svg { display: block; }
svg text { font-family: inherit; }
table { border-collapse: collapse; font-size: 13px; width: 100%; }
th, td { text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-weight: 500; }
.status { white-space: nowrap; }
.status .dot { display: inline-block; width: 9px; height: 9px;
  border-radius: 50%; margin-right: 5px; }
.good .dot { background: var(--status-good); }
.warning .dot { background: var(--status-warning); }
.serious .dot { background: var(--status-serious); }
.critical .dot { background: var(--status-critical); }
details { margin: 10px 0; }
summary { cursor: pointer; color: var(--ink-2); font-size: 13px; }
pre { font-size: 12px; overflow-x: auto; color: var(--ink-2); }
.empty { color: var(--muted); font-size: 13px; font-style: italic; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float | int | None) -> str:
    if value is None:
        return "–"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3g}"
    return f"{value:.4g}".rstrip("0").rstrip(".")


def _fmt_bytes(nbytes: float) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return (f"{value:.0f} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024
    return f"{value:.1f} GiB"


class RunSeries:
    """Event stream reshaped into plot-ready series."""

    def __init__(self) -> None:
        self.steps: list[int] = []
        self.loss: list[float] = []
        self.grad_norm: list[float] = []
        # layer -> parallel lists keyed off routing events
        self.routing_steps: dict[int, list[int]] = {}
        self.entropy: dict[int, list[float]] = {}
        self.gini: dict[int, list[float]] = {}
        self.expert_load: dict[int, list[Sequence[float]]] = {}
        self.alerts: list[dict] = []
        self.timeline: list[dict] = []
        self.evals: list[dict] = []
        # Scenario-engine SLO assertions ("slo_check" events).
        self.slo_checks: list[dict] = []
        # Latest op-level profiler summary ("profile" event, last wins).
        self.profile: dict | None = None
        # Serving-engine series ("serve" / "serve_batch" /
        # "serving_load" events).
        self.serve_begin: dict | None = None
        self.serve_batches: list[dict] = []
        self.serving_load: dict | None = None
        # Routing-provenance payloads ("routing_load" /
        # "routing_affinity"); the recorder emits running totals, so
        # the last event of each kind is the run's aggregate.
        self.routing_load: dict | None = None
        self.routing_affinity: dict | None = None

    @property
    def layers(self) -> list[int]:
        return sorted(self.routing_steps)


def build_series(events: Iterable[Mapping]) -> RunSeries:
    """Fold a run's event stream into :class:`RunSeries`."""
    series = RunSeries()
    for event in events:
        kind = event.get("kind")
        step = event.get("step")
        data = event.get("data") or {}
        if kind == "step" and step is not None:
            series.steps.append(int(step))
            series.loss.append(float(data.get("loss", float("nan"))))
            if "grad_norm" in data:
                series.grad_norm.append(float(data["grad_norm"]))
        elif kind == "routing" and step is not None and step >= 0:
            layer = int(data.get("layer", 0))
            series.routing_steps.setdefault(layer, []).append(int(step))
            series.entropy.setdefault(layer, []).append(
                float(data.get("entropy", 0.0)))
            series.gini.setdefault(layer, []).append(
                float(data.get("gini", 0.0)))
            series.expert_load.setdefault(layer, []).append(
                list(data.get("expert_load", [])))
        elif kind == "alert":
            series.alerts.append(dict(data))
        elif kind in _TIMELINE_KINDS:
            # A payload's own "kind" (e.g. fault -> "expert_failure")
            # must not clobber the event kind the glyph map keys on.
            payload = dict(data)
            detail_kind = payload.pop("kind", None)
            entry = {"kind": kind, "step": step, **payload}
            if detail_kind is not None:
                entry["what"] = detail_kind
            series.timeline.append(entry)
        elif kind == "eval":
            series.evals.append(dict(data))
        elif kind == "profile":
            series.profile = dict(data)
        elif kind == "slo_check":
            series.slo_checks.append(dict(data))
        elif kind == "serve" and data.get("kind") == "begin":
            series.serve_begin = dict(data)
        elif kind == "serve_batch":
            series.serve_batches.append(dict(data))
        elif kind == "serving_load":
            series.serving_load = dict(data)
        elif kind == "routing_load":
            series.routing_load = dict(data)
        elif kind == "routing_affinity":
            series.routing_affinity = dict(data)
    return series


# ----------------------------------------------------------------------
# SVG builders
# ----------------------------------------------------------------------

def _scale(vmin: float, vmax: float, lo: float,
           hi: float) -> "callable":
    span = vmax - vmin
    if span == 0:
        return lambda v: (lo + hi) / 2.0
    return lambda v: lo + (v - vmin) / span * (hi - lo)


def _line_chart(steps: Sequence[int], values: Sequence[float],
                markers: Sequence[tuple[int, str, str]] = (),
                width: int = 640, height: int = 150,
                x_label: str = "step") -> str:
    """One-series sparkline; ``markers`` are ``(step, severity,
    label)`` alert flags drawn as status-colored stems."""
    pts = [(s, v) for s, v in zip(steps, values) if v == v]
    if not pts:
        return '<p class="empty">no data points recorded</p>'
    pad_l, pad_r, pad_t, pad_b = 48, 10, 12, 20
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    sx = _scale(min(xs), max(xs), pad_l, width - pad_r)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    sy = _scale(y_lo, y_hi, height - pad_b, pad_t)
    out = [f'<svg viewBox="0 0 {width} {height}" width="100%" '
           f'role="img">']
    # hairline grid: top / mid / baseline, value labels in muted ink
    for frac in (0.0, 0.5, 1.0):
        gy = sy(y_lo + frac * (y_hi - y_lo))
        color = "var(--baseline)" if frac == 0.0 else "var(--grid)"
        out.append(f'<line x1="{pad_l}" y1="{gy:.1f}" '
                   f'x2="{width - pad_r}" y2="{gy:.1f}" '
                   f'stroke="{color}" stroke-width="1"/>')
        out.append(f'<text x="{pad_l - 6}" y="{gy + 4:.1f}" '
                   f'text-anchor="end" font-size="10" '
                   f'fill="var(--muted)">'
                   f'{_esc(_fmt(y_lo + frac * (y_hi - y_lo)))}</text>')
    for x, anchor in ((min(xs), "start"), (max(xs), "end")):
        out.append(f'<text x="{sx(x):.1f}" y="{height - 6}" '
                   f'text-anchor="{anchor}" font-size="10" '
                   f'fill="var(--muted)">{_esc(x_label)} {x}</text>')
    # alert stems behind the series line
    for mstep, severity, label in markers:
        token, glyph = _SEVERITY.get(severity, ("warning", "!"))
        mx = sx(min(max(mstep, min(xs)), max(xs)))
        out.append(
            f'<line x1="{mx:.1f}" y1="{pad_t}" x2="{mx:.1f}" '
            f'y2="{height - pad_b}" stroke="var(--status-{token})" '
            f'stroke-width="1.5" stroke-dasharray="2 3"/>'
            f'<circle cx="{mx:.1f}" cy="{pad_t}" r="4" '
            f'fill="var(--status-{token})">'
            f'<title>{_esc(label)}</title></circle>')
    if len(pts) == 1:
        # A one-sample series must still be visible: a polyline with a
        # single point renders nothing, so draw a dot instead.
        x, y = pts[0]
        out.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                   f'fill="var(--series-1)"/>')
    else:
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        out.append(f'<polyline points="{path}" fill="none" '
                   f'stroke="var(--series-1)" stroke-width="2" '
                   f'stroke-linejoin="round"/>')
    # invisible-ring hover targets carrying native tooltips
    if len(pts) <= 400:
        for x, y in pts:
            out.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="5" '
                f'fill="transparent" pointer-events="all">'
                f'<title>{_esc(x_label)} {x}: {_esc(_fmt(y))}'
                f'</title></circle>')
    out.append("</svg>")
    return "".join(out)


def _heatmap(steps: Sequence[int],
             loads: Sequence[Sequence[float]]) -> str:
    """Experts (rows) × steps (columns) utilization heatmap on the
    sequential blue ramp; lightest step means near-zero load."""
    if not loads or not loads[0]:
        return '<p class="empty">no expert-load records</p>'
    num_experts = max(len(row) for row in loads)
    peak = max((max(row) if row else 0.0) for row in loads)
    pad_l, pad_t = 40, 4
    cell_w = max(3, min(22, 600 // max(1, len(loads))))
    cell_h = 14
    gap = 2  # surface shows through between fills
    width = pad_l + len(loads) * (cell_w + gap) + 10
    height = pad_t + num_experts * (cell_h + gap) + 20
    out = [f'<svg viewBox="0 0 {width} {height}" width="100%" '
           f'role="img">']
    for e in range(num_experts):
        cy = pad_t + e * (cell_h + gap)
        out.append(f'<text x="{pad_l - 6}" y="{cy + cell_h - 3}" '
                   f'text-anchor="end" font-size="10" '
                   f'fill="var(--muted)">E{e}</text>')
        for i, row in enumerate(loads):
            value = float(row[e]) if e < len(row) else 0.0
            idx = 0 if peak <= 0 else round(
                value / peak * (len(_RAMP) - 1))
            cx = pad_l + i * (cell_w + gap)
            out.append(
                f'<rect x="{cx}" y="{cy}" width="{cell_w}" '
                f'height="{cell_h}" rx="2" fill="{_RAMP[idx]}">'
                f'<title>step {steps[i]}, expert {e}: '
                f'{_esc(_fmt(value))} tokens</title></rect>')
    for i, anchor in ((0, "start"), (len(loads) - 1, "end")):
        out.append(
            f'<text x="{pad_l + i * (cell_w + gap):.1f}" '
            f'y="{height - 6}" text-anchor="{anchor}" font-size="10" '
            f'fill="var(--muted)">step {steps[i]}</text>')
    out.append("</svg>")
    return "".join(out)


def _share_bars(items: Sequence[tuple[str, float]],
                width: int = 640) -> str:
    """Horizontal share bars (e.g. per-stage FLOP fraction): label,
    single-hue bar scaled to the largest entry, percent as text so the
    number survives without the ink."""
    rows = [(label, max(0.0, float(v))) for label, v in items]
    total = sum(v for _, v in rows)
    if not rows or total <= 0:
        return '<p class="empty">no profiled work recorded</p>'
    rows.sort(key=lambda kv: -kv[1])
    peak = rows[0][1]
    pad_l, bar_max, row_h, gap = 110, width - 110 - 70, 18, 6
    height = len(rows) * (row_h + gap)
    out = [f'<svg viewBox="0 0 {width} {height}" width="100%" '
           f'role="img">']
    for i, (label, value) in enumerate(rows):
        y = i * (row_h + gap)
        share = value / total
        bar = bar_max * (value / peak)
        out.append(
            f'<text x="{pad_l - 8}" y="{y + row_h - 5}" '
            f'text-anchor="end" font-size="11" fill="var(--ink-2)">'
            f'{_esc(label)}</text>'
            f'<rect x="{pad_l}" y="{y}" width="{bar:.1f}" '
            f'height="{row_h}" rx="2" fill="var(--series-1)">'
            f'<title>{_esc(label)}: {_esc(_fmt(value))} '
            f'({share:.1%})</title></rect>'
            f'<text x="{pad_l + bar + 6:.1f}" y="{y + row_h - 5}" '
            f'font-size="11" fill="var(--muted)">{share:.1%}</text>')
    out.append("</svg>")
    return "".join(out)


def _matrix_heatmap(matrix: Sequence[Sequence[float]],
                    row_prefix: str = "E",
                    col_prefix: str = "E") -> str:
    """Square count matrix (rows = source expert, columns =
    destination expert) on the sequential blue ramp; an all-zero
    matrix renders every cell at the lightest step."""
    if not matrix or not matrix[0]:
        return '<p class="empty">no affinity transitions recorded</p>'
    n_rows = len(matrix)
    n_cols = max(len(row) for row in matrix)
    peak = max((max(row) if row else 0.0) for row in matrix)
    pad_l, pad_t = 44, 18
    cell = max(8, min(26, 480 // max(1, n_cols)))
    gap = 2
    width = pad_l + n_cols * (cell + gap) + 10
    height = pad_t + n_rows * (cell + gap) + 8
    out = [f'<svg viewBox="0 0 {width} {height}" width="100%" '
           f'role="img">']
    for j in range(n_cols):
        out.append(
            f'<text x="{pad_l + j * (cell + gap) + cell / 2:.1f}" '
            f'y="{pad_t - 5}" text-anchor="middle" font-size="9" '
            f'fill="var(--muted)">{_esc(col_prefix)}{j}</text>')
    for i, row in enumerate(matrix):
        cy = pad_t + i * (cell + gap)
        out.append(f'<text x="{pad_l - 6}" y="{cy + cell - 3}" '
                   f'text-anchor="end" font-size="9" '
                   f'fill="var(--muted)">{_esc(row_prefix)}{i}</text>')
        for j in range(n_cols):
            value = float(row[j]) if j < len(row) else 0.0
            idx = 0 if peak <= 0 else round(
                value / peak * (len(_RAMP) - 1))
            out.append(
                f'<rect x="{pad_l + j * (cell + gap)}" y="{cy}" '
                f'width="{cell}" height="{cell}" rx="2" '
                f'fill="{_RAMP[idx]}">'
                f'<title>{_esc(row_prefix)}{i} → {_esc(col_prefix)}{j}: '
                f'{_esc(_fmt(value))} tokens</title></rect>')
    out.append("</svg>")
    return "".join(out)


def _routing_panels(series: RunSeries) -> list[str]:
    """Routing-provenance panels: the inter-layer expert-affinity
    heatmap plus a hop-locality breakdown of the recorded traffic
    re-priced on the default 2-node scoring world (the same
    `repro route` uses); runs whose shapes have no legal placement on
    that world just skip the hop panels."""
    panels: list[str] = []
    affinity = series.routing_affinity or {}
    transitions = affinity.get("transitions") or []
    if transitions:
        summed = None
        for pair in transitions:
            if summed is None:
                summed = [[float(v) for v in row] for row in pair]
            else:
                for i, row in enumerate(pair):
                    for j, v in enumerate(row):
                        summed[i][j] += float(v)
        panels.append(_panel(
            "routing · inter-layer expert affinity (rows: expert at "
            "layer l, columns: expert at l+1, summed over layer pairs)",
            _matrix_heatmap(summed or [])))
    if series.routing_load:
        try:
            from repro.cluster.topology import ndv4_topology
            from repro.core.substrate import default_itemsize
            from repro.obs.routing import (
                profile_from_events,
                whatif_placements,
            )

            events = [{"kind": "routing_load",
                       "data": series.routing_load}]
            if series.routing_affinity:
                events.append({"kind": "routing_affinity",
                               "data": series.routing_affinity})
            profile = profile_from_events(events)
            scores = whatif_placements(
                profile, ndv4_topology(4, gpus_per_node=2),
                bytes_per_token=32 * default_itemsize())
        except ValueError:
            scores = []
        for score in scores:
            led = score.ledger
            panels.append(_panel(
                f"routing · token-hop locality under "
                f"{score.name} ({led.num_gpus} GPUs, priced "
                f"{led.priced_seconds * 1e3:.4f} ms inter-node)",
                _share_bars([
                    ("intra-GPU", float(led.intra_gpu)),
                    ("intra-node", float(led.intra_node)),
                    ("inter-node", float(led.inter_node)),
                ])))
    return panels


def _serving_panels(series: RunSeries) -> list[str]:
    """The serving panel: latency percentile sparklines over batch
    close time, the queue-depth timeline, and per-stage latency share
    bars (all six ledger spans)."""
    batches = series.serve_batches
    closes = [int(b.get("close_ms", 0)) for b in batches]
    brownout_markers = []
    was = False
    for b in batches:
        now = bool(b.get("brownout"))
        if now != was:
            brownout_markers.append(
                (int(b.get("close_ms", 0)), "warn",
                 "brownout " + ("begins" if now else "clears")))
        was = now
    panels = []
    for q in ("p50", "p95", "p99"):
        panels.append(_panel(
            f"serving · rolling model {q} latency (ms)",
            _line_chart(closes,
                        [float(b.get(f"{q}_ms", 0.0)) for b in batches],
                        markers=brownout_markers,
                        x_label="batch close (virtual ms)")))
    panels.append(_panel(
        "serving · queue depth at batch close",
        _line_chart(closes,
                    [float(b.get("queue_depth", 0)) for b in batches],
                    markers=brownout_markers,
                    x_label="batch close (virtual ms)")))
    load = series.serving_load or {}
    span_totals = load.get("span_totals_ns") or {}
    if span_totals:
        panels.append(_panel(
            "serving · latency share by stage (sum over requests)",
            _share_bars([(stage, float(ns) / 1e6)
                         for stage, ns in span_totals.items()])))
    return panels


# ----------------------------------------------------------------------
# HTML assembly
# ----------------------------------------------------------------------

def _tile(label: str, value: str, note: str = "") -> str:
    suffix = f" <small>{_esc(note)}</small>" if note else ""
    return (f'<div class="tile"><div class="label">{_esc(label)}'
            f'</div><div class="value">{_esc(value)}{suffix}'
            f'</div></div>')


def _panel(title: str, body: str) -> str:
    return (f'<div class="panel"><div class="title">{_esc(title)}'
            f'</div>{body}</div>')


def _status_cell(token: str, glyph: str, label: str) -> str:
    return (f'<span class="status {token}"><span class="dot"></span>'
            f'{_esc(glyph)} {_esc(label)}</span>')


def _alerts_table(alerts: Sequence[Mapping]) -> str:
    if not alerts:
        return '<p class="empty">no health alerts raised</p>'
    rows = []
    for a in alerts:
        token, glyph = _SEVERITY.get(a.get("severity", "warn"),
                                     ("warning", "!"))
        where = "" if a.get("layer") is None else f'L{a["layer"]}'
        if a.get("expert") is not None:
            where += f'/E{a["expert"]}'
        rows.append(
            f'<tr><td>{_esc(a.get("step", "–"))}</td>'
            f'<td>{_esc(a.get("kind", "?"))}</td>'
            f'<td>{_status_cell(token, glyph, a.get("severity", ""))}'
            f'</td><td>{_esc(where or "–")}</td>'
            f'<td>{_esc(_fmt(a.get("value")))}</td>'
            f'<td>{_esc(_fmt(a.get("threshold")))}</td>'
            f'<td>{_esc(a.get("message", ""))}</td></tr>')
    return ('<table><thead><tr><th>step</th><th>kind</th>'
            '<th>severity</th><th>where</th><th>value</th>'
            '<th>threshold</th><th>message</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>')


def _slo_table(checks: Sequence[Mapping]) -> str:
    if not checks:
        return '<p class="empty">no SLO checks recorded</p>'
    rows = []
    for c in checks:
        passed = bool(c.get("passed"))
        token, glyph = (("good", "✓") if passed
                        else ("critical", "✖"))
        bound = (f'{c.get("op", "<=")} '
                 f'{_fmt(float(c.get("bound", 0.0)))}')
        kind = "wall-clock" if c.get("measured") else "model"
        rows.append(
            f'<tr><td>{_esc(c.get("name", "?"))}</td>'
            f'<td>{_esc(_fmt(float(c.get("value", 0.0))))}</td>'
            f'<td>{_esc(bound)}</td><td>{_esc(kind)}</td>'
            f'<td>{_status_cell(token, glyph, "pass" if passed else "fail")}'
            f'</td></tr>')
    return ('<table><thead><tr><th>SLO</th><th>value</th>'
            '<th>bound</th><th>kind</th><th>verdict</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>')


def _timeline_table(timeline: Sequence[Mapping]) -> str:
    if not timeline:
        return ('<p class="empty">no fault / recovery / strategy '
                'events</p>')
    rows = []
    for ev in timeline:
        token, glyph = _TIMELINE_GLYPHS.get(ev.get("kind", ""),
                                            ("warning", "?"))
        detail = ", ".join(f"{k}={_fmt(v) if isinstance(v, float) else v}"
                           for k, v in ev.items()
                           if k not in ("kind", "step"))
        rows.append(
            f'<tr><td>{_esc(ev.get("step", "–"))}</td>'
            f'<td>{_status_cell(token, glyph, ev.get("kind", "?"))}'
            f'</td><td>{_esc(detail)}</td></tr>')
    return ('<table><thead><tr><th>step</th><th>event</th>'
            '<th>detail</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>')


def _step_table(series: RunSeries, limit: int = 200) -> str:
    if not series.steps:
        return '<p class="empty">no training steps recorded</p>'
    layer0 = series.layers[0] if series.layers else None
    rows = []
    for i, step in enumerate(series.steps[:limit]):
        loss = _fmt(series.loss[i]) if i < len(series.loss) else "–"
        grad = (_fmt(series.grad_norm[i])
                if i < len(series.grad_norm) else "–")
        ent = gini = "–"
        if layer0 is not None:
            try:
                j = series.routing_steps[layer0].index(step)
                ent = _fmt(series.entropy[layer0][j])
                gini = _fmt(series.gini[layer0][j])
            except ValueError:
                pass
        rows.append(f"<tr><td>{step}</td><td>{_esc(loss)}</td>"
                    f"<td>{_esc(grad)}</td><td>{_esc(ent)}</td>"
                    f"<td>{_esc(gini)}</td></tr>")
    truncated = ("" if len(series.steps) <= limit else
                 f'<p class="empty">… {len(series.steps) - limit} '
                 f'more steps omitted</p>')
    return ('<table><thead><tr><th>step</th><th>loss</th>'
            '<th>grad&nbsp;norm</th><th>entropy (L0)</th>'
            '<th>gini (L0)</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>{truncated}')


def render_dashboard(store: RunStore, token: str = "latest",
                     refresh: int | None = None) -> str:
    """Render one run into a standalone HTML document string.

    ``refresh`` adds a ``<meta http-equiv="refresh">`` so the page
    reloads every N seconds — the live-monitoring mode used by
    ``repro dashboard --refresh`` and the ``/`` route of
    :class:`repro.obs.live.LiveServer`.
    """
    run_id = store.resolve(token)
    manifest = store.manifest(run_id)
    series = build_series(store.events(run_id))

    step_markers = [(a.get("step", 0), a.get("severity", "warn"),
                     f'{a.get("kind", "alert")}: '
                     f'{a.get("message", "")}')
                    for a in series.alerts if a.get("layer") is None]
    critical = sum(1 for a in series.alerts
                   if a.get("severity") == "critical")

    tiles = [
        _tile("steps", str(len(series.steps))),
        _tile("final loss",
              _fmt(series.loss[-1]) if series.loss else "–"),
        _tile("alerts", str(len(series.alerts)),
              note=f"{critical} critical" if critical else ""),
        _tile("seed", str(manifest.seed)
              if manifest.seed is not None else "–"),
        _tile("status", manifest.status),
    ]
    if series.evals:
        final_eval = series.evals[-1]
        if "accuracy" in final_eval:
            tiles.insert(2, _tile("eval accuracy",
                                  _fmt(final_eval["accuracy"])))
    if series.slo_checks:
        failed = sum(1 for c in series.slo_checks
                     if not c.get("passed"))
        tiles.append(_tile(
            "SLO checks", f"{len(series.slo_checks) - failed}"
                          f"/{len(series.slo_checks)}",
            note=f"{failed} failed" if failed else "all pass"))

    panels = [_panel("training loss",
                     _line_chart(series.steps, series.loss,
                                 markers=step_markers))]
    if series.grad_norm:
        panels.append(_panel("gradient norm",
                             _line_chart(series.steps,
                                         series.grad_norm,
                                         markers=step_markers)))

    if series.profile is not None:
        prof = series.profile
        totals = prof.get("totals") or {}
        if prof.get("peak_bytes") is not None:
            tiles.append(_tile(
                "peak memory", _fmt_bytes(prof["peak_bytes"]),
                note="profiled"))
        if totals.get("flops"):
            tiles.append(_tile("profiled flops",
                               _fmt(float(totals["flops"]))))
        timeline_rows = prof.get("alloc_timeline") or []
        if timeline_rows:
            panels.append(_panel(
                "profiler · live tensor bytes over allocation events "
                "(fwd+bwd)",
                _line_chart([int(r[0]) for r in timeline_rows],
                            [float(r[1]) for r in timeline_rows],
                            x_label="alloc")))
        by_stage = prof.get("by_stage") or {}
        shares = [(stage, row.get("flops", 0.0))
                  for stage, row in by_stage.items()]
        if any(v > 0 for _, v in shares):
            panels.append(_panel(
                "profiler · FLOP share by MoE stage",
                _share_bars(shares)))

    if series.serve_batches:
        served = sum(int(b.get("size", 0))
                     for b in series.serve_batches)
        last = series.serve_batches[-1]
        tiles.append(_tile("requests served", str(served)))
        tiles.append(_tile("model p99",
                           f'{float(last.get("p99_ms", 0.0)):.1f} ms'))
        tiles.append(_tile(
            "max queue depth",
            str(max(int(b.get("queue_depth", 0))
                    for b in series.serve_batches))))
        panels.extend(_serving_panels(series))

    if series.routing_load:
        tiles.append(_tile(
            "dispatched slots",
            str(int(sum(sum(int(v) for v in bucket)
                        for layer_rows in
                        (series.routing_load.get("dispatched") or [])
                        for bucket in layer_rows))),
            note="post-drop"))
    panels.extend(_routing_panels(series))

    for layer in series.layers:
        lmarkers = [(a.get("step", 0), a.get("severity", "warn"),
                     f'{a.get("kind", "alert")}: '
                     f'{a.get("message", "")}')
                    for a in series.alerts if a.get("layer") == layer]
        steps = series.routing_steps[layer]
        panels.append(_panel(
            f"layer {layer} · routing entropy (normalized)",
            _line_chart(steps, series.entropy[layer],
                        markers=lmarkers)))
        panels.append(_panel(
            f"layer {layer} · load Gini (0 = balanced)",
            _line_chart(steps, series.gini[layer],
                        markers=lmarkers)))
        panels.append(_panel(
            f"layer {layer} · per-expert utilization "
            f"(tokens routed, light = idle)",
            _heatmap(steps, series.expert_load[layer])))

    created = manifest.created_at
    doc = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        *([f'<meta http-equiv="refresh" content="{int(refresh)}">']
          if refresh is not None and refresh > 0 else []),
        f"<title>repro run {_esc(run_id)}</title>",
        f"<style>{_CSS}</style></head>",
        '<body class="viz-root">',
        f"<h1>run {_esc(run_id)}</h1>",
        f'<p class="sub">seed={_esc(manifest.seed)} · '
        f"substrate={_esc(manifest.substrate)} · "
        f"git={_esc(manifest.git)} · "
        f"fingerprint=<code>{_esc(manifest.fingerprint)}</code> · "
        f"created_at={_esc(_fmt(created))}</p>",
        f'<div class="tiles">{"".join(tiles)}</div>',
        "".join(panels),
        "<h2>fault / strategy timeline</h2>",
        _timeline_table(series.timeline),
        *(["<h2>scenario SLO report</h2>",
           _slo_table(series.slo_checks)]
          if series.slo_checks else []),
        "<h2>health alerts</h2>",
        _alerts_table(series.alerts),
        "<details><summary>step table (text view of the charts)"
        "</summary>",
        _step_table(series),
        "</details>",
        "<details><summary>manifest</summary><pre>",
        _esc(json.dumps(manifest.to_json_obj(), indent=1,
                        sort_keys=True)),
        "</pre></details>",
        "</body></html>",
    ]
    return "\n".join(doc)


def write_dashboard(store: RunStore, token: str,
                    out_path: str | Path,
                    refresh: int | None = None) -> Path:
    """Render and write the dashboard; returns the output path."""
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(store, token, refresh=refresh))
    return out
