"""Trace analysis: critical paths, attribution, and what-if bounds.

The paper's evaluation argues from *time breakdowns* (Figures 22-24:
where each step's time goes across All-to-All, expert GEMMs, and
encode/decode); this module gives the simulator half of the repo the
same explanatory power.  Given any :class:`~repro.cluster.simulator.
SimResult` it answers three questions a raw makespan cannot:

* **Why does the schedule take this long?** — :func:`critical_path`
  extracts the longest finish-time chain through the executed op DAG
  (dependency edges plus the realized same-stream FIFO edges), and
  :func:`critical_path_breakdown` splits the chain's time by op class.
* **Where does the time go?** — :func:`stream_attribution` /
  :func:`gpu_attribution` partition ``[0, makespan]`` into compute,
  (exposed) communication, other, and idle, per stream and per GPU;
  the buckets sum to the makespan exactly.  The per-GPU view also
  yields **overlap efficiency**: the fraction of communication-active
  time hidden under concurrent compute — the quantity adaptive
  pipelining exists to maximize.
* **What could optimization still buy?** — :func:`whatif_bounds`
  re-simulates counterfactual variants of the schedule: zero-cost
  communication (the floor for *any* comms optimization) and
  infinite-bandwidth links (comm ops collapse to their
  :attr:`~repro.cluster.simulator.Op.latency` floor — what a fabric
  upgrade alone could buy).

:func:`analyze` bundles all of it into an :class:`AnalysisReport` with
an aligned-table :meth:`~AnalysisReport.render`, which is what the
``repro analyze`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulator import (
    InterferenceModel,
    Op,
    Schedule,
    SimResult,
    simulate,
)

__all__ = [
    "COMM_KINDS",
    "classify_kind",
    "critical_path",
    "critical_path_breakdown",
    "StreamAttribution",
    "GpuAttribution",
    "stream_attribution",
    "gpu_attribution",
    "overlap_efficiency",
    "clone_schedule",
    "whatif_bounds",
    "AnalysisReport",
    "analyze",
]

#: Op kinds that count as communication for attribution purposes.
COMM_KINDS = frozenset({"comm", "comm_memcpy"})


def classify_kind(kind: str) -> str:
    """Collapse op kinds into the attribution classes."""
    if kind == "compute":
        return "compute"
    if kind in COMM_KINDS:
        return "comm"
    return "other"


def _eps(result: SimResult) -> float:
    """Comparison slack scaled to the result's time magnitude."""
    return max(1e-12, 1e-9 * max(result.makespan, 1.0))


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------

def critical_path(result: SimResult) -> list[Op]:
    """Longest finish-time chain through the executed DAG.

    Walks backward from the op that finishes last: each step moves to
    the predecessor whose completion released the current op — either
    a declared dependency or the op that held the same ``(gpu,
    stream)`` FIFO slot — choosing the latest-finishing candidate.  In
    a work-conserving schedule every op starts exactly when its last
    blocker ends, so the returned chain is contiguous in time and its
    total span equals the makespan.

    Returns ops in execution order (earliest first).  Empty schedules
    return an empty list.
    """
    spans = result.spans
    if not spans:
        return []
    eps = _eps(result)

    by_stream: dict[tuple[int, str], list[Op]] = {}
    for op in spans:
        by_stream.setdefault((op.gpu, op.stream), []).append(op)
    for ops in by_stream.values():
        ops.sort(key=lambda o: (spans[o][0], spans[o][1], o._uid))

    def terminal_key(op: Op) -> tuple[float, float, int]:
        return (spans[op][1], spans[op][0], op._uid)

    current = max(spans, key=terminal_key)
    path = [current]
    visited = {current}
    while True:
        start = spans[current][0]
        if start <= eps:
            break
        candidates = [d for d in current.deps
                      if d in spans and d not in visited]
        for other in by_stream[(current.gpu, current.stream)]:
            if (other not in visited
                    and spans[other][1] <= start + eps
                    and other is not current):
                candidates.append(other)
        if not candidates:
            break
        best = max(candidates, key=lambda o: (spans[o][1], o._uid))
        if spans[best][1] < start - eps:
            # An idle gap before `current`: nothing released it, so the
            # chain (and the explanation) ends here.
            break
        current = best
        path.append(current)
        visited.add(current)
    path.reverse()
    return path


def critical_path_breakdown(result: SimResult,
                            path: list[Op] | None = None
                            ) -> dict[str, float]:
    """Time on the critical path split by attribution class.

    The values sum to the span of the chain (== makespan when the
    chain reaches back to t=0).
    """
    if path is None:
        path = critical_path(result)
    breakdown = {"compute": 0.0, "comm": 0.0, "other": 0.0}
    for op in path:
        start, end = result.spans[op]
        breakdown[classify_kind(op.kind)] += end - start
    return breakdown


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StreamAttribution:
    """Makespan partition for one ``(gpu, stream)`` FIFO lane.

    Ops on a stream serialize, so the busy buckets are plain duration
    sums; ``idle`` is defined as the remainder against the global
    makespan, making ``compute + comm + other + idle == makespan``
    exact by construction.
    """

    gpu: int
    stream: str
    compute: float
    comm: float
    other: float
    idle: float

    @property
    def busy(self) -> float:
        return self.compute + self.comm + self.other


@dataclass(frozen=True)
class GpuAttribution:
    """Makespan partition for one GPU across all of its streams.

    Every instant of ``[0, makespan]`` is classified exactly once with
    priority compute > comm > other: ``comm`` here is therefore
    *exposed* communication — time the GPU spent communicating with no
    concurrent compute to hide behind.  ``comm_active`` /
    ``comm_overlapped`` additionally measure total communication-active
    time and the part of it hidden under compute; their ratio is the
    GPU's overlap efficiency.
    """

    gpu: int
    compute: float
    comm: float          # exposed (unhidden) communication
    other: float
    idle: float
    comm_active: float
    comm_overlapped: float

    @property
    def overlap_efficiency(self) -> float:
        if self.comm_active <= 0.0:
            return 0.0
        return self.comm_overlapped / self.comm_active


def stream_attribution(result: SimResult) -> list[StreamAttribution]:
    """Per-stream compute/comm/other/idle partition of the makespan."""
    buckets: dict[tuple[int, str], dict[str, float]] = {}
    for op, (start, end) in result.spans.items():
        lane = buckets.setdefault(
            (op.gpu, op.stream), {"compute": 0.0, "comm": 0.0, "other": 0.0})
        lane[classify_kind(op.kind)] += end - start
    return [
        StreamAttribution(
            gpu=gpu, stream=stream, compute=lane["compute"],
            comm=lane["comm"], other=lane["other"],
            idle=result.makespan - sum(lane.values()))
        for (gpu, stream), lane in sorted(buckets.items())
    ]


def gpu_attribution(result: SimResult) -> list[GpuAttribution]:
    """Per-GPU partition of ``[0, makespan]`` plus overlap accounting."""
    per_gpu: dict[int, list[tuple[float, float, str]]] = {}
    for op, (start, end) in result.spans.items():
        if end > start:
            per_gpu.setdefault(op.gpu, []).append(
                (start, end, classify_kind(op.kind)))
    out = []
    for gpu in sorted(per_gpu):
        intervals = per_gpu[gpu]
        points = sorted({t for s, e, _ in intervals for t in (s, e)})
        compute = comm_exposed = other = 0.0
        comm_active = comm_overlapped = 0.0
        for lo, hi in zip(points, points[1:]):
            if hi <= lo:
                continue
            width = hi - lo
            active = {cls for s, e, cls in intervals if s < hi and e > lo}
            if "comm" in active:
                comm_active += width
                if "compute" in active:
                    comm_overlapped += width
            if "compute" in active:
                compute += width
            elif "comm" in active:
                comm_exposed += width
            elif active:
                other += width
        idle = result.makespan - (compute + comm_exposed + other)
        out.append(GpuAttribution(
            gpu=gpu, compute=compute, comm=comm_exposed, other=other,
            idle=idle, comm_active=comm_active,
            comm_overlapped=comm_overlapped))
    return out


def overlap_efficiency(result: SimResult) -> float:
    """Cluster-wide fraction of communication time hidden by compute.

    0.0 when communication never overlaps compute (or there is none);
    1.0 when every communication-active instant had concurrent compute
    on the same GPU.  This is the scalar the adaptive pipeliner's
    degree > 1 schedules exist to raise (paper Figure 14 / 22).
    """
    total_active = total_overlapped = 0.0
    for gpu in gpu_attribution(result):
        total_active += gpu.comm_active
        total_overlapped += gpu.comm_overlapped
    if total_active <= 0.0:
        return 0.0
    return total_overlapped / total_active


# ----------------------------------------------------------------------
# What-if counterfactuals
# ----------------------------------------------------------------------

def clone_schedule(schedule: Schedule,
                   work_fn=None) -> Schedule:
    """Deep-copy a schedule, optionally rewriting each op's work.

    ``work_fn(op) -> float`` maps the original op to the clone's
    nominal work; dependencies are rewired onto the cloned ops.
    """
    mapping: dict[Op, Op] = {}

    def clone(op: Op) -> Op:
        if op in mapping:
            return mapping[op]
        deps = tuple(clone(d) for d in op.deps)
        work = op.work if work_fn is None else float(work_fn(op))
        mapping[op] = Op(work=work, gpu=op.gpu, stream=op.stream,
                         kind=op.kind, deps=deps, label=op.label,
                         latency=min(op.latency, work))
        return mapping[op]

    out = Schedule()
    for op in schedule.ops:
        out.add(clone(op))
    return out


def whatif_bounds(schedule: Schedule,
                  interference: InterferenceModel | None = None
                  ) -> dict[str, float]:
    """Counterfactual makespans bounding further comms optimisation.

    * ``actual`` — the schedule as given.
    * ``infinite_bandwidth`` — every communication op collapsed to its
      bandwidth-independent :attr:`~repro.cluster.simulator.Op.latency`
      floor: the best any fabric upgrade alone could do.
    * ``zero_comm`` — communication free: the floor for *any*
      communication optimisation (what remains is compute and
      dependency structure).

    Invariant: ``zero_comm <= infinite_bandwidth <= actual``.

    Counterfactual runs are hidden from the process-wide observer so an
    enabled trace only carries the real execution.
    """
    from repro import obs

    def run(work_fn=None) -> float:
        return simulate(clone_schedule(schedule, work_fn),
                        interference).makespan

    previous = obs.set_observer(None)
    try:
        actual = run()
        inf_bw = run(lambda op: (min(op.work, op.latency)
                                 if op.kind in COMM_KINDS else op.work))
        zero = run(lambda op: (0.0 if op.kind in COMM_KINDS
                               else op.work))
    finally:
        obs.set_observer(previous)
    return {"actual": actual, "infinite_bandwidth": inf_bw,
            "zero_comm": zero}


# ----------------------------------------------------------------------
# The bundled report
# ----------------------------------------------------------------------

@dataclass
class AnalysisReport:
    """Everything ``repro analyze`` prints, as data."""

    makespan: float
    streams: list[StreamAttribution]
    gpus: list[GpuAttribution]
    critical: list[Op]
    critical_times: list[tuple[float, float]]
    critical_breakdown: dict[str, float]
    overlap_efficiency: float
    bounds: dict[str, float] = field(default_factory=dict)

    def render(self, max_critical_ops: int = 20) -> str:
        from repro.bench.harness import Table

        def pct(x: float) -> str:
            return f"{x / self.makespan:.1%}" if self.makespan > 0 else "-"

        def sec(x: float) -> str:
            return f"{x * 1e3:.3f} ms"

        lines = [f"makespan: {sec(self.makespan)}"]

        streams = Table("Per-stream attribution "
                        "(compute + comm + other + idle == makespan)",
                        ["gpu/stream", "compute", "comm", "other",
                         "idle", "busy"])
        for s in self.streams:
            streams.add_row(f"gpu{s.gpu}/{s.stream}", sec(s.compute),
                            sec(s.comm), sec(s.other), sec(s.idle),
                            pct(s.busy))
        lines += ["", streams.render()]

        gpus = Table("Per-GPU attribution (comm column = exposed, "
                     "i.e. not hidden by compute)",
                     ["gpu", "compute", "exposed comm", "other", "idle",
                      "comm hidden", "overlap eff"])
        for g in self.gpus:
            gpus.add_row(f"gpu{g.gpu}", sec(g.compute), sec(g.comm),
                         sec(g.other), sec(g.idle),
                         sec(g.comm_overlapped),
                         f"{g.overlap_efficiency:.1%}")
        lines += ["", gpus.render()]

        crit = Table("Critical path (longest finish-time chain)",
                     ["#", "op", "kind", "gpu/stream", "start", "dur"])
        shown = list(zip(self.critical, self.critical_times))
        hidden = max(0, len(shown) - max_critical_ops)
        shown = shown[hidden:]
        for i, (op, (start, end)) in enumerate(shown):
            crit.add_row(hidden + i, op.label or op.kind, op.kind,
                         f"gpu{op.gpu}/{op.stream}", sec(start),
                         sec(end - start))
        lines += ["", crit.render()]
        if hidden > 0:
            lines.append(f"  ({hidden} earlier critical op(s) omitted)")
        bd = self.critical_breakdown
        total = sum(bd.values())
        if total > 0:
            lines.append(
                "critical-path composition: "
                + ", ".join(f"{k} {v * 1e3:.3f} ms ({v / total:.0%})"
                            for k, v in bd.items() if v > 0))
        lines.append(f"overlap efficiency: {self.overlap_efficiency:.1%} "
                     "of communication time hidden under compute")
        if self.bounds:
            b = self.bounds
            lines.append(
                f"what-if bounds: actual {sec(b['actual'])} | "
                f"infinite bandwidth {sec(b['infinite_bandwidth'])} "
                f"(-{1 - b['infinite_bandwidth'] / b['actual']:.1%}) | "
                f"zero-cost comm {sec(b['zero_comm'])} "
                f"(-{1 - b['zero_comm'] / b['actual']:.1%})")
        return "\n".join(lines)


def analyze(result: SimResult,
            schedule: Schedule | None = None,
            interference: InterferenceModel | None = None
            ) -> AnalysisReport:
    """Full analysis of one simulation outcome.

    With ``schedule`` provided (or recoverable from the result's own
    ops), the what-if counterfactuals are re-simulated as well.
    """
    if schedule is None and result.spans:
        schedule = Schedule(ops=list(result.spans))
    path = critical_path(result)
    report = AnalysisReport(
        makespan=result.makespan,
        streams=stream_attribution(result),
        gpus=gpu_attribution(result),
        critical=path,
        critical_times=[result.spans[op] for op in path],
        critical_breakdown=critical_path_breakdown(result, path),
        overlap_efficiency=overlap_efficiency(result),
    )
    if schedule is not None:
        report.bounds = whatif_bounds(schedule, interference)
    return report
