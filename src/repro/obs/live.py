"""Live telemetry plane over a run directory (``repro.obs.live``).

Everything PRs 1–9 built is post-hoc: the dashboard renders a finished
run, ``--prometheus`` is a one-shot snapshot, SLO verdicts appear at
exit.  This module attaches to an **in-progress** (or finished) run
directory and serves it over HTTP with nothing but the stdlib:

``/metrics``
    Prometheus text exposition, re-rendered per scrape from the
    tailer's registry — repeated scrapes of a live run show advancing
    values, including the ``ALERTS{alertname=...}`` family.
``/events``
    Server-sent-events tail of ``events.jsonl``.  Every event line is
    one SSE message whose ``id:`` is the run's ``seq`` number, so a
    dropped client resumes exactly where it left off via the standard
    ``Last-Event-ID`` header (or ``?from=SEQ``).  ``?max=N`` closes
    the stream after N events (curl-friendly smoke tests); otherwise
    the stream follows the file until the manifest reports the run
    complete.
``/healthz``
    JSON liveness summary: run id, status, last seq, firing alerts.
``/``
    The PR 4 dashboard re-rendered on demand; ``?refresh=N`` (or the
    server-wide default) adds a meta-refresh for auto-reloading
    monitors.

The :class:`RunTailer` is the read side of the per-line append+flush
contract of :class:`repro.obs.runs.RunWriter`: it incrementally reads
complete lines (a trailing partial line stays buffered until the
writer finishes it), folds events into its own
:class:`~repro.obs.registry.MetricsRegistry`, and ticks its own
:class:`~repro.obs.alerts.AlertEngine` on the deterministic step /
batch ticks found in the stream.  The tailer never writes to the run
directory — out-of-process observers must not rewrite caller-owned
streams — so its alert state lives only in the scrape registry, while
in-process engines (trainer, serving engine) own the alert *events*.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Sequence
from urllib.parse import parse_qs, urlsplit

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
    merge_worst,
    routing_samples,
)
from repro.obs.prometheus import labeled_name, render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.runs import RunStore

__all__ = ["RunTailer", "LiveServer"]

ALERTS_FAMILY = "ALERTS"


class RunTailer:
    """Incremental, torn-line-safe reader of one run directory.

    ``poll()`` reads whatever complete lines the writer has flushed
    since the last poll, parses them, folds them into the metrics
    registry, and evaluates the alert rules on every step / batch
    tick.  All state is guarded by ``lock`` so HTTP handler threads
    can share one tailer.
    """

    def __init__(self, directory: str | Path,
                 rules: Sequence[AlertRule] | None = None) -> None:
        self.directory = Path(directory)
        self.lock = threading.Lock()
        self.registry = MetricsRegistry()
        self.engine = AlertEngine(
            list(rules) if rules is not None else default_rules())
        self.events: list[dict] = []
        self.status = "unknown"
        self.run_id = self.directory.name
        self.last_seq = -1
        self.skipped_lines = 0
        self._offset = 0
        self._buffer = ""
        self._pending: dict[str, float] = {}

    # -- file tailing --------------------------------------------------

    def poll(self) -> int:
        """Fold newly flushed events; returns how many were added."""
        with self.lock:
            return self._poll_locked()

    def _poll_locked(self) -> int:
        path = self.directory / "events.jsonl"
        chunk = ""
        if path.is_file():
            with open(path, "r") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        self._read_manifest()
        if not chunk:
            return 0
        text = self._buffer + chunk
        lines = text.split("\n")
        # The final fragment has no newline yet: either a torn line a
        # live writer will finish, or empty.  Keep it buffered.
        self._buffer = lines.pop()
        added = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                self.skipped_lines += 1
                continue
            self._fold(event)
            added += 1
        return added

    def _read_manifest(self) -> None:
        path = self.directory / "manifest.json"
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        self.status = manifest.get("status", "unknown")
        self.run_id = manifest.get("run_id", self.run_id)

    def complete(self) -> bool:
        with self.lock:
            return self.status == "complete"

    def snapshot_events(self) -> list[dict]:
        with self.lock:
            return list(self.events)

    def render_metrics(self) -> str:
        with self.lock:
            return render_prometheus(self.registry)

    def alerts_firing(self) -> list[str]:
        with self.lock:
            return self.engine.firing()

    # -- folding -------------------------------------------------------

    def _fold(self, event: dict) -> None:
        self.events.append(event)
        seq = event.get("seq")
        if isinstance(seq, int):
            self.last_seq = max(self.last_seq, seq)
        kind = event.get("kind", "?")
        data = event.get("data") or {}
        reg = self.registry
        reg.counter("run.events_total").inc()
        reg.counter(f"run.events.{kind}").inc()
        self.engine.stream_hook(event)
        reg.gauge("faults.outstanding").set(
            self.engine.outstanding_faults)

        if kind == "step":
            if "loss" in data:
                reg.gauge("train.loss").set(float(data["loss"]))
            if "grad_norm" in data:
                reg.gauge("train.grad_norm").set(
                    float(data["grad_norm"]))
            if "loss" in data:
                self._pending["train.loss"] = float(data["loss"])
            self._tick(int(event.get("step") or 0))
        elif kind == "routing":
            merge_worst(self._pending, routing_samples(
                data.get("entropy"), data.get("dropped_fraction"),
                data.get("expert_load")))
            for key in ("routing.entropy", "routing.dropped_fraction",
                        "routing.min_expert_share"):
                if key in self._pending:
                    reg.gauge(key).set(self._pending[key])
        elif kind == "routing_load":
            merge_worst(self._pending, _routing_load_samples(data))
        elif kind == "serve_batch":
            for key, name in (("p99_ms", "serve.model_p99_ms"),
                              ("p50_ms", "serve.model_p50_ms"),
                              ("queue_depth", "serve.queue_depth"),
                              ("goodput_rps", "serve.goodput_rps")):
                if key in data:
                    value = float(data[key])
                    reg.gauge(name).set(value)
                    self._pending[name] = value
            self._tick(int(event.get("step") or 0))
        elif kind == "alert":
            # Mirror in-process alert engines (trainer / serving) into
            # the scrape registry's ALERTS family.
            name = data.get("alertname") or data.get("kind")
            if name:
                gname = labeled_name(ALERTS_FAMILY, {
                    "alertname": str(name),
                    "severity": str(data.get("severity", "warn"))})
                firing = data.get("state", "firing") != "resolved"
                reg.gauge(gname).set(1.0 if firing else 0.0)

    def _tick(self, tick: int) -> None:
        self._pending.setdefault(
            "faults.outstanding", float(self.engine.outstanding_faults))
        self.engine.evaluate(tick, self._pending,
                             registry=self.registry)
        self._pending = {}


def _routing_load_samples(data: dict) -> dict[str, float]:
    """Routing-health samples from a cumulative ``routing_load``
    payload (the serving engine's per-batch running totals)."""
    loads = data.get("loads") or []
    samples: dict[str, float] = {}
    min_share = None
    routed = 0.0
    for row in loads:
        total = float(sum(row))
        routed += total
        if total > 0 and row:
            share = min(float(v) for v in row) * len(row) / total
            min_share = (share if min_share is None
                         else min(min_share, share))
    if min_share is not None:
        samples["routing.min_expert_share"] = min_share
    dispatched = data.get("dispatched") or []
    sent = float(sum(sum(sum(b) for b in layer)
                     for layer in dispatched))
    if routed > 0:
        samples["routing.dropped_fraction"] = max(
            0.0, (routed - sent) / routed)
    return samples


# ----------------------------------------------------------------------
# The HTTP plane
# ----------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a scraped
    # server would drown the CLI output.
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        pass

    @property
    def live(self) -> "LiveServer":
        return self.server.live  # type: ignore[attr-defined]

    def _send(self, code: int, content_type: str,
              body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        try:
            if parts.path == "/metrics":
                self._get_metrics()
            elif parts.path == "/events":
                self._get_events(query)
            elif parts.path == "/healthz":
                self._get_healthz()
            elif parts.path == "/":
                self._get_dashboard(query)
            else:
                self._send(404, "text/plain; charset=utf-8",
                           b"not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _get_metrics(self) -> None:
        tailer = self.live.tailer
        tailer.poll()
        body = tailer.render_metrics().encode("utf-8")
        self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                   body)

    def _get_healthz(self) -> None:
        tailer = self.live.tailer
        tailer.poll()
        with tailer.lock:
            payload = {
                "status": "ok",
                "run_id": tailer.run_id,
                "run_status": tailer.status,
                "events": len(tailer.events),
                "last_seq": tailer.last_seq,
                "alerts_firing": tailer.engine.firing(),
                "outstanding_faults": tailer.engine.outstanding_faults,
            }
        self._send(200, "application/json",
                   (json.dumps(payload) + "\n").encode("utf-8"))

    def _get_dashboard(self, query: dict) -> None:
        from repro.obs.dashboard import render_dashboard

        refresh = self.live.refresh
        if "refresh" in query:
            try:
                refresh = int(query["refresh"][0])
            except ValueError:
                refresh = self.live.refresh
        run_dir = self.live.tailer.directory
        store = RunStore(run_dir.parent)
        html = render_dashboard(store, run_dir.name, refresh=refresh)
        self._send(200, "text/html; charset=utf-8",
                   html.encode("utf-8"))

    def _get_events(self, query: dict) -> None:
        tailer = self.live.tailer
        after = -1
        last_id = self.headers.get("Last-Event-ID")
        if last_id is not None:
            try:
                after = int(last_id)
            except ValueError:
                after = -1
        elif "from" in query:
            try:
                after = int(query["from"][0]) - 1
            except ValueError:
                after = -1
        max_events = None
        if "max" in query:
            try:
                max_events = max(1, int(query["max"][0]))
            except ValueError:
                max_events = None

        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream: no Content-Length, close when
        # done rather than keep-alive.
        self.send_header("Connection", "close")
        self.end_headers()

        sent = 0
        index = 0
        while not self.live.stopping.is_set():
            tailer.poll()
            events = tailer.snapshot_events()
            while index < len(events):
                event = events[index]
                index += 1
                seq = event.get("seq", -1)
                if isinstance(seq, int) and seq <= after:
                    continue
                message = (f"id: {seq}\n"
                           f"data: {json.dumps(event)}\n\n")
                self.wfile.write(message.encode("utf-8"))
                self.wfile.flush()
                sent += 1
                if max_events is not None and sent >= max_events:
                    return
            if tailer.complete():
                self.wfile.write(b"event: end\ndata: {}\n\n")
                self.wfile.flush()
                return
            time.sleep(self.live.poll_interval)


class LiveServer:
    """``ThreadingHTTPServer`` bound to one run directory.

    ``port=0`` binds an ephemeral port (tests); the bound port is in
    ``.port`` after construction.  ``start()`` serves on a daemon
    thread; ``stop()`` shuts the listener down and unblocks any open
    SSE streams via the ``stopping`` flag.
    """

    def __init__(self, run_dir: str | Path, host: str = "127.0.0.1",
                 port: int = 0, poll_interval: float = 0.2,
                 refresh: int | None = None,
                 rules: Sequence[AlertRule] | None = None) -> None:
        self.tailer = RunTailer(run_dir, rules=rules)
        self.poll_interval = poll_interval
        self.refresh = refresh
        self.stopping = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.live = self  # type: ignore[attr-defined]
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LiveServer":
        self.tailer.poll()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1}, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "LiveServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
