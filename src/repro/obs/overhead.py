"""Observability self-overhead ledger (``repro.obs.overhead``).

The paper's pitch for always-on adaptation only holds if the telemetry
driving it is close to free, so the observability stack accounts for
itself: a process-global :class:`OverheadLedger` accumulates the
nanoseconds spent *inside* instrumentation — trace recording, metrics
updates, run-event emit/flush, routing-recorder folds, and alert-rule
evaluation — attributed per subsystem, next to the wall time of the
steps/batches it rode on.  ``repro overhead`` runs a fully
instrumented training loop under the ledger and emits the
schema-versioned ``BENCH_obs_overhead.json`` whose headline
``overhead_fraction`` is gated by ``repro regress`` (committed
baseline pinned at the 5% acceptance bound), so instrumentation cost
can never silently regress.

Like the observer and the active run, the ledger is **off by default
and zero-cost when off**: instrumented sites do one module-global
``is None`` check before touching the clock.  The measurement itself
is honest about its own cost: every ``perf_counter_ns`` pair an
instrumented site adds is *part of* the instrumentation time it
reports.
"""

from __future__ import annotations

import time
from typing import Mapping

__all__ = [
    "SUBSYSTEMS",
    "OVERHEAD_ARTIFACT",
    "OVERHEAD_FRACTION_BOUND",
    "OverheadLedger",
    "get_ledger",
    "set_ledger",
    "measuring_overhead",
    "overhead_metrics",
]

#: Instrumentation subsystems the ledger attributes time to.
SUBSYSTEMS = ("trace", "metrics", "events", "routing", "alerts")

#: Artifact id of the gated bench record.
OVERHEAD_ARTIFACT = "obs_overhead"

#: Acceptance bound on the overhead fraction of step time.  The
#: committed baseline pins ``overhead_fraction`` at exactly this value
#: (tolerance 0, lower is better), mirroring the calibration gate's
#: pin-at-bound convention, so the regress gate fails iff a run
#: measures instrumentation above 5% of step wall time.
OVERHEAD_FRACTION_BOUND = 0.05


class OverheadLedger:
    """Per-subsystem nanosecond totals of instrumentation work.

    ``add(subsystem, ns)`` is the hot path (one dict update); call
    sites surround the instrumented work with ``perf_counter_ns``
    pairs only after a ``get_ledger() is not None`` check.
    ``observe_step(wall_ns)`` accumulates the denominator: the wall
    time of each training step or serving batch the overhead rode on.
    """

    __slots__ = ("totals", "counts", "step_ns", "steps")

    def __init__(self) -> None:
        self.totals: dict[str, int] = {s: 0 for s in SUBSYSTEMS}
        self.counts: dict[str, int] = {s: 0 for s in SUBSYSTEMS}
        self.step_ns = 0
        self.steps = 0

    def add(self, subsystem: str, ns: int) -> None:
        self.totals[subsystem] += ns
        self.counts[subsystem] += 1

    def observe_step(self, wall_ns: int) -> None:
        self.step_ns += int(wall_ns)
        self.steps += 1

    @property
    def overhead_ns(self) -> int:
        return sum(self.totals.values())

    def fraction(self) -> float:
        """Instrumentation share of accumulated step wall time."""
        if self.step_ns <= 0:
            return 0.0
        return self.overhead_ns / self.step_ns

    def summary(self) -> dict:
        return {
            "steps": self.steps,
            "step_ns": self.step_ns,
            "overhead_ns": self.overhead_ns,
            "fraction": self.fraction(),
            "totals_ns": dict(self.totals),
            "counts": dict(self.counts),
        }

    def publish(self, ob) -> None:
        """Expose the ledger as ``obs.overhead.*`` gauges on an
        observer (scrapeable through :mod:`repro.obs.prometheus`)."""
        ob.gauge("obs.overhead.fraction", self.fraction())
        ob.gauge("obs.overhead.total_ms", self.overhead_ns / 1e6)
        ob.gauge("obs.overhead.step_ms", self.step_ns / 1e6)
        for sub in SUBSYSTEMS:
            ob.gauge(f"obs.overhead.{sub}_ms", self.totals[sub] / 1e6)

    def render(self) -> str:
        lines = ["== obs self-overhead =="]
        lines.append(
            f"  {self.steps} step(s), "
            f"{self.step_ns / 1e6:.3f} ms step wall, "
            f"{self.overhead_ns / 1e6:.3f} ms instrumentation "
            f"({self.fraction():.2%})")
        for sub in SUBSYSTEMS:
            lines.append(
                f"  {sub:10s} {self.totals[sub] / 1e6:10.3f} ms "
                f"in {self.counts[sub]} call(s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-wide ledger (None = not measuring, the default)
# ----------------------------------------------------------------------

_ledger: OverheadLedger | None = None

#: Re-exported for instrumented call sites that time themselves.
perf_ns = time.perf_counter_ns


def get_ledger() -> OverheadLedger | None:
    return _ledger


def set_ledger(ledger: OverheadLedger | None) -> OverheadLedger | None:
    """Install (or clear, with None) the process-wide ledger."""
    global _ledger
    previous = _ledger
    _ledger = ledger
    return previous


class measuring_overhead:
    """Context manager: install a fresh ledger, restore on exit.

    ::

        with measuring_overhead() as led:
            ...instrumented run...
        print(led.render())
    """

    def __init__(self) -> None:
        self.ledger = OverheadLedger()
        self._previous: OverheadLedger | None = None

    def __enter__(self) -> OverheadLedger:
        self._previous = set_ledger(self.ledger)
        return self.ledger

    def __exit__(self, *exc: object) -> None:
        set_ledger(self._previous)


# ----------------------------------------------------------------------
# BENCH_obs_overhead.json
# ----------------------------------------------------------------------

def overhead_metrics(ledger: OverheadLedger,
                     event_counts: Mapping[str, int] | None = None
                     ) -> list:
    """The ledger as bench metrics for ``BENCH_obs_overhead.json``.

    ``overhead_fraction`` is the gated headline (lower is better,
    tolerance 0 against the pinned 5% baseline).  Deterministic event
    counts gate exactly; the per-subsystem millisecond splits are
    wall-clock and ride along ungated (``kind="measured"``).
    """
    from repro.bench.report import Metric

    metrics = [
        Metric("overhead_fraction", ledger.fraction(), "fraction",
               kind="model", higher_is_better=False, tolerance=0.0),
        Metric("steps", float(ledger.steps), "count", kind="model",
               tolerance=0.0),
    ]
    for name, count in sorted((event_counts or {}).items()):
        metrics.append(Metric(f"events_{name}", float(count), "count",
                              kind="model", tolerance=0.0))
    metrics.append(Metric("overhead_ms", ledger.overhead_ns / 1e6,
                          "ms", kind="measured",
                          higher_is_better=False, tolerance=10.0))
    for sub in SUBSYSTEMS:
        metrics.append(Metric(f"{sub}_ms", ledger.totals[sub] / 1e6,
                              "ms", kind="measured",
                              higher_is_better=False, tolerance=10.0))
    return metrics
