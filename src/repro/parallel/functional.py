"""Functional (data-moving) implementations of P1 and P2.

The cost side of the switchable strategies lives in
:mod:`repro.parallel.strategy`; this module executes them *for real*
over simulated ranks, which nails down the paper's central switching
claim: P1 and P2 "have the same preference in token feeding, gradient
updating, and parameter placement", so an iteration may use either and
produce **identical numbers** — the tests assert
``p1 == p2 == single-process`` elementwise.

Setting: ``E`` global experts served by ``W = E * r`` GPUs.

* **P1 — expert + data parallelism, ZeRO-sliced** (Figure 11): rank
  ``e*r + j`` stores slice ``j`` of expert ``e``'s parameters; before
  computing it all-gathers the full expert within its replica group,
  then serves ``1/r`` of the expert's token load (each source GPU
  splits its per-expert capacity slice evenly across the ``r``
  servers via the fused global All-to-All).
* **P2 — expert + model parallelism, n-sharded** (Figure 12): rank
  ``e*r + j`` permanently holds the ``j``-th column shard of expert
  ``e``'s fflayer; the local *repeat* operation copies every token to
  all ``r`` shards, each shard computes a partial output against its
  ``V/r`` hidden columns, and MoE combine adds a local sum-reduction
  over shards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MoEConfig
from repro.moe.encode import fast_decode, fast_encode
from repro.moe.gating import RoutingCriteria, softmax, top_k_routing
from repro.moe.layer import (
    ExpertParams,
    MoELayerParams,
    _gate_logits,
    expert_ffn,
)

__all__ = [
    "ShardedExpert",
    "shard_expert_columns",
    "slice_expert_zero",
    "gather_zero_slices",
    "p1_forward",
    "p2_forward",
]


# ----------------------------------------------------------------------
# Parameter placement
# ----------------------------------------------------------------------

@dataclass
class ShardedExpert:
    """One column shard of an expert fflayer (P2 placement).

    ``w1`` keeps all input rows but ``V/r`` hidden columns; ``w2``
    keeps the matching ``V/r`` hidden rows.  ``b2`` is pre-divided by
    the shard count so summing partials reconstructs the full bias.
    """

    w1: np.ndarray          # (M, V/r)
    w2: np.ndarray          # (V/r, M)
    b1: np.ndarray | None   # (V/r,)
    b2_share: np.ndarray | None  # (M,), already divided by r

    def forward(self, x: np.ndarray, activation) -> np.ndarray:
        hidden = x @ self.w1
        if self.b1 is not None:
            hidden = hidden + self.b1
        hidden = activation(hidden)
        out = hidden @ self.w2
        if self.b2_share is not None:
            out = out + self.b2_share
        return out


def shard_expert_columns(experts: ExpertParams, expert: int,
                         shards: int) -> list[ShardedExpert]:
    """Split one expert's fflayer into ``shards`` column shards."""
    v = experts.hidden_dim
    if v % shards != 0:
        raise ValueError(
            f"hidden dim {v} not divisible into {shards} shards")
    width = v // shards
    out = []
    for j in range(shards):
        sl = slice(j * width, (j + 1) * width)
        out.append(ShardedExpert(
            w1=experts.w1[expert][:, sl],
            w2=experts.w2[expert][sl, :],
            b1=None if experts.b1 is None else experts.b1[expert][sl],
            b2_share=(None if experts.b2 is None
                      else experts.b2[expert] / shards)))
    return out


def slice_expert_zero(experts: ExpertParams, expert: int,
                      shards: int) -> list[dict[str, np.ndarray]]:
    """ZeRO-style flat parameter slices of one expert (P1 placement)."""
    flat = np.concatenate([
        experts.w1[expert].ravel(), experts.w2[expert].ravel(),
        np.array([]) if experts.b1 is None else experts.b1[expert],
        np.array([]) if experts.b2 is None else experts.b2[expert]])
    pieces = np.array_split(flat, shards)
    return [{"slice": p} for p in pieces]


def gather_zero_slices(slices: list[dict[str, np.ndarray]],
                       experts: ExpertParams,
                       expert: int) -> ExpertParams:
    """All-gather: reconstruct the full expert from its ZeRO slices."""
    flat = np.concatenate([s["slice"] for s in slices])
    m, v = experts.model_dim, experts.hidden_dim
    w1 = flat[:m * v].reshape(m, v)
    offset = m * v
    w2 = flat[offset:offset + v * m].reshape(v, m)
    offset += v * m
    b1 = b2 = None
    if experts.b1 is not None:
        b1 = flat[offset:offset + v]
        offset += v
    if experts.b2 is not None:
        b2 = flat[offset:offset + m]
    return ExpertParams(w1=w1[None], w2=w2[None],
                        b1=None if b1 is None else b1[None],
                        b2=None if b2 is None else b2[None])


# ----------------------------------------------------------------------
# Shared routing front-end
# ----------------------------------------------------------------------

def _route_and_encode(rank_inputs: list[np.ndarray],
                      params: MoELayerParams, cfg: MoEConfig
                      ) -> tuple[list[RoutingCriteria], list[np.ndarray]]:
    crits, buffers = [], []
    for x in rank_inputs:
        probs = softmax(_gate_logits(x, params))
        crit = top_k_routing(probs, cfg.top_k, cfg.capacity_per_gpu,
                             normalize_gate=params.normalize_gate,
                             batch_prioritized=params.batch_prioritized)
        crits.append(crit)
        buffers.append(fast_encode(x, crit))       # (E, dC, M)
    return crits, buffers


def _check_p_config(params: MoELayerParams, cfg: MoEConfig) -> int:
    w = cfg.world_size
    e = params.experts.num_experts
    if e != cfg.num_global_experts:
        raise ValueError(
            f"params have {e} experts, cfg implies "
            f"{cfg.num_global_experts}")
    if w % e != 0 or w < e:
        raise ValueError(
            f"P1/P2 need W a multiple of E with W >= E, got W={w}, "
            f"E={e}")
    return w // e


# ----------------------------------------------------------------------
# P2: expert + model parallelism (Figure 12)
# ----------------------------------------------------------------------

def p2_forward(rank_inputs: list[np.ndarray], params: MoELayerParams,
               cfg: MoEConfig) -> list[np.ndarray]:
    """Execute one MoE layer under P2 with real data movement."""
    r = _check_p_config(params, cfg)
    w = cfg.world_size
    e = params.experts.num_experts
    if len(rank_inputs) != w:
        raise ValueError(f"expected {w} rank inputs, got "
                         f"{len(rank_inputs)}")
    crits, buffers = _route_and_encode(rank_inputs, params, cfg)
    act = {"relu": lambda h: np.maximum(h, 0.0)}.get(params.activation)
    if act is None:
        from repro.moe.layer import _gelu
        act = _gelu

    # Local repeat + dispatch All-to-All: server rank (e0, j) receives
    # the same expert-e0 capacity slice from every source.
    partials: dict[int, np.ndarray] = {}
    for e0 in range(e):
        tokens = np.concatenate([buf[e0] for buf in buffers])  # (C, M)
        for j, shard in enumerate(
                shard_expert_columns(params.experts, e0, r)):
            partials[e0 * r + j] = shard.forward(tokens, act)

    # Combine All-to-All + local sum reduction over the r shards.
    dc = cfg.capacity_per_gpu
    outputs = []
    for src in range(w):
        combined = np.zeros_like(buffers[src])
        for e0 in range(e):
            rows = slice(src * dc, (src + 1) * dc)
            total = sum(partials[e0 * r + j][rows] for j in range(r))
            combined[e0] = total
        outputs.append(fast_decode(combined, crits[src]))
    return outputs


# ----------------------------------------------------------------------
# P1: expert + data parallelism, ZeRO-sliced (Figure 11)
# ----------------------------------------------------------------------

def p1_forward(rank_inputs: list[np.ndarray], params: MoELayerParams,
               cfg: MoEConfig) -> list[np.ndarray]:
    """Execute one MoE layer under P1 with real data movement.

    Each server rank temporarily materializes its expert from the
    replica group's ZeRO slices (the all-gather), then serves the
    ``1/r`` share of the expert's tokens routed to it by the fused
    global All-to-All.
    """
    r = _check_p_config(params, cfg)
    w = cfg.world_size
    e = params.experts.num_experts
    dc = cfg.capacity_per_gpu
    if dc % r != 0:
        raise ValueError(
            f"P1 requires the per-GPU capacity dC={dc} divisible by "
            f"the replica count r={r}")
    sub = dc // r
    crits, buffers = _route_and_encode(rank_inputs, params, cfg)

    outputs_parts: dict[tuple[int, int], np.ndarray] = {}
    for e0 in range(e):
        slices = slice_expert_zero(params.experts, e0, r)
        full = gather_zero_slices(slices, params.experts, e0)
        for j in range(r):
            # Server j of expert e0 receives sub-slice j of every
            # source's capacity slice for e0 (fused global A2A).
            rows = np.concatenate(
                [buffers[src][e0][j * sub:(j + 1) * sub]
                 for src in range(w)])                # (W*sub, M)
            out = expert_ffn(rows[None], full,
                             params.activation)[0]
            outputs_parts[(e0, j)] = out

    outputs = []
    for src in range(w):
        combined = np.zeros_like(buffers[src])
        for e0 in range(e):
            for j in range(r):
                part = outputs_parts[(e0, j)]
                combined[e0][j * sub:(j + 1) * sub] = \
                    part[src * sub:(src + 1) * sub]
        outputs.append(fast_decode(combined, crits[src]))
    return outputs
