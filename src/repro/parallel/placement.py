"""Expert placement control via ``count_per_node`` (paper Figure 17).

A single integer argument describes how global experts map onto GPUs:

* ``count_per_node = x > 0`` — every GPU hosts ``x`` whole local
  experts (Figure 17a: 2 GPUs, 2 experts each);
* ``count_per_node = x < 0`` — every expert is split across ``-x``
  GPUs, each holding ``1/(-x)`` of the expert (Figure 17b: 8 GPUs,
  4 experts, 2 shards each).

``count_per_node`` only changes throughput characteristics, never the
training algorithm: the same global experts exist either way.

Beyond the ``count_per_node`` family, :func:`round_robin_placement`
builds the strided layout (expert ``e`` on GPU ``e % n``) the routing
what-if scorer (:mod:`repro.obs.routing`) compares placements against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ExpertPlacement",
    "build_placement",
    "round_robin_placement",
]


@dataclass(frozen=True)
class ExpertPlacement:
    """Resolved expert-to-GPU mapping.

    Attributes
    ----------
    num_gpus / num_global_experts:
        World and expert counts.
    experts_per_gpu:
        ``dE`` (fractional when experts are sharded).
    shards_per_expert:
        How many GPUs each expert is split over (1 = whole experts).
    gpu_to_experts:
        For each GPU, the list of ``(expert, shard)`` pairs it hosts.
    expert_to_gpus:
        Inverse index, derived in ``__post_init__``: for each expert,
        the GPUs hosting one of its shards, in rank order.  Makes
        :meth:`gpus_of_expert` O(shards) instead of a linear scan over
        the world — the hop ledger calls it per (layer, expert).
    """

    num_gpus: int
    num_global_experts: int
    experts_per_gpu: float
    shards_per_expert: int
    gpu_to_experts: tuple[tuple[tuple[int, int], ...], ...]
    expert_to_gpus: tuple[tuple[int, ...], ...] = field(default=())

    def __post_init__(self) -> None:
        hosts: list[list[int]] = [[] for _ in range(self.num_global_experts)]
        for g, hosted in enumerate(self.gpu_to_experts):
            for e, _shard in hosted:
                if not 0 <= e < self.num_global_experts:
                    raise ValueError(
                        f"gpu {g} hosts expert {e}, outside "
                        f"[0, {self.num_global_experts})")
                if g not in hosts[e]:
                    hosts[e].append(g)
        index = tuple(tuple(sorted(gpus)) for gpus in hosts)
        if self.expert_to_gpus and self.expert_to_gpus != index:
            raise ValueError(
                "expert_to_gpus disagrees with gpu_to_experts; leave it "
                "unset to have it derived")
        object.__setattr__(self, "expert_to_gpus", index)

    def gpus_of_expert(self, expert: int) -> list[int]:
        """All GPUs hosting (a shard of) ``expert``."""
        if not 0 <= expert < self.num_global_experts:
            raise ValueError(
                f"expert {expert} out of range "
                f"[0, {self.num_global_experts})")
        return list(self.expert_to_gpus[expert])


def build_placement(num_gpus: int, count_per_node: int) -> ExpertPlacement:
    """Resolve a ``count_per_node`` argument into an explicit placement.

    Raises for ``count_per_node == 0`` and for shard counts that do not
    divide the world size.
    """
    if num_gpus < 1:
        raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
    if count_per_node == 0:
        raise ValueError("count_per_node must be a non-zero integer")

    if count_per_node > 0:
        x = count_per_node
        num_experts = num_gpus * x
        gpu_to_experts = tuple(
            tuple((g * x + j, 0) for j in range(x))
            for g in range(num_gpus))
        return ExpertPlacement(
            num_gpus=num_gpus, num_global_experts=num_experts,
            experts_per_gpu=float(x), shards_per_expert=1,
            gpu_to_experts=gpu_to_experts)

    shards = -count_per_node
    if num_gpus % shards != 0:
        raise ValueError(
            f"count_per_node={count_per_node}: world size {num_gpus} is "
            f"not divisible by the shard count {shards}")
    num_experts = num_gpus // shards
    gpu_to_experts = tuple(
        ((g // shards, g % shards),) for g in range(num_gpus))
    return ExpertPlacement(
        num_gpus=num_gpus, num_global_experts=num_experts,
        experts_per_gpu=1.0 / shards, shards_per_expert=shards,
        gpu_to_experts=gpu_to_experts)


def round_robin_placement(num_gpus: int,
                          num_experts: int) -> ExpertPlacement:
    """Strided whole-expert layout: expert ``e`` lives on GPU ``e % n``.

    The classic baseline placement the MoETuner-style what-if scorer
    compares ``count_per_node`` blocks against: consecutive experts land
    on *different* GPUs (and, past ``gpus_per_node``, different nodes),
    so runs with strong inter-layer expert affinity pay more cross-node
    hops than under the contiguous layout.  Requires ``num_gpus`` to
    divide ``num_experts`` so every GPU hosts the same expert count.
    """
    if num_gpus < 1:
        raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
    if num_experts < 1 or num_experts % num_gpus != 0:
        raise ValueError(
            f"num_experts ({num_experts}) must be a positive multiple "
            f"of num_gpus ({num_gpus})")
    per_gpu = num_experts // num_gpus
    gpu_to_experts = tuple(
        tuple((g + j * num_gpus, 0) for j in range(per_gpu))
        for g in range(num_gpus))
    return ExpertPlacement(
        num_gpus=num_gpus, num_global_experts=num_experts,
        experts_per_gpu=float(per_gpu), shards_per_expert=1,
        gpu_to_experts=gpu_to_experts)
