"""Switchable parallelism: P1/P2 strategies, placement, inline router."""

from repro.parallel.functional import (
    ShardedExpert,
    gather_zero_slices,
    p1_forward,
    p2_forward,
    shard_expert_columns,
    slice_expert_zero,
)
from repro.parallel.placement import (
    ExpertPlacement,
    build_placement,
    round_robin_placement,
)
from repro.parallel.router import InlineParallelismRouter, RouterDecision
from repro.parallel.strategy import (
    Parallelism,
    StrategyCost,
    p1_communication_bytes,
    p1_param_comm_time,
    p2_communication_bytes,
    replication_factor,
    strategy_cost,
)

__all__ = [
    "ShardedExpert",
    "gather_zero_slices",
    "p1_forward",
    "p2_forward",
    "shard_expert_columns",
    "slice_expert_zero",
    "ExpertPlacement",
    "build_placement",
    "round_robin_placement",
    "InlineParallelismRouter",
    "RouterDecision",
    "Parallelism",
    "StrategyCost",
    "p1_communication_bytes",
    "p1_param_comm_time",
    "p2_communication_bytes",
    "replication_factor",
    "strategy_cost",
]
