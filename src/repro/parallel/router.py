"""Inline parallelism router (paper Section 3.2, Figure 13).

P1 and P2 are constructed to have the *same* token feeding, gradient
updating and parameter placement, hence switching between them costs
nothing.  The router therefore only has to compare their communication
volumes — an O(1) closed-form decision per iteration:

* P1 moves ``dE*C*M`` activation bytes plus one expert's parameters;
* P2 moves ``r * dE*C*M`` activation bytes and no parameters.

Since activation volume scales with ``k * f`` and parameter volume is
constant, P2 wins at small capacity factors and P1 at large ones —
exactly the preference flip of paper Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterTopology
from repro.core.config import MoEConfig
from repro.parallel.strategy import (
    Parallelism,
    StrategyCost,
    replication_factor,
    strategy_cost,
)

__all__ = [
    "RouterDecision",
    "InlineParallelismRouter",
]


@dataclass(frozen=True)
class RouterDecision:
    """One routing decision with the evaluated alternatives."""

    chosen: Parallelism
    costs: dict[Parallelism, StrategyCost]

    @property
    def chosen_cost(self) -> StrategyCost:
        return self.costs[self.chosen]

    def improvement_over(self, strategy: Parallelism) -> float:
        """Fractional time saved versus statically using ``strategy``."""
        static = self.costs[strategy].total_time
        chosen = self.chosen_cost.total_time
        return (static - chosen) / static if static > 0 else 0.0


@dataclass
class InlineParallelismRouter:
    """Chooses P1 or P2 each iteration from the live (k, f) values.

    The router is stateless across iterations apart from a decision
    history kept for diagnostics; the state machine of Figure 13 is
    realized by the fact that with ``r == 1`` both strategies collapse
    to plain expert parallelism (EP).
    """

    topo: ClusterTopology
    training: bool = True
    history: list[RouterDecision] = field(default_factory=list)

    def decide(self, cfg: MoEConfig) -> RouterDecision:
        """Evaluate both strategies for this iteration's configuration."""
        r = replication_factor(cfg)
        if r == 1:
            cost = strategy_cost(cfg, self.topo, Parallelism.EP,
                                 self.training)
            decision = RouterDecision(chosen=Parallelism.EP,
                                      costs={Parallelism.EP: cost})
        else:
            costs = {
                s: strategy_cost(cfg, self.topo, s, self.training)
                for s in (Parallelism.P1_EP_DP, Parallelism.P2_EP_MP)
            }
            chosen = min(costs, key=lambda s: costs[s].total_time)
            decision = RouterDecision(chosen=chosen, costs=costs)
        self.history.append(decision)
        return decision

    def decide_for(self, cfg: MoEConfig, capacity_factor: float,
                   top_k: int | None = None) -> RouterDecision:
        """Convenience: decision for a dynamically adjusted (f, k)."""
        overrides: dict = {"capacity_factor": capacity_factor}
        if top_k is not None:
            overrides["top_k"] = top_k
        return self.decide(cfg.with_(**overrides))

    def switch_count(self) -> int:
        """How many times the chosen strategy changed in the history."""
        chosen = [d.chosen for d in self.history]
        return sum(1 for a, b in zip(chosen, chosen[1:]) if a != b)
