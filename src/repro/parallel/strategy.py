"""Switchable parallelism strategies P1 and P2 (paper Section 3.2).

When experts are fewer than GPUs, each expert is served by
``r = W / E`` GPUs.  Two hybrid strategies cover that regime:

* **P1 — switchable expert + data parallelism** (Figure 11): a single
  fused global All-to-All delivers tokens; each GPU stores a ZeRO-style
  ``1/r`` slice of its expert's parameters and temporarily all-gathers
  the full expert before computing on its ``C/r`` share of tokens.
  Training adds a reduce-scatter of expert gradients.
  ``T_data = O(dE*C*M) + O(params_in_single_expert)``.

* **P2 — switchable expert + model parallelism** (Figure 12): each
  expert's fflayer is column-sharded over ``r`` GPUs; tokens are
  locally repeated ``r`` times before dispatch so every shard sees all
  ``C`` tokens, and combine adds a local sum-reduction of partials.
  ``T_model = O(r * dE * C * M)`` with no parameter communication.

Both strategies keep identical token feeding, gradient updating and
parameter placement, so they can switch *instantly* at every iteration
— which is why the router below only compares communication costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.gemm import GemmModel, expert_ffn_time
from repro.cluster.topology import ClusterTopology
from repro.collectives.schedule import (
    A2AAlgorithm,
    a2a_time,
    all_gather_time,
    best_a2a_algorithm,
    reduce_scatter_time,
)
from repro.core.config import MoEConfig

__all__ = [
    "Parallelism",
    "StrategyCost",
    "replication_factor",
    "p1_communication_bytes",
    "p2_communication_bytes",
    "p1_param_comm_time",
    "strategy_cost",
    "available_strategies",
    "best_strategy",
]


class Parallelism(enum.Enum):
    """The parallelism state machine states of Figure 13."""

    EP = "ep"            # pure expert parallelism (r == 1 special case)
    P1_EP_DP = "p1"      # expert + data parallelism (ZeRO-sliced)
    P2_EP_MP = "p2"      # expert + model parallelism (n-sharded)


def replication_factor(cfg: MoEConfig) -> int:
    """``r = W / E`` — GPUs serving each expert (1 when E >= W)."""
    w, e = cfg.world_size, cfg.num_global_experts
    if e >= w:
        return 1
    if w % e != 0:
        raise ValueError(
            f"world size {w} must be a multiple of expert count {e} "
            "for the switchable strategies")
    return w // e


@dataclass(frozen=True)
class StrategyCost:
    """Cost breakdown of one strategy for one iteration."""

    strategy: Parallelism
    a2a_bytes: int              # per-GPU bytes per All-to-All leg
    param_bytes: int            # per-GPU parameter-traffic bytes
    comm_time: float            # total communication seconds
    compute_time: float         # expert fflayer seconds
    a2a_algorithm: A2AAlgorithm

    @property
    def total_time(self) -> float:
        return self.comm_time + self.compute_time


def p1_communication_bytes(cfg: MoEConfig) -> tuple[int, int]:
    """(A2A bytes per leg, parameter bytes) of P1 for one forward.

    The fused global All-to-All moves the plain dispatch buffer; the
    ZeRO access pattern all-gathers the missing ``(r-1)/r`` of one
    expert's parameters within the replica group.
    """
    r = replication_factor(cfg)
    a2a = cfg.dispatch_bytes_per_gpu
    params = 0
    if r > 1:
        params = int(cfg.expert_parameter_bytes * (r - 1) / r)
    return a2a, params


def p2_communication_bytes(cfg: MoEConfig) -> tuple[int, int]:
    """(A2A bytes per leg, parameter bytes) of P2 for one forward.

    Tokens are repeated ``r`` times by the local repeat operation, so
    each All-to-All leg carries ``r`` times the dispatch buffer; no
    parameter traffic is needed.
    """
    r = replication_factor(cfg)
    return r * cfg.dispatch_bytes_per_gpu, 0


def p1_param_comm_time(cfg: MoEConfig, topo: ClusterTopology,
                       training: bool = True) -> float:
    """Per-iteration parameter traffic of P1's ZeRO-style access.

    The full expert is all-gathered for the forward pass and again for
    the backward pass (ZeRO-3 semantics), gradients are reduce-scattered
    in fp32 (twice the activation dtype width), and the gathered weights
    must be materialized into a contiguous buffer each time — a blocking
    cost that cannot overlap with the MoE layer's own All-to-Alls.
    This is the term that makes P2 preferable when expert parameters
    outweigh the token volume (paper Figure 3 / Table 5b).
    """
    from repro.cluster.linkmodel import contiguous_memcpy_time
    r = replication_factor(cfg)
    if r == 1:
        return 0.0
    param_bytes = cfg.expert_parameter_bytes
    shard = param_bytes / r
    passes = 2 if training else 1
    total = passes * all_gather_time(topo, shard, group_size=r)
    total += passes * contiguous_memcpy_time(topo.gpu, param_bytes)
    if training:
        fp32_grads = param_bytes * (4 / max(cfg.dtype_bytes, 1))
        total += reduce_scatter_time(topo, fp32_grads, group_size=r)
    return total


def strategy_cost(cfg: MoEConfig, topo: ClusterTopology,
                  strategy: Parallelism,
                  training: bool = True,
                  gemm: GemmModel | None = None,
                  a2a_algorithm: A2AAlgorithm | None = None,
                  a2a_candidates: tuple[A2AAlgorithm, ...] | None = None
                  ) -> StrategyCost:
    """Full per-iteration cost of running the MoE layer under a strategy.

    Communication counts two All-to-All legs (dispatch + combine) for a
    forward pass, doubled for training (backward re-runs both), plus the
    strategy's parameter traffic (all-gather, and reduce-scatter of
    gradients when training).  Compute uses the layout-aware GEMM model;
    the per-GPU FLOPs of P1 and P2 are identical by construction, but
    row counts (hence efficiency) differ slightly.
    """
    r = replication_factor(cfg)
    if strategy is Parallelism.EP and r != 1:
        raise ValueError("EP state requires r == 1 (E >= W)")
    if strategy in (Parallelism.P1_EP_DP, Parallelism.P2_EP_MP) and r < 1:
        raise ValueError("P1/P2 require at least one GPU per expert")

    if strategy is Parallelism.P2_EP_MP:
        a2a_bytes, param_bytes = p2_communication_bytes(cfg)
    elif strategy is Parallelism.P1_EP_DP:
        a2a_bytes, param_bytes = p1_communication_bytes(cfg)
    else:
        a2a_bytes, param_bytes = cfg.dispatch_bytes_per_gpu, 0

    if a2a_algorithm is None:
        algo, one_leg = best_a2a_algorithm(topo, a2a_bytes,
                                           candidates=a2a_candidates)
    else:
        algo = a2a_algorithm
        one_leg = a2a_time(topo, a2a_bytes, algo)
    legs = 4 if training else 2
    comm = legs * one_leg

    if param_bytes:
        comm += p1_param_comm_time(cfg, topo, training)

    local_experts = max(1, round(cfg.experts_per_gpu))
    c_total = cfg.global_capacity
    if strategy is Parallelism.P2_EP_MP:
        rows = c_total
        hidden = max(1, cfg.hidden_dim // r)
        compute = expert_ffn_time(topo.gpu, local_experts, rows,
                                  cfg.model_dim, hidden, gemm,
                                  backward=training)
    else:
        rows = max(1, c_total // r)
        compute = expert_ffn_time(topo.gpu, local_experts, rows,
                                  cfg.model_dim, cfg.hidden_dim, gemm,
                                  backward=training)

    return StrategyCost(strategy=strategy, a2a_bytes=a2a_bytes,
                        param_bytes=param_bytes, comm_time=comm,
                        compute_time=compute, a2a_algorithm=algo)


def available_strategies(cfg: MoEConfig) -> tuple[Parallelism, ...]:
    """Strategies the Figure 13 state machine allows for this config.

    ``r == 1`` (at least one expert per GPU) admits only plain EP;
    ``r > 1`` admits the two switchable hybrids P1 and P2.
    """
    if replication_factor(cfg) == 1:
        return (Parallelism.EP,)
    return (Parallelism.P1_EP_DP, Parallelism.P2_EP_MP)


def best_strategy(cfg: MoEConfig, topo: ClusterTopology,
                  training: bool = True,
                  gemm: GemmModel | None = None,
                  a2a_candidates: tuple[A2AAlgorithm, ...] | None = None
                  ) -> StrategyCost:
    """Cheapest admissible strategy for one iteration.

    This is both the normal adaptive-parallelism selector (Table 5)
    and the re-selection entry point of the recovery path
    (:mod:`repro.resilience.recovery`): because P1/P2 keep identical
    token feeding, gradient updating, and parameter placement, the
    system can re-run this after a rank failure and switch instantly.
    """
    costs = [strategy_cost(cfg, topo, s, training=training, gemm=gemm,
                           a2a_candidates=a2a_candidates)
             for s in available_strategies(cfg)]
    return min(costs, key=lambda c: c.total_time)
