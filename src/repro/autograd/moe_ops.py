"""Differentiable MoE dispatch/combine built on the sparse kernels.

Wraps the verified sparse fast encode/decode of :mod:`repro.moe.encode`
(Figure 19's K0/K1/K2 kernels) as autograd ops.  Routing indices and
locations are discrete and carry no gradient; the gate values *do* —
the combine op returns gradients for both the expert outputs and the
per-slot gates, which is how the router trains through the layer.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.moe.encode import (
    fast_decode,
    fast_decode_backward,
    fast_encode,
    fast_encode_backward,
)
from repro.moe.gating import RoutingCriteria
from repro.obs import profiler as _prof

__all__ = ["moe_dispatch", "moe_combine", "batched_expert_ffn_input"]


def moe_dispatch(x: Tensor, crit: RoutingCriteria) -> Tensor:
    """Scatter tokens into ``(E, dC, M)`` capacity cells (fast_encode)."""
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    out_data = fast_encode(x.data, crit)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(fast_encode_backward(grad, crit))
    out = Tensor.from_op(out_data, (x,), backward)
    if p is not None:
        routes = _prof.routes_of(crit)
        cells = crit.num_experts * crit.capacity
        m = x.data.shape[1]
        p.tape_op(out, "moe_dispatch", t0,
                  _prof.sparse_encode_cost(routes, cells, m),
                  _prof.sparse_encode_backward_cost(
                      routes, crit.num_tokens, m))
    return out


def moe_combine(expert_output: Tensor, gates: Tensor,
                crit: RoutingCriteria) -> Tensor:
    """Weighted gather back to token order (fast_decode).

    ``gates`` must have the ``(k, T)`` layout of ``crit.gates``; the
    decode uses these live values, keeping the router differentiable.
    """
    if gates.shape != crit.gates.shape:
        raise ValueError(
            f"gates shape {gates.shape} != crit gates "
            f"{crit.gates.shape}")
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    live = RoutingCriteria(idxs=crit.idxs, locations=crit.locations,
                           gates=np.where(crit.valid, gates.data, 0.0),
                           capacity=crit.capacity,
                           num_experts=crit.num_experts)
    out_data = fast_decode(expert_output.data, live)

    def backward(grad: np.ndarray) -> None:
        grad_z, grad_gates = fast_decode_backward(grad,
                                                  expert_output.data, live)
        expert_output._accumulate(grad_z)
        gates._accumulate(np.where(crit.valid, grad_gates, 0.0))
    out = Tensor.from_op(out_data, (expert_output, gates), backward)
    if p is not None:
        routes = _prof.routes_of(live)
        cells = crit.num_experts * crit.capacity
        m = expert_output.data.shape[-1]
        p.tape_op(out, "moe_combine", t0,
                  _prof.sparse_decode_cost(routes, crit.num_tokens, m),
                  _prof.sparse_decode_backward_cost(
                      routes, cells, crit.gates.size, m))
    return out


def batched_expert_ffn_input(dispatched: Tensor, w: Tensor) -> Tensor:
    """Differentiable ``einsum("ecm,emv->ecv")`` per-expert GEMM."""
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    out_data = np.einsum("ecm,emv->ecv", dispatched.data, w.data)

    def backward(grad: np.ndarray) -> None:
        dispatched._accumulate(
            np.einsum("ecv,emv->ecm", grad, w.data))
        w._accumulate(np.einsum("ecm,ecv->emv", dispatched.data, grad))
    out = Tensor.from_op(out_data, (dispatched, w), backward)
    if p is not None:
        fwd, bwd = _prof.matmul_cost(dispatched.data.shape, w.data.shape,
                                     out_data.shape)
        p.tape_op(out, "expert_gemm", t0, fwd, bwd)
    return out
