"""Differentiable MoE dispatch/combine built on the sparse kernels.

Wraps the verified sparse fast encode/decode of :mod:`repro.moe.encode`
(Figure 19's K0/K1/K2 kernels) as autograd ops.  Routing indices and
locations are discrete and carry no gradient; the gate values *do* —
the combine op returns gradients for both the expert outputs and the
per-slot gates, which is how the router trains through the layer.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.moe.encode import (
    fast_decode,
    fast_decode_backward,
    fast_encode,
    fast_encode_backward,
)
from repro.moe.gating import RoutingCriteria
from repro.obs import profiler as _prof
from repro.runtime.executor import (
    ffn_backward_arrays,
    ffn_forward_arrays,
    get_executor,
)

__all__ = ["moe_dispatch", "moe_combine", "batched_expert_ffn_input",
           "expert_ffn"]


def moe_dispatch(x: Tensor, crit: RoutingCriteria) -> Tensor:
    """Scatter tokens into ``(E, dC, M)`` capacity cells (fast_encode)."""
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    out_data = fast_encode(x.data, crit)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(fast_encode_backward(grad, crit))
    out = Tensor.from_op(out_data, (x,), backward)
    if p is not None:
        routes = _prof.routes_of(crit)
        cells = crit.num_experts * crit.capacity
        m = x.data.shape[1]
        isz = out.data.itemsize
        p.tape_op(out, "moe_dispatch", t0,
                  _prof.sparse_encode_cost(routes, cells, m,
                                           itemsize=isz),
                  _prof.sparse_encode_backward_cost(
                      routes, crit.num_tokens, m, itemsize=isz))
    return out


def moe_combine(expert_output: Tensor, gates: Tensor,
                crit: RoutingCriteria) -> Tensor:
    """Weighted gather back to token order (fast_decode).

    ``gates`` must have the ``(k, T)`` layout of ``crit.gates``; the
    decode uses these live values, keeping the router differentiable.
    """
    if gates.shape != crit.gates.shape:
        raise ValueError(
            f"gates shape {gates.shape} != crit gates "
            f"{crit.gates.shape}")
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    live = RoutingCriteria(idxs=crit.idxs, locations=crit.locations,
                           gates=np.where(crit.valid, gates.data, 0.0),
                           capacity=crit.capacity,
                           num_experts=crit.num_experts)
    out_data = fast_decode(expert_output.data, live)

    def backward(grad: np.ndarray) -> None:
        grad_z, grad_gates = fast_decode_backward(grad,
                                                  expert_output.data, live)
        expert_output._accumulate(grad_z)
        gates._accumulate(np.where(crit.valid, grad_gates, 0.0))
    out = Tensor.from_op(out_data, (expert_output, gates), backward)
    if p is not None:
        routes = _prof.routes_of(live)
        cells = crit.num_experts * crit.capacity
        m = expert_output.data.shape[-1]
        isz = out.data.itemsize
        p.tape_op(out, "moe_combine", t0,
                  _prof.sparse_decode_cost(routes, crit.num_tokens, m,
                                           itemsize=isz),
                  _prof.sparse_decode_backward_cost(
                      routes, cells, crit.gates.size, m, itemsize=isz))
    return out


def batched_expert_ffn_input(dispatched: Tensor, w: Tensor) -> Tensor:
    """Differentiable per-expert GEMM: ``(E, dC, M) @ (E, M, V)``.

    Uses batched ``np.matmul`` rather than the equivalent einsum —
    einsum routes these contractions through its generic loop (~10x
    slower than BLAS at the bench sizes).
    """
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    out_data = np.matmul(dispatched.data, w.data)

    def backward(grad: np.ndarray) -> None:
        dispatched._accumulate(
            np.matmul(grad, w.data.swapaxes(-1, -2)))
        w._accumulate(np.matmul(dispatched.data.swapaxes(-1, -2), grad))
    out = Tensor.from_op(out_data, (dispatched, w), backward)
    if p is not None:
        fwd, bwd = _prof.matmul_cost(dispatched.data.shape, w.data.shape,
                                     out_data.shape,
                                     itemsize=out_data.itemsize)
        p.tape_op(out, "expert_gemm", t0, fwd, bwd)
    return out


def expert_ffn_cost(e: int, c: int, m: int, v: int, activation: str,
                    itemsize: int) -> tuple[_prof.OpCost, _prof.OpCost]:
    """Closed-form cost of the fused expert FFN, composed from the
    two per-expert GEMMs plus the activation (serial algorithm; the
    parallel executor's recompute is a schedule choice, not counted)."""
    g1_f, g1_b = _prof.matmul_cost((e, c, m), (e, m, v), (e, c, v),
                                   itemsize=itemsize)
    a_f, a_b = _prof.elementwise_cost(activation, e * c * v,
                                      itemsize=itemsize)
    g2_f, g2_b = _prof.matmul_cost((e, c, v), (e, v, m), (e, c, m),
                                   itemsize=itemsize)
    return g1_f + a_f + g2_f, g1_b + a_b + g2_b


def expert_ffn(dispatched: Tensor, w1: Tensor, w2: Tensor,
               activation: str = "gelu") -> Tensor:
    """Fused differentiable expert FFN: ``act(x @ w1) @ w2`` per expert.

    One tape node replaces the two ``batched_expert_ffn_input`` calls
    plus the activation op.  When the substrate has expert workers
    configured (:func:`repro.core.substrate.set_expert_workers`), the
    E experts' GEMMs run on the multicore executor; the backward then
    recomputes the hidden activations in the workers instead of
    saving them.  Serial and parallel paths share the same array
    kernels and agree numerically.
    """
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    x_data, w1_data, w2_data = dispatched.data, w1.data, w2.data
    ex = get_executor()
    saved: tuple | None = None
    if ex is not None:
        try:
            out_data = ex.ffn_forward(x_data, w1_data, w2_data, activation)
        except Exception:
            ex.broken = True
            ex = None
    if ex is None:
        out_data, saved = ffn_forward_arrays(x_data, w1_data, w2_data,
                                             activation)

    def backward(grad: np.ndarray) -> None:
        ex_b = get_executor()
        if ex_b is not None:
            try:
                gx, gw1, gw2 = ex_b.ffn_backward(
                    x_data, w1_data, w2_data, grad, activation)
            except Exception:
                ex_b.broken = True
                ex_b = None
        if ex_b is None:
            gx, gw1, gw2 = ffn_backward_arrays(
                x_data, w1_data, w2_data, grad, activation, saved)
        dispatched._accumulate(gx)
        w1._accumulate(gw1)
        w2._accumulate(gw2)
    out = Tensor.from_op(out_data, (dispatched, w1, w2), backward)
    if p is not None:
        e, c, m = x_data.shape
        v = w1_data.shape[-1]
        fwd, bwd = expert_ffn_cost(e, c, m, v, activation,
                                   out_data.itemsize)
        p.tape_op(out, "expert_ffn", t0, fwd, bwd)
    return out
