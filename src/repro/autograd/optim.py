"""Optimizers for the training experiments."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam with decoupled weight decay (AdamW-style)."""

    def __init__(self, params: list[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._step
        bias2 = 1.0 - b2 ** self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad ** 2
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
