"""Minimal reverse-mode autograd used by the training experiments."""

from repro.autograd.functional import (
    concat,
    cross_entropy,
    exp,
    gather_rows,
    gelu,
    layer_norm,
    log,
    log_softmax,
    relu,
    softmax,
    take_along,
    tanh,
)
from repro.autograd.moe_ops import (
    batched_expert_ffn_input,
    expert_ffn,
    moe_combine,
    moe_dispatch,
)
from repro.autograd.optim import SGD, Adam, clip_grad_norm
from repro.autograd.tensor import Tensor, as_tensor, stack_gradients
from repro.core.substrate import (
    default_dtype,
    set_default_dtype,
    substrate_dtype,
)

__all__ = [
    "concat",
    "cross_entropy",
    "exp",
    "gather_rows",
    "gelu",
    "layer_norm",
    "log",
    "log_softmax",
    "relu",
    "softmax",
    "take_along",
    "tanh",
    "batched_expert_ffn_input",
    "expert_ffn",
    "moe_combine",
    "moe_dispatch",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "Tensor",
    "as_tensor",
    "stack_gradients",
    "default_dtype",
    "set_default_dtype",
    "substrate_dtype",
]
