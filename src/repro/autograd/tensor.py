"""Minimal reverse-mode automatic differentiation over NumPy.

Just enough machinery to *train* MoE models for the accuracy
experiments (paper Section 5.3): tensors record the ops that produced
them; :meth:`Tensor.backward` runs the tape in reverse topological
order.  Broadcasting is supported by summing gradients over broadcast
axes.  The MoE-specific dispatch/combine ops live in
:mod:`repro.autograd.moe_ops` and reuse the verified sparse kernels of
:mod:`repro.moe.encode`.

Every op is instrumented for :mod:`repro.obs.profiler`: when a
profiler is active, op outputs carry closed-form FLOP/byte costs and
land in the live-set allocation ledger; when it is not (the default),
each op pays a single module-global ``is None`` check.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.core import substrate as _substrate
from repro.obs import profiler as _prof

__all__ = ["Tensor", "as_tensor", "stack_gradients"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1
                 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an attached gradient tape node."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_op", "__weakref__")

    def __init__(self, data, requires_grad: bool = False,
                 name: str = "", dtype: np.dtype | None = None) -> None:
        # Leaf tensors are coerced to the substrate dtype (float32 by
        # default; see repro.core.substrate).  Pass ``dtype`` to pin a
        # specific precision regardless of the process default.
        if dtype is None:
            dtype = _substrate.default_dtype()
        self.data = np.asarray(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name
        # Profiler metadata: (op name, MoE stage, backward OpCost),
        # set by Profiler.tape_op; None when unprofiled.
        self._op: tuple | None = None

    # -- construction ---------------------------------------------------

    @staticmethod
    def from_op(data: np.ndarray, parents: Iterable["Tensor"],
                backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        # Op outputs keep the dtype NumPy produced from the inputs —
        # re-coercing to the process default here would silently down-
        # cast float64 gradcheck graphs (or upcast float32 ones).
        out = Tensor(data, requires_grad=any(p.requires_grad
                                             for p in parents),
                     dtype=np.asarray(data).dtype)
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    # -- properties ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}{tag})"

    # -- autograd --------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype),
                            self.data.shape)
        self.grad = grad if self.grad is None else self.grad + grad
        p = _prof.active()
        if p is not None:
            p.track_grad(self)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (defaults to scalar seed 1)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a gradient seed requires a "
                    f"scalar tensor, got shape {self.shape}")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad:
                        stack.append((parent, False))

        visit(self)
        p = _prof.active()
        if p is None:
            self._accumulate(grad)
            for node in reversed(topo):
                if node._backward is not None and node.grad is not None:
                    node._backward(node.grad)
        else:
            with p.backward_pass():
                self._accumulate(grad)
                for node in reversed(topo):
                    if node._backward is not None and node.grad is not None:
                        p.run_backward(node)

    def zero_grad(self) -> None:
        if self.grad is not None:
            p = _prof.active()
            if p is not None:
                p.release_grad(self)
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False,
                      dtype=self.data.dtype)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)
        out = Tensor.from_op(out_data, (self, other), backward)
        if p is not None:
            fwd, bwd = _prof.elementwise_cost("add", out_data.size, 2,
                                             itemsize=out_data.itemsize)
            p.tape_op(out, "add", t0, fwd, bwd)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)
        out = Tensor.from_op(out_data, (self,), backward)
        if p is not None:
            fwd, bwd = _prof.elementwise_cost("neg", out_data.size, 1,
                                             itemsize=out_data.itemsize)
            p.tape_op(out, "neg", t0, fwd, bwd)
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)
        out = Tensor.from_op(out_data, (self, other), backward)
        if p is not None:
            fwd, bwd = _prof.elementwise_cost("mul", out_data.size, 2,
                                             itemsize=out_data.itemsize)
            p.tape_op(out, "mul", t0, fwd, bwd)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data
                              / (other.data * other.data))
        out = Tensor.from_op(out_data, (self, other), backward)
        if p is not None:
            fwd, bwd = _prof.elementwise_cost("div", out_data.size, 2,
                                             itemsize=out_data.itemsize)
            p.tape_op(out, "div", t0, fwd, bwd)
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        # ``**`` hits the generic pow kernel even for small integer or
        # half exponents; the common cases deserve the cheap kernels.
        if exponent == 2:
            out_data = self.data * self.data
        elif exponent == 0.5:
            out_data = np.sqrt(self.data)
        else:
            out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if exponent == 2:
                self._accumulate(grad * 2.0 * self.data)
            elif exponent == 0.5:
                self._accumulate(grad * 0.5 / out_data)
            else:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1))
        out = Tensor.from_op(out_data, (self,), backward)
        if p is not None:
            fwd, bwd = _prof.elementwise_cost("pow", out_data.size, 1,
                                             itemsize=out_data.itemsize)
            p.tape_op(out, "pow", t0, fwd, bwd)
        return out

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)
        out = Tensor.from_op(out_data, (self, other), backward)
        if p is not None:
            fwd, bwd = _prof.matmul_cost(self.data.shape, other.data.shape,
                                         out_data.shape,
                                         itemsize=out_data.itemsize)
            p.tape_op(out, "matmul", t0, fwd, bwd)
        return out

    # -- shape ops -----------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        out_data = self.data.reshape(*shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))
        out = Tensor.from_op(out_data, (self,), backward)
        if p is not None:
            # Views: no FLOPs, no data movement; the ledger skips the
            # output array because its memory belongs to the base.
            p.tape_op(out, "reshape", t0, _prof.ZERO_COST)
        return out

    def transpose(self, *axes: int) -> "Tensor":
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))
        out = Tensor.from_op(out_data, (self,), backward)
        if p is not None:
            p.tape_op(out, "transpose", t0, _prof.ZERO_COST)
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    # -- reductions ---------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        p = _prof.active()
        t0 = p.clock() if p is not None else 0.0
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(ax % len(shape) for ax in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, shape))
        out = Tensor.from_op(out_data, (self,), backward)
        if p is not None:
            fwd, bwd = _prof.reduction_cost(self.data.size, out_data.size,
                                            itemsize=out_data.itemsize)
            p.tape_op(out, "sum", t0, fwd, bwd)
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)


def as_tensor(value) -> Tensor:
    """Wrap a raw value as a constant tensor (no-op for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def stack_gradients(tensors: Iterable[Tensor]) -> float:
    """Global L2 norm of gradients (for clipping / diagnostics)."""
    total = 0.0
    for t in tensors:
        if t.grad is not None:
            g = np.ascontiguousarray(t.grad)
            total += float(np.vdot(g, g))
    return float(np.sqrt(total))
