"""Differentiable nonlinearities, normalization and losses.

Every op is instrumented for :mod:`repro.obs.profiler` with
closed-form FLOP/byte costs (see the conventions documented there);
with no active profiler each op pays one ``is None`` check.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.obs import profiler as _prof
from repro.obs.profiler import OpCost

__all__ = [
    "relu",
    "gelu",
    "tanh",
    "exp",
    "log",
    "softmax",
    "log_softmax",
    "layer_norm",
    "cross_entropy",
    "gather_rows",
    "take_along",
    "concat",
]


def relu(x: Tensor) -> Tensor:
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)
    out = Tensor.from_op(x.data * mask, (x,), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("relu", out.data.size, 1,
                                         itemsize=out.data.itemsize)
        p.tape_op(out, "relu", t0, fwd, bwd)
    return out


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximated GELU with its exact derivative."""
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    c = np.sqrt(2.0 / np.pi)
    xd = x.data
    # The generic pow kernel makes ``x ** 3`` ~20x slower than two
    # multiplies; this op dominates expert-FFN wall time, so the
    # polynomial is built from muls with in-place chaining.
    inner = xd * xd
    inner *= xd
    inner *= 0.044715
    inner += xd
    inner *= c
    t = np.tanh(inner)
    out_data = t + 1.0
    out_data *= xd
    out_data *= 0.5

    def backward(grad: np.ndarray) -> None:
        d_inner = xd * xd
        d_inner *= 3 * 0.044715
        d_inner += 1.0
        d_inner *= c
        d = t * t
        np.subtract(1.0, d, out=d)
        d *= d_inner
        d *= xd
        d += 1.0
        d += t
        d *= 0.5
        x._accumulate(grad * d)
    out = Tensor.from_op(out_data, (x,), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("gelu", out_data.size, 1,
                                         itemsize=out_data.itemsize)
        p.tape_op(out, "gelu", t0, fwd, bwd)
    return out


def tanh(x: Tensor) -> Tensor:
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    t = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - t * t))
    out = Tensor.from_op(t, (x,), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("tanh", t.size, 1,
                                         itemsize=t.itemsize)
        p.tape_op(out, "tanh", t0, fwd, bwd)
    return out


def exp(x: Tensor) -> Tensor:
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    e = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * e)
    out = Tensor.from_op(e, (x,), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("exp", e.size, 1,
                                         itemsize=e.itemsize)
        p.tape_op(out, "exp", t0, fwd, bwd)
    return out


def log(x: Tensor) -> Tensor:
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad / x.data)
    out = Tensor.from_op(np.log(x.data), (x,), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("log", out.data.size, 1,
                                         itemsize=out.data.itemsize)
        p.tape_op(out, "log", t0, fwd, bwd)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    s = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * s).sum(axis=axis, keepdims=True)
        x._accumulate(s * (grad - dot))
    out = Tensor.from_op(s, (x,), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("softmax", s.size, 1,
                                         itemsize=s.itemsize)
        p.tape_op(out, "softmax", t0, fwd, bwd)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    s = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - s * grad.sum(axis=axis, keepdims=True))
    out = Tensor.from_op(out_data, (x,), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("log_softmax", out_data.size, 1,
                                         itemsize=out_data.itemsize)
        p.tape_op(out, "log_softmax", t0, fwd, bwd)
    return out


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """LayerNorm over the last axis with affine parameters."""
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv
    out_data = xhat * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        weight._accumulate((grad * xhat).sum(
            axis=tuple(range(grad.ndim - 1))))
        bias._accumulate(grad.sum(axis=tuple(range(grad.ndim - 1))))
        gx = grad * weight.data
        dx = inv * (gx - gx.mean(axis=-1, keepdims=True)
                    - xhat * (gx * xhat).mean(axis=-1, keepdims=True))
        x._accumulate(dx)
    out = Tensor.from_op(out_data, (x, weight, bias), backward)
    if p is not None:
        fwd, bwd = _prof.elementwise_cost("layer_norm", out_data.size, 1,
                                         itemsize=out_data.itemsize)
        p.tape_op(out, "layer_norm", t0, fwd, bwd)
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over integer class labels."""
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"logits must be (N, C) and labels (N,), got {logits.shape} "
            f"and {labels.shape}")
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - lse
    loss = -logp[np.arange(n), labels].mean()

    def backward(grad: np.ndarray) -> None:
        prob = np.exp(logp)
        prob[np.arange(n), labels] -= 1.0
        logits._accumulate(float(grad) * prob / n)
    out = Tensor.from_op(np.asarray(loss), (logits,), backward)
    if p is not None:
        size = logits.data.size
        isz = logits.data.itemsize
        fwd = OpCost(flops=10.0 * size, bytes_read=size * isz,
                     bytes_written=isz)
        bwd = OpCost(flops=8.0 * size, bytes_read=size * isz,
                     bytes_written=size * isz)
        p.tape_op(out, "cross_entropy", t0, fwd, bwd)
    return out


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Differentiable row gather: ``out[i] = x[indices[i]]``."""
    indices = np.asarray(indices)
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    out_data = x.data[indices]

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        np.add.at(gx, indices, grad)
        x._accumulate(gx)
    out = Tensor.from_op(out_data, (x,), backward)
    if p is not None:
        size = out_data.size
        isz = out_data.itemsize
        fwd = OpCost(bytes_read=size * isz,
                     bytes_written=size * isz)
        bwd = OpCost(flops=float(size), bytes_read=2.0 * size * isz,
                     bytes_written=x.data.size * isz)
        p.tape_op(out, "gather_rows", t0, fwd, bwd)
    return out


def take_along(x: Tensor, indices: np.ndarray, axis: int) -> Tensor:
    """Differentiable ``np.take_along_axis``."""
    indices = np.asarray(indices)
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    out_data = np.take_along_axis(x.data, indices, axis=axis)

    def backward(grad: np.ndarray) -> None:
        # put_along_axis overwrites on duplicate indices, so scatter-add
        # through explicit fancy indexing instead.
        gx = np.zeros_like(x.data)
        idx = [np.arange(s).reshape([s if d == i else 1
                                     for d in range(x.ndim)])
               for i, s in enumerate(x.data.shape)]
        idx[axis] = indices
        np.add.at(gx, tuple(np.broadcast_arrays(*idx)), grad)
        x._accumulate(gx)
    out = Tensor.from_op(out_data, (x,), backward)
    if p is not None:
        size = out_data.size
        isz = out_data.itemsize
        fwd = OpCost(bytes_read=size * isz,
                     bytes_written=size * isz)
        bwd = OpCost(flops=float(size), bytes_read=2.0 * size * isz,
                     bytes_written=x.data.size * isz)
        p.tape_op(out, "take_along", t0, fwd, bwd)
    return out


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation."""
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    p = _prof.active()
    t0 = p.clock() if p is not None else 0.0
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(lo, hi)
            t._accumulate(grad[tuple(slicer)])
    out = Tensor.from_op(out_data, tuple(tensors), backward)
    if p is not None:
        size = out_data.size
        isz = out_data.itemsize
        cost = OpCost(bytes_read=size * isz,
                      bytes_written=size * isz)
        p.tape_op(out, "concat", t0, cost, cost)
    return out
