"""Synthetic clustered-token tasks standing in for ImageNet/COCO.

The paper's accuracy claims are *relative* (sparse beats dense, 32-64
experts are best, BPR matters at low inference capacity, cosine routing
matches linear).  The mechanism behind every one of them is expert
specialization: tokens fall into latent groups and per-group transforms
beat a single shared transform of the same activated size.

:class:`ClusteredTokenTask` makes that mechanism explicit: tokens are
drawn around one of ``num_clusters`` latent centers and labelled by a
*cluster-specific* random linear map, so the Bayes-optimal predictor is
a per-cluster model — exactly what an MoE with roughly
``num_clusters`` experts can represent and a same-activated-size dense
model cannot.

A *downstream* variant re-labels the same clusters with fresh maps and
few samples, standing in for the COCO fine-tuning transfer (Table 10),
and :func:`few_shot_split` supplies the 5-shot linear-evaluation
protocol (Table 11's ``IN-1K/5-shot`` column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TokenBatch", "ClusteredTokenTask", "few_shot_split"]


@dataclass
class TokenBatch:
    """A labelled set of tokens (with their latent cluster ids)."""

    x: np.ndarray          # (N, D)
    y: np.ndarray          # (N,)
    cluster: np.ndarray    # (N,)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y) or len(self.x) != len(self.cluster):
            raise ValueError("x, y, cluster must have equal lengths")

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, idx: np.ndarray) -> "TokenBatch":
        return TokenBatch(self.x[idx], self.y[idx], self.cluster[idx])


class ClusteredTokenTask:
    """Token classification with cluster-conditional labels.

    Parameters
    ----------
    num_clusters:
        Latent groups (the "concepts" experts can specialize on).
    input_dim / num_classes:
        Token dimensionality and label space size.
    noise:
        Within-cluster standard deviation; higher = harder routing.
    label_margin:
        Scale of the cluster-specific linear maps; higher = labels
        depend more sharply on the within-cluster offset.
    """

    def __init__(self, num_clusters: int = 32, input_dim: int = 16,
                 num_classes: int = 8, noise: float = 0.35,
                 label_margin: float = 3.0, seed: int = 0) -> None:
        if num_clusters < 1 or num_classes < 2 or input_dim < 1:
            raise ValueError("invalid task dimensions")
        self.num_clusters = num_clusters
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.noise = noise
        self.label_margin = label_margin
        rng = np.random.default_rng(seed)
        self.centers = rng.normal(0.0, 2.0, (num_clusters, input_dim))
        self.label_maps = rng.normal(
            0.0, label_margin, (num_clusters, num_classes, input_dim))
        self.label_bias = rng.normal(0.0, 0.3,
                                     (num_clusters, num_classes))
        self._rng = rng

    def _label(self, offsets: np.ndarray, clusters: np.ndarray,
               maps: np.ndarray, bias: np.ndarray) -> np.ndarray:
        scores = (np.einsum("ncd,nd->nc", maps[clusters], offsets)
                  + bias[clusters])
        return scores.argmax(axis=1)

    def sample(self, n: int, rng: np.random.Generator | None = None
               ) -> TokenBatch:
        """Draw ``n`` labelled tokens."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        rng = rng or self._rng
        clusters = rng.integers(0, self.num_clusters, n)
        offsets = rng.normal(0.0, self.noise, (n, self.input_dim))
        x = self.centers[clusters] + offsets
        y = self._label(offsets, clusters, self.label_maps,
                        self.label_bias)
        return TokenBatch(x=x, y=y, cluster=clusters)

    def downstream(self, seed: int = 1,
                   drift: float = 1.0) -> "ClusteredTokenTask":
        """A transfer task: same latent clusters, drifted label maps.

        Stands in for fine-tuning a pre-trained backbone on a new
        dataset (the COCO protocol of Table 10): the useful structure
        (cluster identity, and with ``drift < 1`` most of the
        label-map structure too) transfers.  ``drift`` blends fresh
        random maps into the pre-training maps: 0 keeps the task
        identical, 1 relabels completely.
        """
        if not 0.0 <= drift <= 1.0:
            raise ValueError(f"drift must be in [0, 1], got {drift}")
        task = ClusteredTokenTask.__new__(ClusteredTokenTask)
        task.num_clusters = self.num_clusters
        task.input_dim = self.input_dim
        task.num_classes = self.num_classes
        task.noise = self.noise
        task.label_margin = self.label_margin
        task.centers = self.centers
        rng = np.random.default_rng(10_000 + seed)
        fresh_maps = rng.normal(
            0.0, self.label_margin,
            (self.num_clusters, self.num_classes, self.input_dim))
        fresh_bias = rng.normal(
            0.0, 0.3, (self.num_clusters, self.num_classes))
        task.label_maps = ((1 - drift) * self.label_maps
                           + drift * fresh_maps)
        task.label_bias = ((1 - drift) * self.label_bias
                           + drift * fresh_bias)
        task._rng = rng
        return task


def few_shot_split(batch: TokenBatch, shots: int,
                   seed: int = 0) -> tuple[TokenBatch, TokenBatch]:
    """Per-class ``shots``-sample train split; the rest is evaluation.

    The 5-shot linear-evaluation protocol of the paper: 5 training
    samples per class feed a linear classifier on frozen features.
    """
    if shots < 1:
        raise ValueError(f"shots must be >= 1, got {shots}")
    rng = np.random.default_rng(seed)
    train_idx: list[int] = []
    for cls in np.unique(batch.y):
        candidates = np.flatnonzero(batch.y == cls)
        if len(candidates) < shots:
            raise ValueError(
                f"class {cls} has only {len(candidates)} samples, "
                f"needs {shots}")
        train_idx.extend(rng.choice(candidates, shots, replace=False))
    train_mask = np.zeros(len(batch), dtype=bool)
    train_mask[train_idx] = True
    return batch.subset(np.flatnonzero(train_mask)), \
        batch.subset(np.flatnonzero(~train_mask))
