"""Dynamic sparsity schedules (paper Section 4.1).

Tutel's top-ANY gating lets ``k`` change at every iteration, and the
capacity factor likewise: "users can leverage this feature to
dynamically fine-tune sparsity of MoE layers".  These schedules are the
training-side realization: a callable ``step -> value`` that the
trainer applies to every MoE layer before each iteration.

Typical uses:

* anneal ``k`` from 2 to 1: dense-ish routing early (stable training)
  and cheap top-1 inference-matched routing late;
* warm up the capacity factor downward as routing becomes balanced,
  tracking the needed capacity of Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "ConstantSchedule",
    "StepSchedule",
    "LinearSchedule",
    "CosineSchedule",
    "apply_sparsity_schedules",
]


@dataclass(frozen=True)
class ConstantSchedule:
    """Always the same value."""

    value: float

    def __call__(self, step: int) -> float:
        return self.value


@dataclass(frozen=True)
class StepSchedule:
    """Piecewise-constant: ``milestones[i] <= step`` selects values[i+1].

    ``StepSchedule(values=(2, 1), milestones=(100,))`` keeps k = 2 for
    the first 100 steps and k = 1 afterwards.
    """

    values: tuple[float, ...]
    milestones: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.milestones) + 1:
            raise ValueError(
                f"need len(values) == len(milestones) + 1, got "
                f"{len(self.values)} and {len(self.milestones)}")
        if list(self.milestones) != sorted(self.milestones):
            raise ValueError("milestones must be increasing")

    def __call__(self, step: int) -> float:
        index = sum(1 for m in self.milestones if step >= m)
        return self.values[index]


@dataclass(frozen=True)
class LinearSchedule:
    """Linear interpolation from ``start`` to ``end`` over ``steps``."""

    start: float
    end: float
    steps: int

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")

    def __call__(self, step: int) -> float:
        t = min(max(step, 0), self.steps) / self.steps
        return self.start + (self.end - self.start) * t


@dataclass(frozen=True)
class CosineSchedule:
    """Cosine interpolation from ``start`` to ``end`` over ``steps``."""

    start: float
    end: float
    steps: int

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")

    def __call__(self, step: int) -> float:
        t = min(max(step, 0), self.steps) / self.steps
        return self.end + 0.5 * (self.start - self.end) * (
            1.0 + math.cos(math.pi * t))


def apply_sparsity_schedules(model, step: int,
                             top_k: Callable[[int], float] | None = None,
                             capacity_factor: Callable[[int], float]
                             | None = None) -> None:
    """Apply schedules to every MoE layer of a classifier in place.

    ``top_k`` values are rounded to the nearest valid integer in
    ``[1, E]``; capacity factors pass through the Figure 16 semantics
    (so 0 / negative values select the adaptive modes).
    """
    from repro.moe.capacity import CapacityPolicy
    from repro.nn.models import MoEClassifier

    if not isinstance(model, MoEClassifier):
        return
    for layer in model.moe_layers():
        if top_k is not None:
            k = int(round(top_k(step)))
            layer.top_k = min(max(k, 1), layer.num_experts)
        if capacity_factor is not None:
            layer.capacity_policy = CapacityPolicy(
                float(capacity_factor(step)))
