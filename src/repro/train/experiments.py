"""End-to-end accuracy experiments (paper Section 5.3.2 / 5.3.3 / 5.3.4).

Each function runs a complete train/evaluate protocol on the synthetic
clustered-token task and returns structured results that the benchmark
harness renders next to the paper's numbers.  The experiments mirror:

* Table 9/11 — sparse SwinV2-MoE vs the dense counterpart, with an
  expert-count sweep;
* Table 10 — downstream fine-tuning with tuned vs frozen MoE layers;
* Table 12 — top-k and train/inference capacity-factor ablation;
* Figure 25 — batch prioritized routing vs plain routing across
  inference capacity factors;
* Table 13 — cosine vs linear router.

The default scale (steps/sizes) is chosen so each experiment runs in
seconds-to-minutes on a laptop CPU; pass a larger ``ExperimentScale``
to tighten the error bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.models import DenseClassifier, MoEClassifier
from repro.train.data import ClusteredTokenTask, few_shot_split
from repro.train.trainer import (
    TrainResult,
    evaluate,
    linear_probe_accuracy,
    train_model,
)

__all__ = [
    "ExperimentScale",
    "AccuracyResult",
    "make_task",
    "train_dense",
    "train_moe",
    "dense_vs_sparse",
    "expert_count_sweep",
    "bpr_sweep",
    "router_comparison",
    "finetune_frozen_vs_tuned",
    "topk_capacity_ablation",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs trading fidelity for runtime."""

    train_samples: int = 8192
    test_samples: int = 4096
    steps: int = 500
    batch_size: int = 512
    lr: float = 5e-3
    num_clusters: int = 32
    input_dim: int = 16
    num_classes: int = 8
    model_dim: int = 32
    hidden_dim: int = 64
    num_blocks: int = 2
    noise: float = 0.5
    seed: int = 0


SMOKE = ExperimentScale(train_samples=1024, test_samples=512, steps=40,
                        batch_size=256, num_clusters=8)


@dataclass
class AccuracyResult:
    """One trained model's evaluation summary."""

    name: str
    eval_accuracy: float
    final_train_loss: float
    probe_accuracy: float | None = None
    params: int = 0
    history: TrainResult | None = None


def make_task(scale: ExperimentScale) -> ClusteredTokenTask:
    return ClusteredTokenTask(
        num_clusters=scale.num_clusters, input_dim=scale.input_dim,
        num_classes=scale.num_classes, noise=scale.noise,
        seed=scale.seed)


def _data(task: ClusteredTokenTask, scale: ExperimentScale):
    train = task.sample(scale.train_samples,
                        np.random.default_rng(scale.seed + 1))
    test = task.sample(scale.test_samples,
                       np.random.default_rng(scale.seed + 2))
    return train, test


def _probe(model, test, scale: ExperimentScale) -> float | None:
    try:
        probe_train, probe_test = few_shot_split(test, shots=5,
                                                 seed=scale.seed)
    except ValueError:
        return None
    return linear_probe_accuracy(model, probe_train, probe_test)


def train_dense(scale: ExperimentScale,
                task: ClusteredTokenTask | None = None) -> AccuracyResult:
    """The dense counterpart model (SwinV2-B analogue)."""
    task = task or make_task(scale)
    train, test = _data(task, scale)
    model = DenseClassifier(scale.input_dim, scale.model_dim,
                            scale.hidden_dim, scale.num_classes,
                            scale.num_blocks,
                            np.random.default_rng(scale.seed))
    result = train_model(model, train, test, steps=scale.steps,
                         batch_size=scale.batch_size, lr=scale.lr,
                         seed=scale.seed)
    return AccuracyResult(
        name="dense", eval_accuracy=result.eval_accuracy,
        final_train_loss=result.final_train_loss,
        probe_accuracy=_probe(model, test, scale),
        params=model.num_parameters(), history=result)


def train_moe(scale: ExperimentScale, num_experts: int | None = None,
              top_k: int = 1, capacity_factor: float = 1.25,
              router: str = "linear", batch_prioritized: bool = False,
              task: ClusteredTokenTask | None = None,
              infer_capacity_factor: float | None = None,
              return_model: bool = False):
    """Train one MoE classifier configuration and evaluate it.

    ``infer_capacity_factor`` re-evaluates at a different capacity
    (Table 12's separate train-f/infer-f protocol).
    """
    task = task or make_task(scale)
    num_experts = num_experts or scale.num_clusters
    train, test = _data(task, scale)
    model = MoEClassifier(
        scale.input_dim, scale.model_dim, scale.hidden_dim,
        scale.num_classes, scale.num_blocks, num_experts,
        np.random.default_rng(scale.seed), top_k=top_k,
        capacity_factor=capacity_factor, router=router,
        batch_prioritized=batch_prioritized)
    result = train_model(model, train, test, steps=scale.steps,
                         batch_size=scale.batch_size, lr=scale.lr,
                         seed=scale.seed)
    if infer_capacity_factor is not None:
        model.set_inference_capacity(infer_capacity_factor)
        result.eval_accuracy = evaluate(model, test)
    out = AccuracyResult(
        name=f"moe-E{num_experts}-k{top_k}",
        eval_accuracy=result.eval_accuracy,
        final_train_loss=result.final_train_loss,
        probe_accuracy=_probe(model, test, scale),
        params=model.num_parameters(), history=result)
    return (out, model, task, test) if return_model else out


def dense_vs_sparse(scale: ExperimentScale
                    ) -> tuple[AccuracyResult, AccuracyResult]:
    """Table 9's core comparison on one shared task."""
    task = make_task(scale)
    return train_dense(scale, task), train_moe(scale, task=task)


def expert_count_sweep(scale: ExperimentScale,
                       expert_counts: tuple[int, ...] = (8, 16, 32, 64,
                                                         128)
                       ) -> list[AccuracyResult]:
    """Table 11's expert-count ablation on one shared task."""
    task = make_task(scale)
    return [train_moe(scale, num_experts=e, task=task)
            for e in expert_counts]


def bpr_sweep(scale: ExperimentScale,
              infer_factors: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75,
                                                  1.0, 1.25)
              ) -> dict[str, list[tuple[float, float]]]:
    """Figure 25: accuracy vs inference capacity, with/without BPR.

    Both models are trained at f = 1.25 (the paper's protocol); only
    evaluation capacity varies.
    """
    task = make_task(scale)
    curves: dict[str, list[tuple[float, float]]] = {}
    for bpr in (False, True):
        _, model, _, test = train_moe(
            scale, capacity_factor=1.25, batch_prioritized=bpr,
            task=task, return_model=True)
        points = []
        for f in infer_factors:
            model.set_inference_capacity(f)
            for layer in model.moe_layers():
                layer.batch_prioritized = bpr
            points.append((f, evaluate(model, test)))
        curves["w/ BPR" if bpr else "w/o BPR"] = points
    return curves


def router_comparison(scale: ExperimentScale
                      ) -> dict[str, AccuracyResult]:
    """Table 13: linear vs cosine router (E = 32, k = 1, f = 1.25)."""
    task = make_task(scale)
    return {
        "linear": train_moe(scale, router="linear", task=task),
        "cosine": train_moe(scale, router="cosine", task=task),
    }


def finetune_frozen_vs_tuned(scale: ExperimentScale,
                             finetune_samples: int = 64,
                             finetune_steps: int = 200,
                             finetune_lr: float = 2e-3,
                             drift: float = 0.1) -> dict[str, float]:
    """Table 10: downstream fine-tuning, tuned vs frozen MoE layers.

    Pre-trains on the main task, then fine-tunes on a *small* drifted
    downstream task (most structure transfers, as with COCO after
    ImageNet) twice: once updating everything, once with the MoE
    layers frozen.  The paper's mechanism reproduces: with scarce
    fine-tuning data each expert receives only a handful of samples,
    so updating the MoE layers degrades what pre-training learned,
    while freezing them preserves it (-1.7 AP tuned vs +0.4 AP fixed
    in the paper).
    """
    task = make_task(scale)
    down = task.downstream(seed=scale.seed + 5, drift=drift)
    down_train = down.sample(finetune_samples,
                             np.random.default_rng(scale.seed + 6))
    down_test = down.sample(scale.test_samples,
                            np.random.default_rng(scale.seed + 7))
    batch = min(64, finetune_samples)

    results: dict[str, float] = {}
    for freeze in (False, True):
        _, model, _, _ = train_moe(scale, task=task, return_model=True)
        if freeze:
            model.freeze_moe()
        result = train_model(model, down_train, down_test,
                             steps=finetune_steps, batch_size=batch,
                             lr=finetune_lr, seed=scale.seed)
        results["fixed" if freeze else "tuned"] = result.eval_accuracy

    dense = DenseClassifier(scale.input_dim, scale.model_dim,
                            scale.hidden_dim, scale.num_classes,
                            scale.num_blocks,
                            np.random.default_rng(scale.seed))
    pre_train, pre_test = _data(task, scale)
    train_model(dense, pre_train, pre_test, steps=scale.steps,
                batch_size=scale.batch_size, lr=scale.lr,
                seed=scale.seed)
    result = train_model(dense, down_train, down_test,
                         steps=finetune_steps, batch_size=batch,
                         lr=finetune_lr, seed=scale.seed)
    results["dense"] = result.eval_accuracy
    return results


def topk_capacity_ablation(scale: ExperimentScale
                           ) -> list[dict[str, float]]:
    """Table 12: (k, train-f, infer-f) grid with accuracies."""
    task = make_task(scale)
    grid = [
        (1, 1.0, 1.25), (1, 1.0, 1.0), (1, 1.0, 0.625), (1, 1.0, 0.5),
        (2, 1.0, 1.25), (2, 1.0, 1.0), (2, 1.0, 0.625),
        (2, 0.625, 0.625),
    ]
    rows = []
    trained: dict[tuple[int, float], tuple] = {}
    for k, train_f, infer_f in grid:
        key = (k, train_f)
        if key not in trained:
            trained[key] = train_moe(scale, top_k=k,
                                     capacity_factor=train_f,
                                     task=task, return_model=True)
        _, model, _, test = trained[key]
        model.set_inference_capacity(infer_f)
        rows.append({
            "k": k, "train_f": train_f, "infer_f": infer_f,
            "accuracy": evaluate(model, test),
        })
    return rows
