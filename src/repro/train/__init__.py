"""Training substrate: synthetic tasks, loops, evaluation protocols."""

from repro.train.data import ClusteredTokenTask, TokenBatch, few_shot_split
from repro.train.experiments import (
    SMOKE,
    AccuracyResult,
    ExperimentScale,
    bpr_sweep,
    dense_vs_sparse,
    expert_count_sweep,
    finetune_frozen_vs_tuned,
    make_task,
    router_comparison,
    topk_capacity_ablation,
    train_dense,
    train_moe,
)
from repro.train.schedules import (
    ConstantSchedule,
    CosineSchedule,
    LinearSchedule,
    StepSchedule,
    apply_sparsity_schedules,
)
from repro.train.trainer import (
    TrainResult,
    evaluate,
    linear_probe_accuracy,
    train_model,
)

__all__ = [
    "SMOKE",
    "AccuracyResult",
    "ExperimentScale",
    "bpr_sweep",
    "dense_vs_sparse",
    "expert_count_sweep",
    "finetune_frozen_vs_tuned",
    "make_task",
    "router_comparison",
    "topk_capacity_ablation",
    "train_dense",
    "train_moe",
    "ClusteredTokenTask",
    "TokenBatch",
    "few_shot_split",
    "ConstantSchedule",
    "CosineSchedule",
    "LinearSchedule",
    "StepSchedule",
    "apply_sparsity_schedules",
    "TrainResult",
    "evaluate",
    "linear_probe_accuracy",
    "train_model",
]
