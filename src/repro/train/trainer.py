"""Training / evaluation loops for the accuracy experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import Callable

from repro.autograd.functional import cross_entropy
from repro.autograd.optim import Adam, clip_grad_norm
from repro.autograd.tensor import Tensor
from repro.nn.models import MoEClassifier
from repro.nn.modules import Module
from repro.obs import CAT_TRAIN, get_observer
from repro.obs import span as _span
from repro.train.data import TokenBatch
from repro.train.schedules import apply_sparsity_schedules

__all__ = [
    "TrainResult",
    "train_model",
    "evaluate",
    "linear_probe_accuracy",
]


@dataclass
class TrainResult:
    """Training history plus final evaluation metrics."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    eval_accuracy: float = 0.0
    final_train_loss: float = 0.0
    # Per-step needed capacity factor of every MoE layer (Figure 1).
    capacity_traces: dict[int, list[float]] = field(default_factory=dict)


def _accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return float((logits.argmax(axis=1) == labels).mean())


def evaluate(model: Module, batch: TokenBatch) -> float:
    """Top-1 accuracy on a batch (no gradient bookkeeping needed)."""
    logits, _ = model(Tensor(batch.x))
    return _accuracy(logits.data, batch.y)


def train_model(model: Module, train: TokenBatch, test: TokenBatch,
                steps: int = 300, batch_size: int = 256,
                lr: float = 3e-3, aux_weight: float = 0.01,
                weight_decay: float = 1e-4, grad_clip: float = 5.0,
                seed: int = 0,
                top_k_schedule: Callable[[int], float] | None = None,
                capacity_schedule: Callable[[int], float] | None = None
                ) -> TrainResult:
    """Train with Adam on cross-entropy + auxiliary load-balance loss.

    Records the runtime needed-capacity-factor trace of every MoE layer
    so the Figure 1 dynamic-workload plot comes from a *real* training
    run of the toy model.  ``top_k_schedule`` / ``capacity_schedule``
    realize the dynamic-sparsity feature of paper Section 4.1: the
    per-iteration ``k`` and ``f`` of every MoE layer follow the given
    schedules (see :mod:`repro.train.schedules`).
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = np.random.default_rng(seed)
    params = [p for p in model.parameters() if p.requires_grad]
    if not params:
        raise ValueError("model has no trainable parameters")
    optimizer = Adam(params, lr=lr, weight_decay=weight_decay)
    result = TrainResult()
    moe_layers = (model.moe_layers()
                  if isinstance(model, MoEClassifier) else [])
    for i in range(len(moe_layers)):
        result.capacity_traces[i] = []

    n = len(train)
    for step in range(steps):
        # Step boundary first so every instrumented MoE layer's
        # RoutingStats lands under the right step in the obs history.
        ob = get_observer()
        if ob is not None:
            ob.begin_step(step)
        with _span("step", CAT_TRAIN):
            if top_k_schedule is not None or capacity_schedule is not None:
                apply_sparsity_schedules(model, step,
                                         top_k=top_k_schedule,
                                         capacity_factor=capacity_schedule)
            idx = rng.integers(0, n, min(batch_size, n))
            xb, yb = train.x[idx], train.y[idx]
            with _span("forward", CAT_TRAIN):
                logits, l_aux = model(Tensor(xb))
                loss = cross_entropy(logits, yb) + l_aux * aux_weight
            with _span("backward", CAT_TRAIN):
                optimizer.zero_grad()
                loss.backward()
            with _span("optimizer", CAT_TRAIN):
                clip_grad_norm(params, grad_clip)
                optimizer.step()

        result.losses.append(float(loss.data))
        result.train_accuracies.append(_accuracy(logits.data, yb))
        if ob is not None:
            ob.count("train.steps")
            ob.gauge("train.loss", float(loss.data))
        for i, layer in enumerate(moe_layers):
            if layer.last_needed_capacity_factor is not None:
                result.capacity_traces[i].append(
                    layer.last_needed_capacity_factor)

    result.final_train_loss = float(np.mean(result.losses[-20:]))
    ob = get_observer()
    if ob is not None:
        # Mark the held-out forward so its routing records don't get
        # attributed to the last training step (step -1 = evaluation).
        ob.begin_step(-1)
    result.eval_accuracy = evaluate(model, test)
    return result


def linear_probe_accuracy(model: Module, probe_train: TokenBatch,
                          probe_test: TokenBatch,
                          l2: float = 1e-2) -> float:
    """Few-shot linear evaluation on frozen features.

    Fits a ridge-regression one-vs-all classifier on the penultimate
    features (closed form — no iterative training needed for a probe)
    and reports top-1 accuracy, mirroring the paper's 5-shot protocol.
    """
    feats_train = model.features(Tensor(probe_train.x)).data
    feats_test = model.features(Tensor(probe_test.x)).data
    classes = int(max(probe_train.y.max(), probe_test.y.max())) + 1
    targets = -np.ones((len(probe_train), classes))
    targets[np.arange(len(probe_train)), probe_train.y] = 1.0

    d = feats_train.shape[1]
    gram = feats_train.T @ feats_train + l2 * np.eye(d)
    weights = np.linalg.solve(gram, feats_train.T @ targets)
    scores = feats_test @ weights
    return _accuracy(scores, probe_test.y)
