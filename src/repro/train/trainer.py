"""Training / evaluation loops for the accuracy experiments.

Resilience features (see DESIGN.md "Resilience"):

* **Checkpoint/restore** — ``checkpoint_every``/``checkpoint_dir``
  periodically snapshot parameters, Adam state, RNG state and history
  via :mod:`repro.resilience.checkpoint`; ``resume_from`` continues a
  run *bit-identically* to the uninterrupted one.
* **Non-finite guard** — a NaN/Inf loss or gradient skips the step,
  restores the last-good parameters and optimizer moments, and records
  the event (``train.step_skipped``) instead of poisoning the run.
* **Graceful expert degradation** — ``step_hook`` lets a fault plan
  call :meth:`MoEClassifier.fail_expert` mid-run; gating renormalizes
  over the surviving experts and training continues.

Observability (see DESIGN.md "Run registry"):

* When ``REPRO_RUNS_DIR`` is set (and no run is already active) the
  trainer opens a run directory via :mod:`repro.obs.runs`, streams
  ``train_begin`` / ``step`` / ``routing`` / ``step_skipped`` /
  ``ckpt_saved`` / ``ckpt_restored`` / ``eval`` events into it, and
  finalizes it with a summary + metrics snapshot.
* A :class:`repro.obs.health.HealthMonitor` (a default one whenever a
  run is recording, or any instance passed via ``health=``) watches
  every layer's routing stats and the per-step loss / gradient norm;
  the alerts it raises land in ``TrainResult.health_alerts`` and the
  run's event stream.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from typing import Callable

from repro.autograd.functional import cross_entropy
from repro.autograd.optim import Adam, clip_grad_norm
from repro.autograd.tensor import Tensor
from repro.core.substrate import expert_parallelism
from repro.nn.models import MoEClassifier
from repro.nn.modules import Module
from repro.obs import CAT_FAULT, CAT_CKPT, CAT_TRAIN, get_observer
from repro.obs import span as _span
from repro.obs.alerts import (
    AlertEngine,
    default_rules,
    merge_worst,
    routing_samples,
)
from repro.obs.overhead import get_ledger
from repro.obs.runs import (
    RunWriter,
    add_stream_hook,
    env_runs_root,
    get_run,
    remove_stream_hook,
    set_run,
)
from repro.train.data import TokenBatch
from repro.train.schedules import apply_sparsity_schedules

__all__ = [
    "TrainResult",
    "train_model",
    "evaluate",
    "linear_probe_accuracy",
]


@dataclass
class TrainResult:
    """Training history plus final evaluation metrics."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    eval_accuracy: float = 0.0
    final_train_loss: float = 0.0
    final_train_accuracy: float = 0.0
    # Per-step needed capacity factor of every MoE layer (Figure 1).
    capacity_traces: dict[int, list[float]] = field(default_factory=dict)
    # Steps dropped by the non-finite guard (resilience path).
    skipped_steps: list[int] = field(default_factory=list)
    # Checkpoint files written by this run, in order.
    checkpoint_paths: list[str] = field(default_factory=list)
    # HealthAlerts raised by the online monitor, in step order.
    health_alerts: list = field(default_factory=list)
    # Run directory id when a run recorded this training, else None.
    run_id: str | None = None
    # Wall-clock seconds per step *executed by this call* (restored
    # history has no walls), keyed by step index; skipped steps count
    # too.  The scenario engine's step-time SLOs read these.
    step_walls: dict[int, float] = field(default_factory=dict)


def _accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return float((logits.argmax(axis=1) == labels).mean())


def evaluate(model: Module, batch: TokenBatch) -> float:
    """Top-1 accuracy on a batch (no gradient bookkeeping needed)."""
    logits, _ = model(Tensor(batch.x))
    return _accuracy(logits.data, batch.y)


def _grads_finite(params: list[Tensor]) -> bool:
    for p in params:
        if p.grad is not None and not np.isfinite(p.grad).all():
            return False
    return True


def train_model(model: Module, train: TokenBatch, test: TokenBatch,
                steps: int = 300, batch_size: int = 256,
                lr: float = 3e-3, aux_weight: float = 0.01,
                weight_decay: float = 1e-4, grad_clip: float = 5.0,
                seed: int = 0,
                top_k_schedule: Callable[[int], float] | None = None,
                capacity_schedule: Callable[[int], float] | None = None,
                checkpoint_every: int | None = None,
                checkpoint_dir: str | None = None,
                resume_from: str | None = None,
                nonfinite_guard: bool = True,
                step_hook: Callable[[int, Module], None] | None = None,
                health=None,
                expert_workers: int | None = None
                ) -> TrainResult:
    """Train with Adam on cross-entropy + auxiliary load-balance loss.

    Records the runtime needed-capacity-factor trace of every MoE layer
    so the Figure 1 dynamic-workload plot comes from a *real* training
    run of the toy model.  ``top_k_schedule`` / ``capacity_schedule``
    realize the dynamic-sparsity feature of paper Section 4.1: the
    per-iteration ``k`` and ``f`` of every MoE layer follow the given
    schedules (see :mod:`repro.train.schedules`).

    ``checkpoint_every`` writes a checkpoint to ``checkpoint_dir``
    every N completed steps; ``resume_from`` restores one and continues
    bit-identically (the model must be constructed from the same seed).
    ``step_hook(step, model)`` runs before each step — the chaos
    scenario uses it to fail an expert mid-run.  ``nonfinite_guard``
    skips NaN/Inf steps and rolls parameters back to the last good
    state instead of letting the divergence propagate.

    ``health`` is an optional
    :class:`repro.obs.health.HealthMonitor`; with a run recording (an
    active run, or ``REPRO_RUNS_DIR`` set) a default monitor is created
    when none is passed.  Its alerts accumulate in
    ``TrainResult.health_alerts``.

    ``expert_workers`` (when not ``None``) runs the whole loop under
    :func:`repro.core.substrate.expert_parallelism` — every MoE layer's
    expert FFN executes on that many worker processes (0 = serial,
    overriding an inherited ``REPRO_EXPERT_WORKERS``).  Worth it only
    when the per-expert GEMMs are large enough to amortize the
    shared-memory round trip; results are bitwise-identical either way.
    """
    auto_run = None
    if get_run() is None and env_runs_root() is not None:
        auto_run = RunWriter.create(
            seed=seed,
            config={"kind": "train", "steps": steps,
                    "batch_size": batch_size, "lr": lr,
                    "aux_weight": aux_weight, "grad_clip": grad_clip,
                    "resumed": resume_from is not None},
            substrate="functional")
        set_run(auto_run)
    workers_ctx = (nullcontext() if expert_workers is None
                   else expert_parallelism(expert_workers))
    # Declarative alert rules are evaluated once per completed step
    # whenever a run records this training: fired transitions land in
    # the event stream (the live plane tails them) and in the
    # ALERTS{...} gauge family.  The stream hook keeps the engine's
    # outstanding-fault count in sync with fault/recovery events
    # emitted by whoever owns the run (e.g. the chaos scenarios).
    alerts = AlertEngine(default_rules()) if get_run() is not None else None
    if alerts is not None:
        add_stream_hook(alerts.stream_hook)
    try:
        with workers_ctx:
            result = _train_loop(
                model, train, test, steps=steps, batch_size=batch_size,
                lr=lr, aux_weight=aux_weight, weight_decay=weight_decay,
                grad_clip=grad_clip, seed=seed,
                top_k_schedule=top_k_schedule,
                capacity_schedule=capacity_schedule,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir, resume_from=resume_from,
                nonfinite_guard=nonfinite_guard, step_hook=step_hook,
                health=health, alerts=alerts)
        summary = {
            "steps": steps,
            "final_train_loss": result.final_train_loss,
            "final_train_accuracy": result.final_train_accuracy,
            "eval_accuracy": result.eval_accuracy,
            "skipped_steps": len(result.skipped_steps),
            "alerts": len(result.health_alerts),
        }
        if auto_run is not None:
            ob = get_observer()
            auto_run.finalize(
                registry_snapshot=(ob.registry.snapshot()
                                   if ob is not None else None),
                summary=summary)
        else:
            run = get_run()
            if run is not None:
                # Someone else owns the run (and will finalize it);
                # contribute the training summary without completing.
                run.update_summary(summary)
        return result
    finally:
        if alerts is not None:
            remove_stream_hook(alerts.stream_hook)
        if auto_run is not None:
            auto_run.close()
            set_run(None)


def _train_loop(model: Module, train: TokenBatch, test: TokenBatch, *,
                steps: int, batch_size: int, lr: float,
                aux_weight: float, weight_decay: float,
                grad_clip: float, seed: int,
                top_k_schedule: Callable[[int], float] | None,
                capacity_schedule: Callable[[int], float] | None,
                checkpoint_every: int | None,
                checkpoint_dir: str | None, resume_from: str | None,
                nonfinite_guard: bool,
                step_hook: Callable[[int, Module], None] | None,
                health, alerts=None) -> TrainResult:
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
    from repro.resilience.checkpoint import (
        capture_training_state,
        load_checkpoint,
        restore_training_state,
        save_checkpoint,
    )
    rng = np.random.default_rng(seed)
    params = [p for p in model.parameters() if p.requires_grad]
    if not params:
        raise ValueError("model has no trainable parameters")
    optimizer = Adam(params, lr=lr, weight_decay=weight_decay)
    result = TrainResult()
    moe_layers = (model.moe_layers()
                  if isinstance(model, MoEClassifier) else [])
    for i in range(len(moe_layers)):
        result.capacity_traces[i] = []

    run = get_run()
    routing_rec = None
    if run is not None:
        result.run_id = run.manifest.run_id
        if health is None:
            from repro.obs.health import HealthMonitor
            health = HealthMonitor()

    start_step = 0
    if resume_from is not None:
        ckpt = load_checkpoint(resume_from)
        if ckpt.step >= steps:
            raise ValueError(
                f"checkpoint is at step {ckpt.step}, nothing left of "
                f"the requested {steps} steps")
        restore_training_state(model, optimizer, rng, ckpt)
        start_step = ckpt.step
        result.losses = list(ckpt.losses)
        result.train_accuracies = list(ckpt.train_accuracies)
        result.skipped_steps = list(ckpt.skipped_steps)
        for i, trace in ckpt.capacity_traces.items():
            result.capacity_traces[i] = list(trace)
        if run is not None:
            run.emit("ckpt_restored", step=start_step,
                     data={"step": start_step, "path": resume_from})

    def snapshot():
        return ([p.data.copy() for p in params],
                [m.copy() for m in optimizer._m],
                [v.copy() for v in optimizer._v],
                optimizer._step)

    def rollback(snap) -> None:
        datas, ms, vs, opt_step = snap
        for p, data in zip(params, datas):
            np.copyto(p.data, data)
            p.grad = None
        for slot, m in zip(optimizer._m, ms):
            np.copyto(slot, m)
        for slot, v in zip(optimizer._v, vs):
            np.copyto(slot, v)
        optimizer._step = opt_step

    last_good = snapshot() if nonfinite_guard else None

    if run is not None:
        run.emit("train_begin", step=start_step,
                 data={"steps": steps, "start_step": start_step,
                       "seed": seed})

    n = len(train)
    for step in range(start_step, steps):
        # Step boundary first so every instrumented MoE layer's
        # RoutingStats lands under the right step in the obs history.
        ob = get_observer()
        if ob is not None:
            ob.begin_step(step)
        if run is not None:
            run.begin_step(step)
        wall_start = perf_counter()
        if step_hook is not None:
            step_hook(step, model)
        with _span("step", CAT_TRAIN):
            if top_k_schedule is not None or capacity_schedule is not None:
                apply_sparsity_schedules(model, step,
                                         top_k=top_k_schedule,
                                         capacity_factor=capacity_schedule)
            idx = rng.integers(0, n, min(batch_size, n))
            xb, yb = train.x[idx], train.y[idx]
            with _span("forward", CAT_TRAIN):
                logits, l_aux = model(Tensor(xb))
                loss = cross_entropy(logits, yb) + l_aux * aux_weight
            bad = nonfinite_guard and not np.isfinite(loss.data).all()
            if not bad:
                with _span("backward", CAT_TRAIN):
                    optimizer.zero_grad()
                    loss.backward()
                bad = nonfinite_guard and not _grads_finite(params)
            if bad:
                # Non-finite guard: drop the step and roll back to the
                # last finite state so the divergence cannot compound.
                rollback(last_good)
                result.skipped_steps.append(step)
                if ob is not None:
                    ob.instant("step_skipped", CAT_TRAIN,
                               args={"step": step})
                    ob.instant("recovered", CAT_FAULT, args={
                        "kind": "nonfinite_step", "step": step})
                if run is not None:
                    run.emit("step_skipped", data={"step": step})
                result.step_walls[step] = perf_counter() - wall_start
                led = get_ledger()
                if led is not None:
                    led.observe_step(
                        round(result.step_walls[step] * 1e9))
                continue
            with _span("optimizer", CAT_TRAIN):
                gnorm = clip_grad_norm(params, grad_clip)
                optimizer.step()

        result.step_walls[step] = perf_counter() - wall_start
        loss_val = float(loss.data)
        acc = _accuracy(logits.data, yb)
        result.losses.append(loss_val)
        result.train_accuracies.append(acc)
        if nonfinite_guard:
            last_good = snapshot()
        if ob is not None:
            ob.count("train.steps")
            ob.gauge("train.loss", loss_val)
        if run is not None:
            run.emit("step", data={"loss": loss_val, "accuracy": acc,
                                   "grad_norm": gnorm})
        for i, layer in enumerate(moe_layers):
            if layer.last_needed_capacity_factor is not None:
                result.capacity_traces[i].append(
                    layer.last_needed_capacity_factor)
            stats = layer.last_routing_stats
            if stats is None:
                continue
            if run is not None:
                run.emit("routing", data={
                    "layer": i,
                    "entropy": stats.routing_entropy,
                    "gini": stats.load_gini,
                    "dropped_fraction": stats.dropped_fraction,
                    "needed_capacity_factor":
                        stats.needed_capacity_factor,
                    "expert_load": list(stats.expert_load)})
            if health is not None:
                result.health_alerts.extend(
                    health.observe_routing(step, i, stats))
        if health is not None:
            result.health_alerts.extend(
                health.observe_step(step, loss=loss_val,
                                    grad_norm=gnorm))
        if run is not None and moe_layers:
            crits = [layer.last_routing_criteria
                     for layer in moe_layers]
            if all(c is not None for c in crits):
                if routing_rec is None:
                    from repro.obs.routing import RoutingRecorder
                    routing_rec = RoutingRecorder(
                        len(moe_layers), crits[0].num_experts)
                routing_rec.observe_batch(crits)
                routing_rec.emit(run, step=step)
        if alerts is not None:
            samples = {"train.loss": loss_val,
                       "train.grad_norm": float(gnorm)}
            for layer in moe_layers:
                stats = layer.last_routing_stats
                if stats is not None:
                    merge_worst(samples, routing_samples(
                        stats.routing_entropy, stats.dropped_fraction,
                        stats.expert_load))
            alerts.evaluate(step, samples, run=run,
                            registry=(ob.registry if ob is not None
                                      else None))
        led = get_ledger()
        if led is not None:
            led.observe_step(
                round(result.step_walls[step] * 1e9))

        completed = step + 1
        if (checkpoint_every is not None
                and completed % checkpoint_every == 0):
            os.makedirs(checkpoint_dir, exist_ok=True)
            path = os.path.join(checkpoint_dir,
                                f"ckpt_{completed:06d}.npz")
            save_checkpoint(
                capture_training_state(model, optimizer, rng,
                                       completed, result=result), path)
            result.checkpoint_paths.append(path)
            if ob is not None:
                ob.instant("saved", CAT_CKPT,
                           args={"step": completed, "path": path})
            if run is not None:
                run.emit("ckpt_saved", step=completed,
                         data={"step": completed, "path": path})

    # Window-averaged final metrics: clamp the window when fewer than
    # 20 steps contributed (short runs, or steps lost to the guard) so
    # the mean never runs over an empty slice.
    if result.losses:
        window = min(20, len(result.losses))
        result.final_train_loss = float(
            np.mean(result.losses[-window:]))
    if result.train_accuracies:
        window = min(20, len(result.train_accuracies))
        result.final_train_accuracy = float(
            np.mean(result.train_accuracies[-window:]))
    ob = get_observer()
    if ob is not None:
        # Mark the held-out forward so its routing records don't get
        # attributed to the last training step (step -1 = evaluation).
        ob.begin_step(-1)
    if run is not None:
        run.begin_step(-1)
    result.eval_accuracy = evaluate(model, test)
    if run is not None:
        run.emit("eval", step=-1,
                 data={"accuracy": result.eval_accuracy})
    return result


def linear_probe_accuracy(model: Module, probe_train: TokenBatch,
                          probe_test: TokenBatch,
                          l2: float = 1e-2) -> float:
    """Few-shot linear evaluation on frozen features.

    Fits a ridge-regression one-vs-all classifier on the penultimate
    features (closed form — no iterative training needed for a probe)
    and reports top-1 accuracy, mirroring the paper's 5-shot protocol.
    """
    feats_train = model.features(Tensor(probe_train.x)).data
    feats_test = model.features(Tensor(probe_test.x)).data
    classes = int(max(probe_train.y.max(), probe_test.y.max())) + 1
    targets = -np.ones((len(probe_train), classes))
    targets[np.arange(len(probe_train)), probe_train.y] = 1.0

    d = feats_train.shape[1]
    gram = feats_train.T @ feats_train + l2 * np.eye(d)
    weights = np.linalg.solve(gram, feats_train.T @ targets)
    scores = feats_test @ weights
    return _accuracy(scores, probe_test.y)
