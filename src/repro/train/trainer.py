"""Training / evaluation loops for the accuracy experiments.

Resilience features (see DESIGN.md "Resilience"):

* **Checkpoint/restore** — ``checkpoint_every``/``checkpoint_dir``
  periodically snapshot parameters, Adam state, RNG state and history
  via :mod:`repro.resilience.checkpoint`; ``resume_from`` continues a
  run *bit-identically* to the uninterrupted one.
* **Non-finite guard** — a NaN/Inf loss or gradient skips the step,
  restores the last-good parameters and optimizer moments, and records
  the event (``train.step_skipped``) instead of poisoning the run.
* **Graceful expert degradation** — ``step_hook`` lets a fault plan
  call :meth:`MoEClassifier.fail_expert` mid-run; gating renormalizes
  over the surviving experts and training continues.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from typing import Callable

from repro.autograd.functional import cross_entropy
from repro.autograd.optim import Adam, clip_grad_norm
from repro.autograd.tensor import Tensor
from repro.nn.models import MoEClassifier
from repro.nn.modules import Module
from repro.obs import CAT_FAULT, CAT_CKPT, CAT_TRAIN, get_observer
from repro.obs import span as _span
from repro.train.data import TokenBatch
from repro.train.schedules import apply_sparsity_schedules

__all__ = [
    "TrainResult",
    "train_model",
    "evaluate",
    "linear_probe_accuracy",
]


@dataclass
class TrainResult:
    """Training history plus final evaluation metrics."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    eval_accuracy: float = 0.0
    final_train_loss: float = 0.0
    final_train_accuracy: float = 0.0
    # Per-step needed capacity factor of every MoE layer (Figure 1).
    capacity_traces: dict[int, list[float]] = field(default_factory=dict)
    # Steps dropped by the non-finite guard (resilience path).
    skipped_steps: list[int] = field(default_factory=list)
    # Checkpoint files written by this run, in order.
    checkpoint_paths: list[str] = field(default_factory=list)


def _accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return float((logits.argmax(axis=1) == labels).mean())


def evaluate(model: Module, batch: TokenBatch) -> float:
    """Top-1 accuracy on a batch (no gradient bookkeeping needed)."""
    logits, _ = model(Tensor(batch.x))
    return _accuracy(logits.data, batch.y)


def _grads_finite(params: list[Tensor]) -> bool:
    for p in params:
        if p.grad is not None and not np.isfinite(p.grad).all():
            return False
    return True


def train_model(model: Module, train: TokenBatch, test: TokenBatch,
                steps: int = 300, batch_size: int = 256,
                lr: float = 3e-3, aux_weight: float = 0.01,
                weight_decay: float = 1e-4, grad_clip: float = 5.0,
                seed: int = 0,
                top_k_schedule: Callable[[int], float] | None = None,
                capacity_schedule: Callable[[int], float] | None = None,
                checkpoint_every: int | None = None,
                checkpoint_dir: str | None = None,
                resume_from: str | None = None,
                nonfinite_guard: bool = True,
                step_hook: Callable[[int, Module], None] | None = None
                ) -> TrainResult:
    """Train with Adam on cross-entropy + auxiliary load-balance loss.

    Records the runtime needed-capacity-factor trace of every MoE layer
    so the Figure 1 dynamic-workload plot comes from a *real* training
    run of the toy model.  ``top_k_schedule`` / ``capacity_schedule``
    realize the dynamic-sparsity feature of paper Section 4.1: the
    per-iteration ``k`` and ``f`` of every MoE layer follow the given
    schedules (see :mod:`repro.train.schedules`).

    ``checkpoint_every`` writes a checkpoint to ``checkpoint_dir``
    every N completed steps; ``resume_from`` restores one and continues
    bit-identically (the model must be constructed from the same seed).
    ``step_hook(step, model)`` runs before each step — the chaos
    scenario uses it to fail an expert mid-run.  ``nonfinite_guard``
    skips NaN/Inf steps and rolls parameters back to the last good
    state instead of letting the divergence propagate.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
    from repro.resilience.checkpoint import (
        capture_training_state,
        load_checkpoint,
        restore_training_state,
        save_checkpoint,
    )
    rng = np.random.default_rng(seed)
    params = [p for p in model.parameters() if p.requires_grad]
    if not params:
        raise ValueError("model has no trainable parameters")
    optimizer = Adam(params, lr=lr, weight_decay=weight_decay)
    result = TrainResult()
    moe_layers = (model.moe_layers()
                  if isinstance(model, MoEClassifier) else [])
    for i in range(len(moe_layers)):
        result.capacity_traces[i] = []

    start_step = 0
    if resume_from is not None:
        ckpt = load_checkpoint(resume_from)
        if ckpt.step >= steps:
            raise ValueError(
                f"checkpoint is at step {ckpt.step}, nothing left of "
                f"the requested {steps} steps")
        restore_training_state(model, optimizer, rng, ckpt)
        start_step = ckpt.step
        result.losses = list(ckpt.losses)
        result.train_accuracies = list(ckpt.train_accuracies)
        result.skipped_steps = list(ckpt.skipped_steps)
        for i, trace in ckpt.capacity_traces.items():
            result.capacity_traces[i] = list(trace)

    def snapshot():
        return ([p.data.copy() for p in params],
                [m.copy() for m in optimizer._m],
                [v.copy() for v in optimizer._v],
                optimizer._step)

    def rollback(snap) -> None:
        datas, ms, vs, opt_step = snap
        for p, data in zip(params, datas):
            np.copyto(p.data, data)
            p.grad = None
        for slot, m in zip(optimizer._m, ms):
            np.copyto(slot, m)
        for slot, v in zip(optimizer._v, vs):
            np.copyto(slot, v)
        optimizer._step = opt_step

    last_good = snapshot() if nonfinite_guard else None

    n = len(train)
    for step in range(start_step, steps):
        # Step boundary first so every instrumented MoE layer's
        # RoutingStats lands under the right step in the obs history.
        ob = get_observer()
        if ob is not None:
            ob.begin_step(step)
        if step_hook is not None:
            step_hook(step, model)
        with _span("step", CAT_TRAIN):
            if top_k_schedule is not None or capacity_schedule is not None:
                apply_sparsity_schedules(model, step,
                                         top_k=top_k_schedule,
                                         capacity_factor=capacity_schedule)
            idx = rng.integers(0, n, min(batch_size, n))
            xb, yb = train.x[idx], train.y[idx]
            with _span("forward", CAT_TRAIN):
                logits, l_aux = model(Tensor(xb))
                loss = cross_entropy(logits, yb) + l_aux * aux_weight
            bad = nonfinite_guard and not np.isfinite(loss.data).all()
            if not bad:
                with _span("backward", CAT_TRAIN):
                    optimizer.zero_grad()
                    loss.backward()
                bad = nonfinite_guard and not _grads_finite(params)
            if bad:
                # Non-finite guard: drop the step and roll back to the
                # last finite state so the divergence cannot compound.
                rollback(last_good)
                result.skipped_steps.append(step)
                if ob is not None:
                    ob.instant("step_skipped", CAT_TRAIN,
                               args={"step": step})
                    ob.instant("recovered", CAT_FAULT, args={
                        "kind": "nonfinite_step", "step": step})
                continue
            with _span("optimizer", CAT_TRAIN):
                clip_grad_norm(params, grad_clip)
                optimizer.step()

        result.losses.append(float(loss.data))
        result.train_accuracies.append(_accuracy(logits.data, yb))
        if nonfinite_guard:
            last_good = snapshot()
        if ob is not None:
            ob.count("train.steps")
            ob.gauge("train.loss", float(loss.data))
        for i, layer in enumerate(moe_layers):
            if layer.last_needed_capacity_factor is not None:
                result.capacity_traces[i].append(
                    layer.last_needed_capacity_factor)

        completed = step + 1
        if (checkpoint_every is not None
                and completed % checkpoint_every == 0):
            os.makedirs(checkpoint_dir, exist_ok=True)
            path = os.path.join(checkpoint_dir,
                                f"ckpt_{completed:06d}.npz")
            save_checkpoint(
                capture_training_state(model, optimizer, rng,
                                       completed, result=result), path)
            result.checkpoint_paths.append(path)
            if ob is not None:
                ob.instant("saved", CAT_CKPT,
                           args={"step": completed, "path": path})

    # Window-averaged final metrics: clamp the window when fewer than
    # 20 steps contributed (short runs, or steps lost to the guard) so
    # the mean never runs over an empty slice.
    if result.losses:
        window = min(20, len(result.losses))
        result.final_train_loss = float(
            np.mean(result.losses[-window:]))
    if result.train_accuracies:
        window = min(20, len(result.train_accuracies))
        result.final_train_accuracy = float(
            np.mean(result.train_accuracies[-window:]))
    ob = get_observer()
    if ob is not None:
        # Mark the held-out forward so its routing records don't get
        # attributed to the last training step (step -1 = evaluation).
        ob.begin_step(-1)
    result.eval_accuracy = evaluate(model, test)
    return result


def linear_probe_accuracy(model: Module, probe_train: TokenBatch,
                          probe_test: TokenBatch,
                          l2: float = 1e-2) -> float:
    """Few-shot linear evaluation on frozen features.

    Fits a ridge-regression one-vs-all classifier on the penultimate
    features (closed form — no iterative training needed for a probe)
    and reports top-1 accuracy, mirroring the paper's 5-shot protocol.
    """
    feats_train = model.features(Tensor(probe_train.x)).data
    feats_test = model.features(Tensor(probe_test.x)).data
    classes = int(max(probe_train.y.max(), probe_test.y.max())) + 1
    targets = -np.ones((len(probe_train), classes))
    targets[np.arange(len(probe_train)), probe_train.y] = 1.0

    d = feats_train.shape[1]
    gram = feats_train.T @ feats_train + l2 * np.eye(d)
    weights = np.linalg.solve(gram, feats_train.T @ targets)
    scores = feats_test @ weights
    return _accuracy(scores, probe_test.y)
