"""repro — reproduction of "Tutel: Adaptive Mixture-of-Experts at Scale".

The package splits into a *functional substrate* that really computes
(NumPy MoE layers, a small autograd engine, trainable models) and a
*performance substrate* that models a GPU cluster (topology, cost
models, a discrete-event simulator) so the paper's scaling experiments
can be regenerated without 2,048 A100s.

Quickstart::

    import numpy as np
    from repro.moe import MoELayerParams, moe_layer_forward

    rng = np.random.default_rng(0)
    params = MoELayerParams.init(num_experts=8, model_dim=64,
                                 hidden_dim=256, rng=rng)
    x = rng.normal(size=(128, 64))
    out = moe_layer_forward(x, params)
    print(out.output.shape, out.l_aux)
"""

from repro.core.config import MoEConfig

__version__ = "0.1.0"

__all__ = ["MoEConfig", "__version__"]
