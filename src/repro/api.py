"""Paper-faithful user API (Figure 8 of the paper).

The paper's example custom MoE layer reads::

    from tutel import moe
    from tutel import net

    def custom_moe(x, top_k=2):
        scores = softmax(CustomGate(x), dim=1)
        crit, l_aux = moe.top_k_routing(scores, top_k)
        y = moe.fast_encode(x, crit)
        y = net.flex_all2all(y, 1, 0)
        y = CustomExpert(y)
        y = net.flex_all2all(y, 0, 1)
        output = moe.fast_decode(y, crit)
        return output, l_aux

This module provides the same surface over the verified internals so
the paper's snippet runs almost verbatim (``from repro.api import moe,
net``).  ``net.flex_all2all`` operates on the per-rank *world list*
the simulated ranks use; on one rank it degenerates to an identity
layout change.
"""

from __future__ import annotations

import types

import numpy as np

from repro.collectives.functional import flexible_all_to_all
from repro.moe.capacity import CapacityPolicy, resolve_capacity
from repro.moe.encode import fast_decode as _fast_decode
from repro.moe.encode import fast_encode as _fast_encode
from repro.moe.gating import (
    RoutingCriteria,
    load_balance_loss,
    softmax,
    top_k_routing as _top_k_routing,
)

__all__ = ["moe", "net"]


def _api_top_k_routing(scores: np.ndarray, top_k: int = 2,
                       capacity_factor: float = 1.0,
                       normalize_gate: bool = True,
                       batch_prioritized: bool = False
                       ) -> tuple[RoutingCriteria, float]:
    """``moe.top_k_routing(scores, top_k) -> (crit, l_aux)``.

    ``scores`` are post-softmax routing probabilities ``(T, E)``; the
    capacity follows the Figure 16 semantics of ``capacity_factor``.
    """
    t, e = scores.shape
    idxs_probe = np.argsort(-scores, axis=1, kind="stable")[:, :top_k].T
    cap, _ = resolve_capacity(CapacityPolicy(capacity_factor),
                              idxs_probe, e, tokens=t, top_k=top_k)
    crit = _top_k_routing(scores, top_k, cap,
                          normalize_gate=normalize_gate,
                          batch_prioritized=batch_prioritized)
    return crit, load_balance_loss(scores, crit.idxs)


def _api_flex_all2all(y, concat_dim: int, split_dim: int):
    """``net.flex_all2all(y, concat, split)`` over a world list.

    Accepts either a list of per-rank arrays (simulated multi-rank) or
    a single array (single-rank world, wrapped transparently).
    """
    if isinstance(y, np.ndarray):
        return flexible_all_to_all([y], concat_dim, split_dim)[0]
    return flexible_all_to_all(list(y), concat_dim, split_dim)


moe = types.SimpleNamespace(
    softmax=softmax,
    top_k_routing=_api_top_k_routing,
    fast_encode=_fast_encode,
    fast_decode=_fast_decode,
)

net = types.SimpleNamespace(
    flex_all2all=_api_flex_all2all,
)
