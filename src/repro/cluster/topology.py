"""Cluster topology model: nodes, GPUs, NVLink and InfiniBand fabrics.

The evaluation testbed of the paper is Azure Standard_ND96amsr_A100_v4:
8x A100 SXM 80GB per VM connected by 3rd-gen NVLink/NVSwitch, and one
200 Gb/s HDR InfiniBand NIC per GPU into a non-blocking, rail-optimized
fabric.  :func:`ndv4_topology` builds that configuration; everything is
a parameter so other machines (e.g. the 256-GPU NVSwitch extension of
Section 4.3) can be modelled too.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkSpec",
    "GpuSpec",
    "ClusterTopology",
    "ndv4_topology",
    "nvswitch256_topology",
]


@dataclass(frozen=True)
class LinkSpec:
    """An alpha-beta communication channel with per-message overhead.

    Attributes
    ----------
    bandwidth:
        Peak unidirectional bandwidth in bytes/second available to one
        GPU over this fabric.
    latency:
        Base one-way latency ``alpha`` in seconds (wire + switch).
    message_overhead:
        Fixed per-message cost in seconds (kernel launch, proxy thread,
        rendezvous).  This term is what makes many small messages slow
        and produces the under-utilization of paper Figure 6.
    """

    bandwidth: float
    latency: float
    message_overhead: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.latency < 0 or self.message_overhead < 0:
            raise ValueError("latency and message_overhead must be >= 0")

    def message_time(self, nbytes: float) -> float:
        """Time to push one ``nbytes`` message through this channel."""
        if nbytes < 0:
            raise ValueError(f"message size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.message_overhead + self.latency + nbytes / self.bandwidth

    def stream_time(self, nbytes: float, num_messages: int) -> float:
        """Time for one GPU to serialize ``num_messages`` equal messages.

        The channel pays the base latency once (messages are pipelined)
        but the per-message overhead for every message.
        """
        if num_messages < 0:
            raise ValueError(f"num_messages must be >= 0, got {num_messages}")
        if num_messages == 0 or nbytes == 0:
            return 0.0
        return (self.latency + num_messages * self.message_overhead
                + num_messages * nbytes / self.bandwidth)

    def effective_bandwidth(self, nbytes: float) -> float:
        """Achieved bandwidth for a single message of ``nbytes``."""
        if nbytes <= 0:
            raise ValueError(f"message size must be > 0, got {nbytes}")
        return nbytes / self.message_time(nbytes)


@dataclass(frozen=True)
class GpuSpec:
    """Compute capabilities of one GPU.

    Attributes
    ----------
    peak_flops:
        Peak dense-math throughput in FLOP/s at the working precision.
    memory_bandwidth:
        HBM bandwidth in bytes/second (drives stride-copy costs).
    memory_bytes:
        Device memory capacity in bytes.
    kernel_launch_overhead:
        Fixed per-kernel launch cost in seconds.
    """

    peak_flops: float = 312e12        # A100 FP16 tensor core peak
    memory_bandwidth: float = 1.6e12  # sustainable HBM2e bandwidth
    memory_bytes: float = 80 * 1024 ** 3
    kernel_launch_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if min(self.peak_flops, self.memory_bandwidth, self.memory_bytes) <= 0:
            raise ValueError("GPU capability values must be > 0")
        if self.kernel_launch_overhead < 0:
            raise ValueError("kernel_launch_overhead must be >= 0")


@dataclass(frozen=True)
class ClusterTopology:
    """A two-level GPU cluster: fast intra-node links, slower inter-node.

    Attributes
    ----------
    num_gpus:
        Total world size ``n``.
    gpus_per_node:
        Local group size ``m`` (8 on NDv4; 256 with next-gen NVSwitch).
    gpu:
        Per-GPU compute model.
    intra_link:
        NVLink/NVSwitch channel model per GPU.
    inter_link:
        InfiniBand channel model per GPU (one NIC per GPU on NDv4).
    rail_optimized:
        Whether the inter-node fabric is rail-optimized — local rank
        ``i`` of every node shares a rail.  2DH naturally keeps traffic
        on-rail (paper Section 3.4).
    """

    num_gpus: int
    gpus_per_node: int
    gpu: GpuSpec
    intra_link: LinkSpec
    inter_link: LinkSpec
    rail_optimized: bool = True

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}")

    @property
    def num_nodes(self) -> int:
        return max(1, -(-self.num_gpus // self.gpus_per_node))

    @property
    def local_size(self) -> int:
        """Effective intra-node group size (min of m and world size)."""
        return min(self.gpus_per_node, self.num_gpus)

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_rank_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def link_between(self, a: int, b: int) -> LinkSpec:
        """Channel model for traffic between ranks ``a`` and ``b``."""
        return self.intra_link if self.same_node(a, b) else self.inter_link

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_gpus:
            raise ValueError(
                f"rank {rank} out of range for {self.num_gpus} GPUs")

    def with_num_gpus(self, num_gpus: int) -> "ClusterTopology":
        """Same hardware, different world size (for scaling sweeps)."""
        from dataclasses import replace
        return replace(self, num_gpus=num_gpus)

    def with_infinite_bandwidth(self) -> "ClusterTopology":
        """Both fabrics with unbounded bandwidth, per-message costs kept.

        The counterfactual behind the what-if analysis
        (:mod:`repro.obs.analysis`): collective time collapses to its
        alpha/overhead floor, so any remaining makespan gap is latency-
        or compute-bound and no bandwidth upgrade can recover it.
        """
        from dataclasses import replace
        import math
        unbounded = [LinkSpec(bandwidth=math.inf, latency=link.latency,
                              message_overhead=link.message_overhead)
                     for link in (self.intra_link, self.inter_link)]
        return replace(self, intra_link=unbounded[0],
                       inter_link=unbounded[1])

    def with_gpu(self, gpu: GpuSpec) -> "ClusterTopology":
        """Same fabric, different per-GPU compute model (calibration)."""
        from dataclasses import replace
        return replace(self, gpu=gpu)

    def with_links(self, intra: LinkSpec,
                   inter: LinkSpec | None = None) -> "ClusterTopology":
        """Replace the channel models (calibration fit results).

        With ``inter`` omitted the intra spec is used for both fabrics —
        the single-machine calibration harness cannot distinguish them.
        """
        from dataclasses import replace
        return replace(self, intra_link=intra,
                       inter_link=inter if inter is not None else intra)

    def with_degraded_inter_link(self, factor: float) -> "ClusterTopology":
        """Inter-node fabric derated to ``factor`` of nominal bandwidth.

        Models a degraded link (cable re-train, congested rail) for the
        resilience path: bandwidth shrinks while per-message costs stay
        — exactly the regime where algorithm re-selection matters.
        """
        from dataclasses import replace
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        degraded = LinkSpec(
            bandwidth=self.inter_link.bandwidth * factor,
            latency=self.inter_link.latency,
            message_overhead=self.inter_link.message_overhead,
        )
        return replace(self, inter_link=degraded)


def ndv4_topology(num_gpus: int, gpus_per_node: int = 8) -> ClusterTopology:
    """The Azure NDv4 testbed used throughout the paper's evaluation.

    Calibration notes: NVLink3 gives each A100 about 300 GB/s of
    all-to-all bandwidth through NVSwitch; each GPU owns a 200 Gb/s HDR
    NIC (25 GB/s).  Message overheads are set so that the measured
    shapes of paper Figure 6 (bandwidth cliff below ~1 MiB messages) and
    Figure 20 (2DH crossover) are reproduced.
    """
    return ClusterTopology(
        num_gpus=num_gpus,
        gpus_per_node=gpus_per_node,
        gpu=GpuSpec(),
        intra_link=LinkSpec(bandwidth=300e9, latency=2e-6,
                            message_overhead=1.2e-6),
        inter_link=LinkSpec(bandwidth=25e9, latency=4e-6,
                            message_overhead=3.0e-6),
    )


def nvswitch256_topology(num_gpus: int) -> ClusterTopology:
    """Next-generation NVSwitch domain of up to 256 GPUs (Section 4.3).

    Models the extension the paper proposes: with ``m = 256`` the
    inter-node fan-out ``n/m`` stays small even at 100K-GPU scale.
    """
    return ClusterTopology(
        num_gpus=num_gpus,
        gpus_per_node=256,
        gpu=GpuSpec(),
        intra_link=LinkSpec(bandwidth=450e9, latency=2.5e-6,
                            message_overhead=1.2e-6),
        inter_link=LinkSpec(bandwidth=50e9, latency=4e-6,
                            message_overhead=3.0e-6),
    )
