"""Simulated GPU cluster substrate: topology, cost models, event engine."""

from repro.cluster.gemm import GemmModel, batched_gemm_time, expert_ffn_time
from repro.cluster.linkmodel import (
    a2a_bus_bandwidth,
    contiguous_memcpy_time,
    ib_write_bandwidth_curve,
    pairwise_exchange_time,
    stride_memcpy_time,
)
from repro.cluster.memory import (
    MemoryBreakdown,
    dense_moe_memory,
    sparse_moe_memory,
)
from repro.cluster.simulator import (
    InterferenceModel,
    Op,
    Schedule,
    SimResult,
    simulate,
)
from repro.cluster.trace import save_chrome_trace, to_chrome_trace
from repro.cluster.topology import (
    ClusterTopology,
    GpuSpec,
    LinkSpec,
    ndv4_topology,
    nvswitch256_topology,
)

__all__ = [
    "GemmModel",
    "batched_gemm_time",
    "expert_ffn_time",
    "a2a_bus_bandwidth",
    "contiguous_memcpy_time",
    "ib_write_bandwidth_curve",
    "pairwise_exchange_time",
    "stride_memcpy_time",
    "MemoryBreakdown",
    "dense_moe_memory",
    "sparse_moe_memory",
    "InterferenceModel",
    "Op",
    "Schedule",
    "SimResult",
    "simulate",
    "ClusterTopology",
    "GpuSpec",
    "LinkSpec",
    "ndv4_topology",
    "nvswitch256_topology",
    "save_chrome_trace",
    "to_chrome_trace",
]
