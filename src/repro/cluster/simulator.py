"""Discrete-event simulator for multi-stream GPU execution.

The pipelining study (paper Sections 2.3 and 3.3) needs a notion of a
GPU running a *computation stream* and a *communication stream*
concurrently, where concurrently running kernels interfere: "the
slowdown from running NCCL kernels concurrently with computation
kernels on the same GPU is difficult to estimate" — and differs per
All-to-All algorithm because 2DH also launches stride-memcpy kernels
that occupy SMs.

The simulator executes a DAG of :class:`Op` objects.  Each op carries
its nominal duration (``work`` seconds at full rate); while other ops
are active on the same GPU, its rate drops according to an interference
matrix.  Ops bound to the same ``(gpu, stream)`` run FIFO.  Collective
latencies themselves are computed analytically by
:mod:`repro.collectives.schedule` — only one *representative* GPU needs
simulating for symmetric collectives, which keeps 4,096-GPU sweeps
instant.

Fault awareness (``faults=`` argument): a
:class:`repro.resilience.faults.FaultPlan` injects straggler slowdown
windows, link-degradation windows, and op-failure instants into the
run.  Rates are rescaled inside fault windows, and a failed op is
*retried with timeout* — its progress is discarded and the full
alpha-beta cost re-charged after the detection timeout — so
makespan-under-faults is a measurable quantity.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import CAT_FAULT, CAT_SIM, Observer, get_observer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.resilience.faults import FaultPlan

__all__ = [
    "Op",
    "InterferenceModel",
    "Schedule",
    "SimResult",
    "simulate",
]

_EPS = 1e-12


@dataclass
class Op:
    """One kernel-level unit of work.

    Attributes
    ----------
    work:
        Duration in seconds when running alone at full rate.
    gpu:
        Index of the GPU whose streams this op occupies.
    stream:
        Stream name; ops sharing ``(gpu, stream)`` serialize FIFO.
    kind:
        Interference class (``"compute"``, ``"comm"``,
        ``"comm_memcpy"`` for algorithms with SM-occupying copy
        kernels, or ``"host"`` for zero-interference bookkeeping).
    deps:
        Ops that must complete before this one may start.
    label:
        Free-form tag for debugging and result inspection.
    latency:
        The bandwidth-independent share of ``work`` in seconds
        (per-message overheads, wire latency, local stride copies).
        The what-if analysis in :mod:`repro.obs.analysis` uses it as
        the floor a communication op keeps under infinite network
        bandwidth; 0 means "fully bandwidth-bound".
    """

    work: float
    gpu: int = 0
    stream: str = "compute"
    kind: str = "compute"
    deps: tuple["Op", ...] = ()
    label: str = ""
    latency: float = 0.0
    _uid: int = field(default_factory=itertools.count().__next__, repr=False)

    def __post_init__(self) -> None:
        if self.work < 0 or not math.isfinite(self.work):
            raise ValueError(f"op work must be finite and >= 0, "
                             f"got {self.work}")
        if self.latency < 0 or not math.isfinite(self.latency):
            raise ValueError(f"op latency must be finite and >= 0, "
                             f"got {self.latency}")

    def __hash__(self) -> int:
        return self._uid


@dataclass(frozen=True)
class InterferenceModel:
    """Pairwise slowdown factors between concurrently active op kinds.

    ``slowdown[victim][aggressor]`` multiplies the victim's runtime
    while an op of the aggressor kind is active on the same GPU.  The
    defaults capture that plain NCCL kernels lightly perturb compute,
    whereas the 2DH stride-copy kernels compete for SMs more heavily —
    the asymmetry that makes the jointly-optimal pipelining strategy
    algorithm-dependent (paper Figure 5).
    """

    slowdown: dict[str, dict[str, float]] = field(default_factory=lambda: {
        "compute": {"comm": 1.08, "comm_memcpy": 1.18},
        "comm": {"compute": 1.22},
        "comm_memcpy": {"compute": 1.38},
    })

    def rate(self, kind: str, active_kinds: list[str]) -> float:
        """Execution rate (<= 1.0) of ``kind`` given co-active kinds."""
        table = self.slowdown.get(kind, {})
        factor = 1.0
        seen: set[str] = set()
        for other in active_kinds:
            if other in seen:
                continue  # one aggressor of each kind is enough
            seen.add(other)
            factor *= table.get(other, 1.0)
        return 1.0 / factor


@dataclass
class Schedule:
    """An ordered collection of ops forming a DAG."""

    ops: list[Op] = field(default_factory=list)

    def add(self, op: Op) -> Op:
        self.ops.append(op)
        return op

    def new_op(self, **kwargs) -> Op:
        return self.add(Op(**kwargs))

    def validate(self) -> None:
        known = set(self.ops)
        for op in self.ops:
            for dep in op.deps:
                if dep not in known:
                    raise ValueError(
                        f"op {op.label!r} depends on op {dep.label!r} "
                        "which is not part of the schedule")


@dataclass
class SimResult:
    """Simulation outcome: makespan, per-op spans, and fault tallies."""

    makespan: float
    spans: dict[Op, tuple[float, float]]
    retries: dict[Op, int] = field(default_factory=dict)
    faults_injected: int = 0
    faults_recovered: int = 0

    def span(self, op: Op) -> tuple[float, float]:
        return self.spans[op]

    def record_trace(self, ob: Observer, prefix: str = "sim") -> None:
        """Emit every op span onto the observer's simulated-clock
        tracks (``{prefix}/gpu{g}/{stream}``) — the simulator half of
        the unified timeline.  Timestamps are simulated seconds, so
        they share the recorder's second-based schema with wall-clock
        spans.
        """
        for op, (start, end) in self.spans.items():
            args = {"kind": op.kind, "work": op.work}
            if op in self.retries:
                args["retries"] = self.retries[op]
            ob.record_span(
                op.label or op.kind, CAT_SIM, start, end - start,
                track=f"{prefix}/gpu{op.gpu}/{op.stream}", args=args)
        ob.registry.histogram(f"{prefix}.makespan").observe(self.makespan)
        ob.count(f"{prefix}.ops", len(self.spans))

    def stream_busy_time(self, gpu: int, stream: str) -> float:
        """Total wall time during which a stream had an op running."""
        intervals = sorted(
            (start, end) for op, (start, end) in self.spans.items()
            if op.gpu == gpu and op.stream == stream)
        busy = 0.0
        current_end = -1.0
        for start, end in intervals:
            if start > current_end:
                busy += end - start
                current_end = end
            elif end > current_end:
                busy += end - current_end
                current_end = end
        return busy


def _op_name(op: Op) -> str:
    return op.label or f"op#{op._uid}"


def simulate(schedule: Schedule,
             interference: InterferenceModel | None = None,
             faults: "FaultPlan | None" = None) -> SimResult:
    """Run the schedule to completion and return op spans.

    The engine advances time between *rate change points* (op starts,
    op completions, and fault-window boundaries).  Between two such
    points every active op has a constant rate, so remaining work
    decreases linearly and the next completion can be computed in
    closed form.

    With ``faults``, op rates are multiplied by the plan's
    straggler/link-degradation factors inside their windows, and each
    :class:`~repro.resilience.faults.OpFailure` kills the matching
    active op at its instant: the victim's remaining work resets to its
    full nominal work plus the detection timeout (retry with alpha-beta
    re-charge).  Failures that hit an idle resource inject nothing but
    are still tallied.
    """
    interference = interference or InterferenceModel()
    schedule.validate()
    plan = faults if (faults is not None and not faults.empty()) else None

    remaining: dict[Op, float] = {op: op.work for op in schedule.ops}
    pending_deps: dict[Op, set[Op]] = {op: set(op.deps)
                                       for op in schedule.ops}
    # Reverse-dependents index, built once: completing an op only has
    # to visit its actual dependents instead of every op (the former
    # O(N^2) dependency-clearing).
    dependents: dict[Op, list[Op]] = {op: [] for op in schedule.ops}
    for op in schedule.ops:
        for dep in set(op.deps):
            dependents[dep].append(op)
    queues: dict[tuple[int, str], deque[Op]] = {}
    for op in schedule.ops:
        queues.setdefault((op.gpu, op.stream), deque()).append(op)

    active: dict[Op, float] = {}  # op -> start time
    busy: set[tuple[int, str]] = set()  # streams with an active op
    spans: dict[Op, tuple[float, float]] = {}
    done: set[Op] = set()
    retries: dict[Op, int] = {}
    faults_injected = 0
    faults_recovered = 0
    now = 0.0
    ob = get_observer()

    boundaries = plan.boundaries() if plan else []
    boundary_idx = 0
    failures = (sorted(plan.op_failures, key=lambda f: f.time)
                if plan else [])
    failure_idx = 0

    def complete(op: Op, start: float) -> None:
        nonlocal faults_recovered
        spans[op] = (start, now)
        done.add(op)
        busy.discard((op.gpu, op.stream))
        for other in dependents[op]:
            pending_deps[other].discard(op)
        if op in retries:
            faults_recovered += 1
            if ob is not None:
                ob.record_instant(
                    "recovered", CAT_FAULT, now,
                    track=f"sim/gpu{op.gpu}/{op.stream}",
                    args={"op": _op_name(op), "retries": retries[op]})

    def try_start_ops() -> bool:
        started = False
        for key, queue in queues.items():
            while queue:
                op = queue[0]
                if pending_deps[op] or key in busy:
                    break
                queue.popleft()
                if remaining[op] <= _EPS:
                    # Zero-work ops complete instantly without ever
                    # occupying the stream.
                    complete(op, now)
                    started = True
                else:
                    active[op] = now
                    busy.add(key)
                    started = True
        return started

    def fire_due_failures() -> None:
        nonlocal failure_idx, faults_injected
        while (failure_idx < len(failures)
               and failures[failure_idx].time <= now + _EPS):
            fault = failures[failure_idx]
            failure_idx += 1
            faults_injected += 1
            victims = [op for op in active
                       if op.gpu == fault.gpu
                       and (fault.stream is None
                            or op.stream == fault.stream)]
            for op in victims:
                remaining[op] = op.work + fault.timeout
                retries[op] = retries.get(op, 0) + 1
            if ob is not None:
                ob.record_instant(
                    "injected", CAT_FAULT, now,
                    track=f"sim/gpu{fault.gpu}/"
                          f"{fault.stream or 'any'}",
                    args={"t": fault.time, "gpu": fault.gpu,
                          "victims": [_op_name(v) for v in victims],
                          "timeout": fault.timeout})

    def next_fault_event() -> float | None:
        """Earliest future instant at which rates change or an op dies."""
        nonlocal boundary_idx
        while (boundary_idx < len(boundaries)
               and boundaries[boundary_idx] <= now + _EPS):
            boundary_idx += 1
        candidates = []
        if boundary_idx < len(boundaries):
            candidates.append(boundaries[boundary_idx])
        if failure_idx < len(failures):
            candidates.append(failures[failure_idx].time)
        return min(candidates) if candidates else None

    total = len(schedule.ops)
    while len(done) < total:
        while try_start_ops():
            pass
        if len(done) >= total:
            break  # zero-work tail ops may finish inside try_start_ops
        if plan:
            fire_due_failures()
        if not active:
            blocked = [op for op in schedule.ops
                       if op not in done and pending_deps[op]]
            detail = "; ".join(
                f"{_op_name(op)} <- unmet "
                f"[{', '.join(_op_name(d) for d in pending_deps[op])}]"
                for op in blocked)
            raise RuntimeError(
                f"deadlock: no runnable ops at t={now}; "
                f"blocked: {detail}")

        rates: dict[Op, float] = {}
        for op in active:
            others = [a.kind for a in active
                      if a is not op and a.gpu == op.gpu]
            rate = interference.rate(op.kind, others)
            if plan:
                rate *= plan.rate_scale(op.gpu, op.kind, now)
            rates[op] = rate

        dt = min(remaining[op] / rates[op] for op in active)
        if plan:
            event = next_fault_event()
            if event is not None and now + dt > event + _EPS:
                # Stop at the fault boundary: rates change there, so
                # the closed-form completion above is only valid up to
                # it.  No op completes in this sub-interval.
                dt = event - now
        now += dt
        finished = []
        for op in list(active):
            remaining[op] -= rates[op] * dt
            if remaining[op] <= _EPS:
                finished.append(op)
        for op in finished:
            complete(op, active.pop(op))

    result = SimResult(makespan=now, spans=spans, retries=dict(retries),
                       faults_injected=faults_injected,
                       faults_recovered=faults_recovered)
    if ob is not None:
        if faults_injected:
            ob.count("sim.faults_injected", faults_injected)
        result.record_trace(ob)
    return result
