"""Discrete-event simulator for multi-stream GPU execution.

The pipelining study (paper Sections 2.3 and 3.3) needs a notion of a
GPU running a *computation stream* and a *communication stream*
concurrently, where concurrently running kernels interfere: "the
slowdown from running NCCL kernels concurrently with computation
kernels on the same GPU is difficult to estimate" — and differs per
All-to-All algorithm because 2DH also launches stride-memcpy kernels
that occupy SMs.

The simulator executes a DAG of :class:`Op` objects.  Each op carries
its nominal duration (``work`` seconds at full rate); while other ops
are active on the same GPU, its rate drops according to an interference
matrix.  Ops bound to the same ``(gpu, stream)`` run FIFO.  Collective
latencies themselves are computed analytically by
:mod:`repro.collectives.schedule` — only one *representative* GPU needs
simulating for symmetric collectives, which keeps 4,096-GPU sweeps
instant.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.obs import CAT_SIM, Observer, get_observer

__all__ = [
    "Op",
    "InterferenceModel",
    "Schedule",
    "SimResult",
    "simulate",
]

_EPS = 1e-12


@dataclass
class Op:
    """One kernel-level unit of work.

    Attributes
    ----------
    work:
        Duration in seconds when running alone at full rate.
    gpu:
        Index of the GPU whose streams this op occupies.
    stream:
        Stream name; ops sharing ``(gpu, stream)`` serialize FIFO.
    kind:
        Interference class (``"compute"``, ``"comm"``,
        ``"comm_memcpy"`` for algorithms with SM-occupying copy
        kernels, or ``"host"`` for zero-interference bookkeeping).
    deps:
        Ops that must complete before this one may start.
    label:
        Free-form tag for debugging and result inspection.
    """

    work: float
    gpu: int = 0
    stream: str = "compute"
    kind: str = "compute"
    deps: tuple["Op", ...] = ()
    label: str = ""
    _uid: int = field(default_factory=itertools.count().__next__, repr=False)

    def __post_init__(self) -> None:
        if self.work < 0 or not math.isfinite(self.work):
            raise ValueError(f"op work must be finite and >= 0, "
                             f"got {self.work}")

    def __hash__(self) -> int:
        return self._uid


@dataclass(frozen=True)
class InterferenceModel:
    """Pairwise slowdown factors between concurrently active op kinds.

    ``slowdown[victim][aggressor]`` multiplies the victim's runtime
    while an op of the aggressor kind is active on the same GPU.  The
    defaults capture that plain NCCL kernels lightly perturb compute,
    whereas the 2DH stride-copy kernels compete for SMs more heavily —
    the asymmetry that makes the jointly-optimal pipelining strategy
    algorithm-dependent (paper Figure 5).
    """

    slowdown: dict[str, dict[str, float]] = field(default_factory=lambda: {
        "compute": {"comm": 1.08, "comm_memcpy": 1.18},
        "comm": {"compute": 1.22},
        "comm_memcpy": {"compute": 1.38},
    })

    def rate(self, kind: str, active_kinds: list[str]) -> float:
        """Execution rate (<= 1.0) of ``kind`` given co-active kinds."""
        table = self.slowdown.get(kind, {})
        factor = 1.0
        seen: set[str] = set()
        for other in active_kinds:
            if other in seen:
                continue  # one aggressor of each kind is enough
            seen.add(other)
            factor *= table.get(other, 1.0)
        return 1.0 / factor


@dataclass
class Schedule:
    """An ordered collection of ops forming a DAG."""

    ops: list[Op] = field(default_factory=list)

    def add(self, op: Op) -> Op:
        self.ops.append(op)
        return op

    def new_op(self, **kwargs) -> Op:
        return self.add(Op(**kwargs))

    def validate(self) -> None:
        known = set(self.ops)
        for op in self.ops:
            for dep in op.deps:
                if dep not in known:
                    raise ValueError(
                        f"op {op.label!r} depends on op {dep.label!r} "
                        "which is not part of the schedule")


@dataclass
class SimResult:
    """Simulation outcome: makespan and per-op spans."""

    makespan: float
    spans: dict[Op, tuple[float, float]]

    def span(self, op: Op) -> tuple[float, float]:
        return self.spans[op]

    def record_trace(self, ob: Observer, prefix: str = "sim") -> None:
        """Emit every op span onto the observer's simulated-clock
        tracks (``{prefix}/gpu{g}/{stream}``) — the simulator half of
        the unified timeline.  Timestamps are simulated seconds, so
        they share the recorder's second-based schema with wall-clock
        spans.
        """
        for op, (start, end) in self.spans.items():
            ob.record_span(
                op.label or op.kind, CAT_SIM, start, end - start,
                track=f"{prefix}/gpu{op.gpu}/{op.stream}",
                args={"kind": op.kind, "work": op.work})
        ob.registry.histogram(f"{prefix}.makespan").observe(self.makespan)
        ob.count(f"{prefix}.ops", len(self.spans))

    def stream_busy_time(self, gpu: int, stream: str) -> float:
        """Total wall time during which a stream had an op running."""
        intervals = sorted(
            (start, end) for op, (start, end) in self.spans.items()
            if op.gpu == gpu and op.stream == stream)
        busy = 0.0
        current_end = -1.0
        for start, end in intervals:
            if start > current_end:
                busy += end - start
                current_end = end
            elif end > current_end:
                busy += end - current_end
                current_end = end
        return busy


def simulate(schedule: Schedule,
             interference: InterferenceModel | None = None) -> SimResult:
    """Run the schedule to completion and return op spans.

    The engine advances time between *rate change points* (op starts
    and completions).  Between two such points every active op has a
    constant rate, so remaining work decreases linearly and the next
    completion can be computed in closed form.
    """
    interference = interference or InterferenceModel()
    schedule.validate()

    remaining: dict[Op, float] = {op: op.work for op in schedule.ops}
    pending_deps: dict[Op, set[Op]] = {op: set(op.deps)
                                       for op in schedule.ops}
    queues: dict[tuple[int, str], list[Op]] = {}
    for op in schedule.ops:
        queues.setdefault((op.gpu, op.stream), []).append(op)

    active: dict[Op, float] = {}  # op -> start time
    spans: dict[Op, tuple[float, float]] = {}
    done: set[Op] = set()
    now = 0.0

    def try_start_ops() -> bool:
        started = False
        for queue in queues.values():
            while queue:
                op = queue[0]
                if pending_deps[op]:
                    break
                head_active = any(a.gpu == op.gpu and a.stream == op.stream
                                  for a in active)
                if head_active:
                    break
                queue.pop(0)
                if remaining[op] <= _EPS:
                    spans[op] = (now, now)
                    done.add(op)
                    for other in schedule.ops:
                        pending_deps[other].discard(op)
                    started = True
                else:
                    active[op] = now
                    started = True
        return started

    total = len(schedule.ops)
    while len(done) < total:
        while try_start_ops():
            pass
        if len(done) >= total:
            break  # zero-work tail ops may finish inside try_start_ops
        if not active:
            stuck = [op.label for op in schedule.ops if op not in done]
            raise RuntimeError(
                f"deadlock: no runnable ops at t={now}; waiting: {stuck}")

        rates: dict[Op, float] = {}
        per_gpu_kinds: dict[int, list[str]] = {}
        for op in active:
            per_gpu_kinds.setdefault(op.gpu, []).append(op.kind)
        for op in active:
            others = [k for a, k in
                      ((a, a.kind) for a in active)
                      if a is not op and a.gpu == op.gpu]
            rates[op] = interference.rate(op.kind, others)

        dt = min(remaining[op] / rates[op] for op in active)
        now += dt
        finished = []
        for op in list(active):
            remaining[op] -= rates[op] * dt
            if remaining[op] <= _EPS:
                finished.append(op)
        for op in finished:
            start = active.pop(op)
            spans[op] = (start, now)
            done.add(op)
            for other in schedule.ops:
                pending_deps[other].discard(op)

    result = SimResult(makespan=now, spans=spans)
    ob = get_observer()
    if ob is not None:
        result.record_trace(ob)
    return result
