"""Analytic latency helpers built on :class:`LinkSpec` channels.

These helpers implement the message-level arithmetic that the paper's
Section 2.4 and 3.4 reason about: a GPU that must exchange data with
``p`` peers over a serialized channel pays ``p`` per-message overheads
plus the total bytes over the channel bandwidth.  The corresponding
under-utilization for small per-peer chunks is paper Figure 6.
"""

from __future__ import annotations

from repro.cluster.topology import ClusterTopology, GpuSpec, LinkSpec

__all__ = [
    "pairwise_exchange_time",
    "stride_memcpy_time",
    "contiguous_memcpy_time",
    "ib_write_bandwidth_curve",
    "a2a_bus_bandwidth",
]


def pairwise_exchange_time(link: LinkSpec, peers: int,
                           bytes_per_peer: float) -> float:
    """Time for one GPU to exchange ``bytes_per_peer`` with ``peers``
    distinct peers over a serialized channel.

    Sends and receives proceed concurrently (full-duplex links), so the
    cost is that of streaming ``peers`` messages one way.
    """
    if peers < 0:
        raise ValueError(f"peers must be >= 0, got {peers}")
    return link.stream_time(bytes_per_peer, peers)


# ----------------------------------------------------------------------
# On-device memory movement (2DH phases 1 & 3, naive aggregation)
# ----------------------------------------------------------------------

# Below roughly one cache line per access, scattered loads waste most of
# each DRAM transaction; efficiency recovers as chunks grow.  This is
# the effect that makes the naive local-aggregation All-to-All slow
# (Section 3.4: ~600us at n=8 up to ~5ms at n=2048 for S=128MiB, m=8)
# and that 2DH's aligned stride copies avoid.
_STRIDE_EFFICIENCY_HALF = 4096.0  # chunk bytes at half memory bandwidth


def stride_memcpy_time(gpu: GpuSpec, total_bytes: float,
                       chunk_bytes: float) -> float:
    """Time of an on-device stride copy moving ``total_bytes`` in
    contiguous runs of ``chunk_bytes``.

    A stride copy reads and writes every byte once (2x traffic) at an
    efficiency that degrades for small contiguous runs.
    """
    if total_bytes < 0 or chunk_bytes <= 0:
        raise ValueError("total_bytes must be >= 0 and chunk_bytes > 0")
    if total_bytes == 0:
        return 0.0
    efficiency = chunk_bytes / (chunk_bytes + _STRIDE_EFFICIENCY_HALF)
    bandwidth = gpu.memory_bandwidth * efficiency
    return gpu.kernel_launch_overhead + 2.0 * total_bytes / bandwidth


def contiguous_memcpy_time(gpu: GpuSpec, total_bytes: float) -> float:
    """Time of a plain contiguous device-to-device copy."""
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if total_bytes == 0:
        return 0.0
    return (gpu.kernel_launch_overhead
            + 2.0 * total_bytes / gpu.memory_bandwidth)


# ----------------------------------------------------------------------
# Figure 6 reproductions
# ----------------------------------------------------------------------

def ib_write_bandwidth_curve(link: LinkSpec,
                             message_sizes: list[int]) -> list[float]:
    """Effective GPUDirect-RDMA write bandwidth per message size.

    Reproduces paper Figure 6a: small messages cannot saturate an HDR
    InfiniBand link because the per-message overhead dominates.
    """
    return [link.effective_bandwidth(s) for s in message_sizes]


def a2a_bus_bandwidth(topo: ClusterTopology, total_bytes: float,
                      elapsed: float) -> float:
    """nccl-tests style All-to-All bus bandwidth.

    ``busbw = (S / n) * (n - 1) / t`` — the per-GPU bytes actually
    crossing links divided by elapsed time (paper Figure 6b y-axis).
    """
    if elapsed <= 0:
        raise ValueError(f"elapsed must be > 0, got {elapsed}")
    n = topo.num_gpus
    return (total_bytes / n) * (n - 1) / elapsed
