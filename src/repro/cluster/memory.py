"""GPU memory accounting for dense (Fairseq) vs sparse (Tutel) MoE.

Paper Table 4 compares the per-GPU memory of a single MoE layer under
the two encode/decode implementations.  The dense GShard-style path
(Figure 18a) materializes ``(T, E, dC)``-shaped one-hot and combine
tensors whose size grows *quadratically* with the token count (since
``dC`` itself grows with ``T``); the sparse Tutel path (Figure 18b)
only keeps ``(T,)`` index/score vectors and the ``(E, dC, M)`` dispatch
buffers, which grow linearly.

The estimator enumerates every live tensor at the peak of a training
step (forward activations saved for backward plus the largest
transient gradient set) so the totals can be inspected, not just
compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MoEConfig

__all__ = [
    "MemoryBreakdown",
    "dense_moe_memory",
    "sparse_moe_memory",
]

_FP32 = 4
_FP16 = 2
_INT32 = 4
_BOOL = 1

# Framework/base overhead outside the MoE layer tensors: CUDA context,
# cuDNN workspaces, the surrounding model's activations.  Identical on
# both sides, so it only shifts the savings percentages at small T.
_FRAMEWORK_BASE_BYTES = 1.55 * 1024 ** 3

# Caching allocators hold more than the live set; a modest multiplier
# over the raw tensor inventory models the fragmentation the paper's
# nvidia-smi-style measurement would include.
_ALLOCATOR_OVERHEAD = 1.30


@dataclass
class MemoryBreakdown:
    """Named tensor inventory plus the derived total."""

    tensors: dict[str, float] = field(default_factory=dict)
    base_bytes: float = _FRAMEWORK_BASE_BYTES
    allocator_overhead: float = _ALLOCATOR_OVERHEAD

    def add(self, name: str, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"tensor {name!r} has negative size")
        self.tensors[name] = self.tensors.get(name, 0.0) + nbytes

    @property
    def tensor_bytes(self) -> float:
        return sum(self.tensors.values())

    @property
    def total_bytes(self) -> float:
        return self.base_bytes + self.allocator_overhead * self.tensor_bytes

    def top(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` largest tensors, for diagnostics."""
        return sorted(self.tensors.items(), key=lambda kv: -kv[1])[:k]


def _parameter_and_optimizer_bytes(cfg: MoEConfig) -> float:
    """Local expert parameters with fp32 master weights + Adam state.

    fp16 weights + fp32 master + fp32 momentum + fp32 variance + fp16
    gradients = 2 + 4 + 4 + 4 + 2 = 16 bytes per parameter.
    """
    local_experts = max(cfg.experts_per_gpu, 1.0 / cfg.expert_shards)
    params = local_experts * cfg.expert_parameter_count
    return params * 16.0


def dense_moe_memory(cfg: MoEConfig) -> MemoryBreakdown:
    """Peak memory of the dense GShard/Fairseq encode-decode path.

    Follows Figure 18a: the combine weights ``(T, E, dC)`` and the
    boolean dispatch mask of the same shape are materialized in the
    forward pass and saved for backward; their gradients appear as
    transients of the same shape during backward.
    """
    t = cfg.tokens_per_gpu
    e = cfg.num_global_experts
    dc = cfg.capacity_per_gpu
    m = cfg.model_dim
    v = cfg.hidden_dim

    out = MemoryBreakdown()
    out.add("params+optimizer", _parameter_and_optimizer_bytes(cfg))
    out.add("moe_input (T,M)", t * m * _FP16)
    out.add("gate_logits+probs (T,E) fp32", 2 * t * e * _FP32)
    out.add("locations1 one-hot (T,dC) fp32", t * dc * _FP32)
    out.add("combine_weights (T,E,dC) fp32", t * e * dc * _FP32)
    out.add("combine_weights saved for decode bwd (T,E,dC) fp32",
            t * e * dc * _FP32)
    out.add("dispatch_mask (T,E,dC) bool->fp16 for einsum",
            t * e * dc * (_BOOL + _FP16))
    out.add("grad_combine_weights transient (T,E,dC) fp32",
            t * e * dc * _FP32)
    out.add("dispatch_input (E,dC,M)", e * dc * m * _FP16)
    out.add("expert_hidden (E,dC,V)", e * dc * v * _FP16)
    out.add("expert_output (E,dC,M)", e * dc * m * _FP16)
    out.add("combined_output (T,M)", t * m * _FP16)
    return out


def sparse_moe_memory(cfg: MoEConfig) -> MemoryBreakdown:
    """Peak memory of the sparse Tutel fast encode/decode path.

    Follows Figure 18b / Figure 19: only ``(T,)`` index and score
    vectors per top-k slot plus the dispatch buffers survive; no
    ``(T, E, dC)`` tensor is ever created.
    """
    t = cfg.tokens_per_gpu
    e = cfg.num_global_experts
    dc = cfg.capacity_per_gpu
    m = cfg.model_dim
    v = cfg.hidden_dim
    k = cfg.top_k

    out = MemoryBreakdown()
    out.add("params+optimizer", _parameter_and_optimizer_bytes(cfg))
    out.add("moe_input (T,M)", t * m * _FP16)
    out.add("gate_logits+probs (T,E) fp32", 2 * t * e * _FP32)
    out.add("idxs (k,T) int32", k * t * _INT32)
    out.add("locations (k,T) int32", k * t * _INT32)
    out.add("scores (k,T) fp32", k * t * _FP32)
    out.add("dispatch_input (E,dC,M)", e * dc * m * _FP16)
    out.add("expert_hidden (E,dC,V)", e * dc * v * _FP16)
    out.add("expert_output (E,dC,M)", e * dc * m * _FP16)
    out.add("combined_output (T,M)", t * m * _FP16)
    return out
