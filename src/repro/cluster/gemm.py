"""Batched-GEMM cost model with layout-dependent efficiency.

Paper Figure 7 shows the fflayer computation of DeepSpeed MoE slowing
down 11.3x from 1 to 2,048 GPUs at a *constant* per-GPU workload.  The
cause is the All-to-All output layout ``(W, dE, dC, M)``: the row count
of each matrix in the ``bgemm_strided_batched`` call shrinks from
16,384 to 8 as ``W`` grows, and an (8 x M) x (M x V) GEMM achieves only
8.8% of the throughput of the tall one.

We model per-matrix efficiency as a saturating function of the row
count (the dimension the hardware tiles over), which is the standard
roofline-style approximation: tiny matrices are bound by scheduling and
memory movement rather than math.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import GpuSpec

__all__ = [
    "GemmModel",
    "batched_gemm_time",
    "expert_ffn_time",
]


@dataclass(frozen=True)
class GemmModel:
    """Efficiency model ``eta(rows) = eta_max * rows / (rows + rows_half)``.

    ``rows_half`` is the row count at which half the peak efficiency is
    reached.  The default is calibrated so that ``eta(8)/eta(16384)``
    is about 8.8%, matching the measurement quoted in Section 2.4.
    """

    eta_max: float = 0.62
    rows_half: float = 82.0

    def __post_init__(self) -> None:
        if not 0 < self.eta_max <= 1:
            raise ValueError(f"eta_max must be in (0, 1], got {self.eta_max}")
        if self.rows_half <= 0:
            raise ValueError(f"rows_half must be > 0, got {self.rows_half}")

    def efficiency(self, rows: int) -> float:
        """Fraction of peak FLOP/s achieved at a given row count."""
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        return self.eta_max * rows / (rows + self.rows_half)


def batched_gemm_time(gpu: GpuSpec, batch: int, rows: int, inner: int,
                      cols: int, model: GemmModel | None = None) -> float:
    """Time of ``bgemm_strided_batched`` computing (batch, rows, inner)
    x (inner, cols) on one GPU.

    The whole batch launches as one kernel, so the launch overhead is
    paid once; the math time is FLOPs over layout-adjusted throughput.
    """
    model = model or GemmModel()
    if min(batch, rows, inner, cols) < 1:
        raise ValueError("all GEMM dimensions must be >= 1")
    flops = 2.0 * batch * rows * inner * cols
    throughput = gpu.peak_flops * model.efficiency(rows)
    return gpu.kernel_launch_overhead + flops / throughput


def expert_ffn_time(gpu: GpuSpec, batch: int, rows: int, model_dim: int,
                    hidden_dim: int, model: GemmModel | None = None,
                    backward: bool = False) -> float:
    """Time of one expert feed-forward layer on one GPU.

    The fflayer is two GEMMs, ``(rows, M) x (M, V)`` then
    ``(rows, V) x (V, M)``, batched over ``batch`` independent expert
    problems (the layout produced by All-to-All).  The backward pass
    costs twice the forward (grad wrt input + grad wrt weights).
    """
    forward = (batched_gemm_time(gpu, batch, rows, model_dim, hidden_dim,
                                 model)
               + batched_gemm_time(gpu, batch, rows, hidden_dim, model_dim,
                                   model))
    return 3.0 * forward if backward else forward
