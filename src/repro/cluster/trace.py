"""Chrome-trace export (and re-import) for simulator results.

Converts a :class:`SimResult` into the Trace Event Format understood by
``chrome://tracing`` / Perfetto, with one process row per GPU and one
thread row per stream — the standard way to eyeball how well a
pipelining schedule overlaps communication and computation.

Two analysis-grade extensions over a plain span dump:

* **Critical-path flagging** — pass the op chain from
  :func:`repro.obs.analysis.critical_path` and those spans are exported
  under their own ``critical`` category, linked start-to-start by flow
  events (``ph: "s"``/``"f"``) so the chain reads as one arrow sequence
  in the viewer.
* **DAG round-trip** — every span embeds its op ``uid`` and dependency
  uids in ``args``, so :func:`load_sim_trace` can rebuild the schedule
  and a ``SimResult`` from the file alone.  ``repro analyze
  <trace.json>`` uses this to re-attribute traces after the fact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.simulator import Op, Schedule, SimResult

__all__ = [
    "CAT_CRITICAL",
    "to_chrome_trace",
    "save_chrome_trace",
    "load_sim_trace",
]

#: Category carried by critical-path spans and their flow events.
CAT_CRITICAL = "critical"

_COLORS = {
    "compute": "thread_state_running",
    "comm": "rail_response",
    "comm_memcpy": "rail_animation",
    "host": "grey",
}


def to_chrome_trace(result: SimResult,
                    time_scale: float = 1e6,
                    critical: list[Op] | None = None) -> list[dict]:
    """Trace events (``ph: "X"`` complete events) for every op span.

    ``time_scale`` converts simulated seconds into trace microseconds.
    Zero-duration bookkeeping ops (barriers) are emitted as instant
    events so they remain visible.  Ops contained in ``critical`` are
    exported under the ``critical`` category (with
    ``args.critical_index`` giving their position in the chain), and
    consecutive chain entries are linked by flow events.
    """
    critical = critical or []
    order = {op: i for i, op in enumerate(critical)}
    events: list[dict] = []
    for op, (start, end) in sorted(result.spans.items(),
                                   key=lambda kv: (kv[1][0], kv[0]._uid)):
        args = {"kind": op.kind, "work_seconds": op.work,
                "uid": op._uid, "deps": [d._uid for d in op.deps]}
        if op.latency > 0:
            args["latency_seconds"] = op.latency
        if op in order:
            args["critical_index"] = order[op]
        base = {
            "name": op.label or op.kind,
            "cat": CAT_CRITICAL if op in order else "sim",
            "pid": f"gpu{op.gpu}",
            "tid": op.stream,
            "ts": start * time_scale,
            "cname": _COLORS.get(op.kind, "grey"),
            "args": args,
        }
        if end > start:
            events.append({**base, "ph": "X",
                           "dur": (end - start) * time_scale})
        else:
            events.append({**base, "ph": "i", "s": "t"})
    for i, (a, b) in enumerate(zip(critical, critical[1:])):
        a_end = result.spans[a][1]
        b_start = result.spans[b][0]
        flow = {"name": "critical_path", "cat": CAT_CRITICAL, "id": i}
        events.append({**flow, "ph": "s", "pid": f"gpu{a.gpu}",
                       "tid": a.stream, "ts": a_end * time_scale})
        events.append({**flow, "ph": "f", "bp": "e",
                       "pid": f"gpu{b.gpu}", "tid": b.stream,
                       "ts": b_start * time_scale})
    return events


def save_chrome_trace(result: SimResult, path: str | Path,
                      time_scale: float = 1e6,
                      critical: list[Op] | None = None) -> Path:
    """Write ``result`` as a chrome://tracing JSON file."""
    path = Path(path)
    payload = {"traceEvents": to_chrome_trace(result, time_scale,
                                              critical),
               "displayTimeUnit": "ms",
               "otherData": {"timeScale": time_scale}}
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_sim_trace(path: str | Path) -> tuple[SimResult, Schedule]:
    """Rebuild a :class:`SimResult` and its op DAG from a saved trace.

    Only traces written by :func:`save_chrome_trace` (which embed op
    uids and dependency lists in ``args``) can be loaded; anything
    else raises ``ValueError``.  Spans are converted back to simulated
    seconds via the file's recorded time scale.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    events = payload.get("traceEvents", [])
    time_scale = float(payload.get("otherData", {})
                       .get("timeScale", 1e6))

    ops: dict[int, Op] = {}
    spans: dict[int, tuple[float, float]] = {}
    dep_uids: dict[int, list[int]] = {}
    for event in events:
        args = event.get("args", {})
        if event.get("ph") not in ("X", "i") or "uid" not in args:
            continue
        uid = int(args["uid"])
        pid = str(event.get("pid", "gpu0"))
        gpu = int(pid.removeprefix("gpu")) if pid.startswith("gpu") else 0
        op = Op(work=float(args.get("work_seconds", 0.0)), gpu=gpu,
                stream=str(event.get("tid", "compute")),
                kind=str(args.get("kind", "compute")),
                latency=float(args.get("latency_seconds", 0.0)),
                label=str(event.get("name", "")))
        ops[uid] = op
        dep_uids[uid] = [int(d) for d in args.get("deps", [])]
        start = float(event["ts"]) / time_scale
        dur = float(event.get("dur", 0.0)) / time_scale
        spans[uid] = (start, start + dur)
    if not ops:
        raise ValueError(
            f"{path} carries no replayable op spans (was it written by "
            "save_chrome_trace?)")
    for uid, op in ops.items():
        missing = [d for d in dep_uids[uid] if d not in ops]
        if missing:
            raise ValueError(
                f"{path}: op uid {uid} depends on unknown uid(s) "
                f"{missing}")
        op.deps = tuple(ops[d] for d in dep_uids[uid])
    schedule = Schedule(ops=list(ops.values()))
    makespan = max(end for _, end in spans.values())
    result = SimResult(
        makespan=makespan,
        spans={op: spans[uid] for uid, op in ops.items()})
    return result, schedule
