"""Chrome-trace export for simulator results.

Converts a :class:`SimResult` into the Trace Event Format understood by
``chrome://tracing`` / Perfetto, with one process row per GPU and one
thread row per stream — the standard way to eyeball how well a
pipelining schedule overlaps communication and computation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.simulator import SimResult

__all__ = ["to_chrome_trace", "save_chrome_trace"]

_COLORS = {
    "compute": "thread_state_running",
    "comm": "rail_response",
    "comm_memcpy": "rail_animation",
    "host": "grey",
}


def to_chrome_trace(result: SimResult,
                    time_scale: float = 1e6) -> list[dict]:
    """Trace events (``ph: "X"`` complete events) for every op span.

    ``time_scale`` converts simulated seconds into trace microseconds.
    Zero-duration bookkeeping ops (barriers) are emitted as instant
    events so they remain visible.
    """
    events: list[dict] = []
    for op, (start, end) in sorted(result.spans.items(),
                                   key=lambda kv: kv[1][0]):
        base = {
            "name": op.label or op.kind,
            "pid": f"gpu{op.gpu}",
            "tid": op.stream,
            "ts": start * time_scale,
            "cname": _COLORS.get(op.kind, "grey"),
            "args": {"kind": op.kind, "work_seconds": op.work},
        }
        if end > start:
            events.append({**base, "ph": "X",
                           "dur": (end - start) * time_scale})
        else:
            events.append({**base, "ph": "i", "s": "t"})
    return events


def save_chrome_trace(result: SimResult, path: str | Path,
                      time_scale: float = 1e6) -> Path:
    """Write ``result`` as a chrome://tracing JSON file."""
    path = Path(path)
    payload = {"traceEvents": to_chrome_trace(result, time_scale),
               "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload, indent=1))
    return path
