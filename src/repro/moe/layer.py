"""Functional single-process MoE layer.

Composes the gating, capacity and encode/decode pieces into the full
forward pass of Figure 2 (gate -> dispatch -> expert fflayer ->
combine), without distribution.  The multi-rank version that exercises
Flexible All-to-All lives in :mod:`repro.moe.distributed`; the
trainable version with autograd lives in :mod:`repro.nn.moe`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.moe.capacity import CapacityPolicy, resolve_capacity
from repro.moe.encode import dense_decode, dense_encode, fast_decode, fast_encode
from repro.moe.gating import (
    RoutingCriteria,
    cosine_gate_logits,
    linear_gate_logits,
    load_balance_loss,
    softmax,
    top_k_routing,
)
from repro.moe.metrics import routing_stats
from repro.obs import CAT_MOE, get_observer
from repro.obs import span as _span
from repro.obs.runs import get_run

__all__ = [
    "ExpertParams",
    "expert_ffn",
    "MoELayerParams",
    "MoEOutput",
    "moe_layer_forward",
]


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi)
                                    * (x + 0.044715 * x ** 3)))


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


_ACTIVATIONS = {"relu": _relu, "gelu": _gelu}


@dataclass
class ExpertParams:
    """Per-expert feed-forward weights.

    ``w1`` has shape ``(E, M, V)`` and ``w2`` shape ``(E, V, M)`` —
    one fflayer (two GEMMs) per expert.
    """

    w1: np.ndarray
    w2: np.ndarray
    b1: np.ndarray | None = None
    b2: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.w1.ndim != 3 or self.w2.ndim != 3:
            raise ValueError("expert weights must be (E, in, out)")
        e, m, v = self.w1.shape
        if self.w2.shape != (e, v, m):
            raise ValueError(
                f"w2 shape {self.w2.shape} incompatible with w1 "
                f"{self.w1.shape}")

    @property
    def num_experts(self) -> int:
        return self.w1.shape[0]

    @property
    def model_dim(self) -> int:
        return self.w1.shape[1]

    @property
    def hidden_dim(self) -> int:
        return self.w1.shape[2]

    @staticmethod
    def init(num_experts: int, model_dim: int, hidden_dim: int,
             rng: np.random.Generator, scale: float | None = None
             ) -> "ExpertParams":
        """He-style initialization of all experts."""
        s1 = scale or (2.0 / model_dim) ** 0.5
        s2 = scale or (2.0 / hidden_dim) ** 0.5
        return ExpertParams(
            w1=rng.normal(0.0, s1, (num_experts, model_dim, hidden_dim)),
            w2=rng.normal(0.0, s2, (num_experts, hidden_dim, model_dim)),
            b1=np.zeros((num_experts, hidden_dim)),
            b2=np.zeros((num_experts, model_dim)),
        )


def expert_ffn(dispatched: np.ndarray, experts: ExpertParams,
               activation: str = "gelu") -> np.ndarray:
    """Apply each expert's fflayer to its capacity slice.

    ``dispatched`` is ``(E, C, M)``; returns the same shape.
    """
    if dispatched.ndim != 3:
        raise ValueError(f"dispatched must be (E, C, M), got "
                         f"{dispatched.shape}")
    if dispatched.shape[0] != experts.num_experts:
        raise ValueError(
            f"dispatched has {dispatched.shape[0]} experts, params have "
            f"{experts.num_experts}")
    act = _ACTIVATIONS[activation]
    hidden = np.einsum("ecm,emv->ecv", dispatched, experts.w1)
    if experts.b1 is not None:
        hidden = hidden + experts.b1[:, None, :]
    hidden = act(hidden)
    out = np.einsum("ecv,evm->ecm", hidden, experts.w2)
    if experts.b2 is not None:
        out = out + experts.b2[:, None, :]
    return out


@dataclass
class MoELayerParams:
    """All parameters + routing configuration of one MoE layer."""

    experts: ExpertParams
    gate_weight: np.ndarray                  # (M, E) for the linear router
    top_k: int = 2
    capacity: CapacityPolicy = field(
        default_factory=lambda: CapacityPolicy(1.0))
    router: str = "linear"                   # or "cosine"
    cosine_proj: np.ndarray | None = None    # (M, D)
    cosine_embed: np.ndarray | None = None   # (E, D)
    cosine_temperature: float = 0.3
    normalize_gate: bool = True
    batch_prioritized: bool = False
    activation: str = "gelu"
    use_fast_encode: bool = True

    @staticmethod
    def init(num_experts: int, model_dim: int, hidden_dim: int,
             rng: np.random.Generator, router: str = "linear",
             router_dim: int = 256, **kwargs) -> "MoELayerParams":
        experts = ExpertParams.init(num_experts, model_dim, hidden_dim, rng)
        gate = rng.normal(0.0, model_dim ** -0.5, (model_dim, num_experts))
        cosine_proj = cosine_embed = None
        if router == "cosine":
            cosine_proj = rng.normal(0.0, model_dim ** -0.5,
                                     (model_dim, router_dim))
            cosine_embed = rng.normal(0.0, router_dim ** -0.5,
                                      (num_experts, router_dim))
        return MoELayerParams(experts=experts, gate_weight=gate,
                              router=router, cosine_proj=cosine_proj,
                              cosine_embed=cosine_embed, **kwargs)


@dataclass
class MoEOutput:
    """Forward results plus the diagnostics the adaptive runtime uses."""

    output: np.ndarray
    l_aux: float
    crit: RoutingCriteria
    effective_capacity_factor: float

    @property
    def dropped_fraction(self) -> float:
        return self.crit.dropped_fraction()


def _gate_logits(x: np.ndarray, params: MoELayerParams) -> np.ndarray:
    if params.router == "linear":
        return linear_gate_logits(x, params.gate_weight)
    if params.router == "cosine":
        if params.cosine_proj is None or params.cosine_embed is None:
            raise ValueError("cosine router requires proj and embed params")
        return cosine_gate_logits(x, params.cosine_proj,
                                  params.cosine_embed,
                                  params.cosine_temperature)
    raise ValueError(f"unknown router {params.router!r}")


def moe_layer_forward(x: np.ndarray, params: MoELayerParams,
                      top_k: int | None = None,
                      capacity: CapacityPolicy | None = None) -> MoEOutput:
    """Full single-process MoE layer forward pass.

    ``top_k`` and ``capacity`` may be overridden per call — this is the
    dynamic top-ANY / dynamic capacity-factor feature of Section 4.1.
    """
    if x.ndim != 2:
        raise ValueError(f"x must be (T, M), got {x.shape}")
    k = top_k if top_k is not None else params.top_k
    policy = capacity if capacity is not None else params.capacity

    with _span("gate", CAT_MOE):
        logits = _gate_logits(x, params)
        probs = softmax(logits)
        # Pre-routing pass at unlimited capacity to discover the needed
        # queue lengths, then the policy decides the actual capacity.
        idxs_probe = np.argsort(-probs, axis=1, kind="stable")[:, :k].T
        cap, eff_f = resolve_capacity(policy, idxs_probe,
                                      params.experts.num_experts,
                                      tokens=x.shape[0], top_k=k)
        crit = top_k_routing(probs, k, cap,
                             normalize_gate=params.normalize_gate,
                             batch_prioritized=params.batch_prioritized)
        l_aux = load_balance_loss(probs, crit.idxs)

    encode = fast_encode if params.use_fast_encode else dense_encode
    decode = fast_decode if params.use_fast_encode else dense_decode
    with _span("encode", CAT_MOE):
        dispatched = encode(x, crit)
    with _span("expert_ffn", CAT_MOE):
        expert_out = expert_ffn(dispatched, params.experts,
                                params.activation)
    with _span("decode", CAT_MOE):
        output = decode(expert_out, crit)

    ob = get_observer()
    run = get_run()
    if ob is not None or run is not None:
        stats = routing_stats(crit, probs)
        if ob is not None:
            ob.record_routing(stats)
        if run is not None:
            run.emit("routing", data={
                "layer": 0,
                "entropy": stats.routing_entropy,
                "gini": stats.load_gini,
                "dropped_fraction": stats.dropped_fraction,
                "needed_capacity_factor": stats.needed_capacity_factor,
                "expert_load": list(stats.expert_load)})
    return MoEOutput(output=output, l_aux=l_aux, crit=crit,
                     effective_capacity_factor=eff_f)
