"""Encode (dispatch-input generation) and decode (combine) kernels.

Two computationally equivalent implementations, mirroring paper
Figure 18 and Section 4.2:

* the **dense** GShard/Fairseq path materializes one-hot location
  tensors and an ``(T, E, dC)`` combine-weights tensor, then uses
  einsums — ``O(T * E * dC * M)`` work, almost all of it multiplying
  zeros;
* the **sparse** Tutel path scatters/gathers exactly the ``O(T * k * M)``
  useful elements (kernels K0/K1/K2 of Figure 19), including the
  backward-pass computations so a training step never needs the dense
  tensors.

Both paths accept the same :class:`RoutingCriteria` and produce
identical numerics; the tests assert elementwise agreement and the
Figure 24 bench measures the (real, CPU) speed gap.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.moe.gating import RoutingCriteria

__all__ = [
    "dense_dispatch_mask",
    "dense_combine_weights",
    "dense_encode",
    "dense_decode",
    "fast_encode",
    "fast_encode_backward",
    "fast_decode",
    "fast_decode_backward",
    "DispatchBufferPool",
    "dispatch_buffer_pool",
]


# ----------------------------------------------------------------------
# Dispatch buffer reuse
# ----------------------------------------------------------------------

class DispatchBufferPool:
    """Free-list of scatter output buffers for the fast kernels.

    Every fast encode/decode call needs a zeroed ``(E*dC, M)`` or
    ``(T, M)`` output; allocating it fresh each step costs more than
    the scatter itself at small M.  The pool hands back a previously
    allocated array of the same (shape, dtype) — but **only** when the
    pool list provably holds the sole reference (``sys.getrefcount``
    == 3: list entry + loop variable + getrefcount argument).  An
    array still alive inside an earlier step's autograd graph has a
    higher refcount and is never reused, so aliasing across live
    graphs is impossible.  This leans on CPython's deterministic
    refcounting exactly like the profiler's allocation ledger; on
    interpreters without ``sys.getrefcount`` the pool degrades to
    plain allocation.
    """

    def __init__(self, max_arrays_per_shape: int = 4) -> None:
        if max_arrays_per_shape < 1:
            raise ValueError("max_arrays_per_shape must be >= 1, got "
                             f"{max_arrays_per_shape}")
        self.max_arrays_per_shape = max_arrays_per_shape
        self.enabled = hasattr(sys, "getrefcount")
        self.hits = 0
        self.misses = 0
        self._free: dict[tuple, list[np.ndarray]] = {}

    def zeros(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A zeroed array of (shape, dtype), reused when provably free."""
        if not self.enabled:
            return np.zeros(shape, dtype=dtype)
        key = (tuple(shape), np.dtype(dtype).str)
        slots = self._free.setdefault(key, [])
        for arr in slots:
            if sys.getrefcount(arr) == 3:
                self.hits += 1
                arr.fill(0)
                return arr
        self.misses += 1
        arr = np.zeros(shape, dtype=dtype)
        if len(slots) < self.max_arrays_per_shape:
            slots.append(arr)
        return arr

    def clear(self) -> None:
        self._free.clear()
        self.hits = 0
        self.misses = 0


_POOL = DispatchBufferPool()


def dispatch_buffer_pool() -> DispatchBufferPool:
    """The process-wide pool used by the fast encode/decode kernels."""
    return _POOL


# ----------------------------------------------------------------------
# Dense (GShard / Fairseq) implementation — Figure 18a
# ----------------------------------------------------------------------

def dense_combine_weights(crit: RoutingCriteria) -> np.ndarray:
    """The ``(T, E, dC)`` combine-weights tensor of Figure 18a.

    ``combine[t, e, c] = gate`` iff some top-k slot routed token ``t``
    to expert ``e`` at queue position ``c`` within capacity.
    """
    t = crit.num_tokens
    # Allocate in the gates' dtype: an untyped np.zeros would silently
    # upcast the whole dense reference path to float64.
    combine = np.zeros((t, crit.num_experts, crit.capacity),
                       dtype=crit.gates.dtype)
    valid = crit.valid
    for slot in range(crit.top_k):
        sel = valid[slot]
        combine[np.arange(t)[sel], crit.idxs[slot, sel],
                crit.locations[slot, sel]] += crit.gates[slot, sel]
    return combine


def dense_dispatch_mask(crit: RoutingCriteria) -> np.ndarray:
    """Boolean ``(T, E, dC)`` mask: which token fills which slot."""
    return dense_combine_weights(crit) > 0


def dense_encode(x: np.ndarray, crit: RoutingCriteria) -> np.ndarray:
    """Dense dispatch: ``einsum("tec,tm->ecm", mask, x)``."""
    _check_tokens(x, crit)
    mask = dense_dispatch_mask(crit).astype(x.dtype)
    return np.einsum("tec,tm->ecm", mask, x, optimize=True)


def dense_decode(expert_output: np.ndarray,
                 crit: RoutingCriteria) -> np.ndarray:
    """Dense combine: ``einsum("tec,ecm->tm", combine, expert_output)``."""
    _check_dispatched(expert_output, crit)
    combine = dense_combine_weights(crit).astype(expert_output.dtype)
    return np.einsum("tec,ecm->tm", combine, expert_output,
                     optimize=True)


# ----------------------------------------------------------------------
# Sparse (Tutel fast encode/decode) implementation — Figure 18b / 19
# ----------------------------------------------------------------------

def _flat_routes(crit: RoutingCriteria) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
    """Valid routes flattened: (token index, flat cell index, gate)."""
    valid = crit.valid & (crit.gates != 0)
    slots, tokens = np.nonzero(valid)
    cells = (crit.idxs[slots, tokens] * crit.capacity
             + crit.locations[slots, tokens])
    gates = crit.gates[slots, tokens]
    return tokens, cells, gates


def _slot_routes(crit: RoutingCriteria):
    """Per-slot valid routes: yields (token idxs, flat cells, gates).

    Within one top-k slot every token appears at most once, which lets
    the callers use unbuffered fancy-index ``+=`` instead of the much
    slower ``np.add.at``.
    """
    valid = crit.valid & (crit.gates != 0)
    for slot in range(crit.top_k):
        sel = valid[slot]
        toks = np.nonzero(sel)[0]
        if not toks.size:
            continue
        cells = (crit.idxs[slot, sel] * crit.capacity
                 + crit.locations[slot, sel])
        yield toks, cells, crit.gates[slot, sel]


def fast_encode(x: np.ndarray, crit: RoutingCriteria) -> np.ndarray:
    """Sparse dispatch (kernel K0 forward): scatter tokens into
    ``(E, dC, M)`` capacity cells; ``O(T * k * M)`` work."""
    _check_tokens(x, crit)
    tokens, cells, _ = _flat_routes(crit)
    out = _POOL.zeros((crit.num_experts * crit.capacity, x.shape[1]),
                      x.dtype)
    # Queue positions are unique per expert, so '=' and '+=' agree.
    out[cells] = x[tokens]
    return out.reshape(crit.num_experts, crit.capacity, x.shape[1])


def fast_encode_backward(grad_dispatched: np.ndarray,
                         crit: RoutingCriteria) -> np.ndarray:
    """Gradient of :func:`fast_encode` w.r.t. the token input ``x``.

    Kernel K1 applied to the encode op: each token gathers the
    gradients of every cell it was scattered to.
    """
    _check_dispatched(grad_dispatched, crit)
    m = grad_dispatched.shape[-1]
    flat = grad_dispatched.reshape(-1, m)
    grad_x = _POOL.zeros((crit.num_tokens, m), grad_dispatched.dtype)
    # Per slot each token appears at most once, so the unbuffered
    # fancy '+=' is exact — no np.add.at (which is ~5x slower).
    for toks, cells, _ in _slot_routes(crit):
        grad_x[toks] += flat[cells]
    return grad_x


def fast_decode(expert_output: np.ndarray,
                crit: RoutingCriteria) -> np.ndarray:
    """Sparse combine (kernel K1 forward):
    ``Y[t] = sum_slots gate * Z[idx, loc]``."""
    _check_dispatched(expert_output, crit)
    m = expert_output.shape[-1]
    flat = expert_output.reshape(-1, m)
    out = _POOL.zeros((crit.num_tokens, m), expert_output.dtype)
    # Slot-by-slot scatter: within a slot token indices are unique,
    # so fancy '+=' replaces the slow np.add.at.
    for toks, cells, gates in _slot_routes(crit):
        out[toks] += gates[:, None] * flat[cells]
    return out


def fast_decode_backward(grad_output: np.ndarray, expert_output: np.ndarray,
                         crit: RoutingCriteria
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of :func:`fast_decode` (kernels K0 and K2 of Fig. 19).

    Returns ``(grad_expert_output, grad_gates)`` where ``grad_gates``
    has the ``(k, T)`` layout of ``crit.gates`` (zeros at invalid
    slots) so the gating function can be trained through the combine.
    """
    _check_dispatched(expert_output, crit)
    if grad_output.shape != (crit.num_tokens, expert_output.shape[-1]):
        raise ValueError(
            f"grad_output shape {grad_output.shape} does not match "
            f"(T={crit.num_tokens}, M={expert_output.shape[-1]})")
    tokens, cells, gates = _flat_routes(crit)
    m = expert_output.shape[-1]
    flat_z = expert_output.reshape(-1, m)

    grad_z = _POOL.zeros(flat_z.shape, flat_z.dtype)
    # Capacity cells are globally unique (one queue position per
    # routed token), so direct assignment replaces np.add.at.
    grad_z[cells] = gates[:, None] * grad_output[tokens]
    grad_z = grad_z.reshape(expert_output.shape)

    grad_gates = np.zeros_like(crit.gates)
    valid = crit.valid & (crit.gates != 0)
    slots, toks = np.nonzero(valid)
    grad_gates[slots, toks] = np.einsum(
        "rm,rm->r", grad_output[tokens], flat_z[cells])
    return grad_z, grad_gates


# ----------------------------------------------------------------------
# Shape checks
# ----------------------------------------------------------------------

def _check_tokens(x: np.ndarray, crit: RoutingCriteria) -> None:
    if x.ndim != 2 or x.shape[0] != crit.num_tokens:
        raise ValueError(
            f"x must be (T={crit.num_tokens}, M), got {x.shape}")


def _check_dispatched(z: np.ndarray, crit: RoutingCriteria) -> None:
    if z.ndim != 3 or z.shape[:2] != (crit.num_experts, crit.capacity):
        raise ValueError(
            f"dispatched tensor must be (E={crit.num_experts}, "
            f"dC={crit.capacity}, M), got {z.shape}")
