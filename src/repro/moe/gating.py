"""Gating functions and token routing for MoE layers.

Implements the routing stack of the paper's Sections 2.1, 4.1, 5.3.4
and 5.3.3:

* a **linear router** (GShard-style logits = ``x @ Wg``),
* the **cosine router** of Equation (2) with a learnable temperature
  clamped from below at 0.01,
* **top-k routing** for any ``1 <= k <= E`` ("top-ANY"), with the
  GShard load-balancing auxiliary loss,
* **batch prioritized routing** (BPR): capacity slots are assigned in
  decreasing order of routing confidence rather than batch order, which
  matters at low capacity factors (paper Figure 25).

Everything is dtype-preserving vectorized NumPy; tokens are rows of an
``(T, M)`` array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "softmax",
    "linear_gate_logits",
    "cosine_gate_logits",
    "RoutingCriteria",
    "top_k_routing",
    "load_balance_loss",
    "compute_locations",
    "compute_locations_reference",
]

_MIN_TEMPERATURE = 0.01


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def linear_gate_logits(x: np.ndarray, gate_weight: np.ndarray) -> np.ndarray:
    """Linear router logits ``(T, E) = x (T, M) @ gate_weight (M, E)``."""
    if x.ndim != 2 or gate_weight.ndim != 2:
        raise ValueError("x and gate_weight must be 2-D")
    if x.shape[1] != gate_weight.shape[0]:
        raise ValueError(
            f"model dim mismatch: x has {x.shape[1]}, gate expects "
            f"{gate_weight.shape[0]}")
    return x @ gate_weight


def cosine_gate_logits(x: np.ndarray, proj: np.ndarray,
                       expert_embed: np.ndarray,
                       temperature: float = 0.3) -> np.ndarray:
    """Cosine router of paper Equation (2).

    ``P = softmax(cos(W x, M) / tau)`` — this returns the pre-softmax
    scores ``cos(W x, M) / tau``; combine with :func:`softmax`.

    Parameters
    ----------
    x:
        Token features ``(T, C)``.
    proj:
        Linear projection ``W`` of shape ``(C, D)``.
    expert_embed:
        Parametric expert matrix ``M`` of shape ``(E, D)``.
    temperature:
        Learnable temperature ``tau``; clamped at 0.01 from below as in
        the paper to avoid degenerate sharpness.
    """
    if x.shape[1] != proj.shape[0]:
        raise ValueError(
            f"model dim mismatch: x has {x.shape[1]}, proj expects "
            f"{proj.shape[0]}")
    if proj.shape[1] != expert_embed.shape[1]:
        raise ValueError(
            f"router dim mismatch: proj gives {proj.shape[1]}, expert "
            f"embeddings have {expert_embed.shape[1]}")
    tau = max(float(temperature), _MIN_TEMPERATURE)
    projected = x @ proj                                        # (T, D)
    x_norm = np.linalg.norm(projected, axis=1, keepdims=True)
    e_norm = np.linalg.norm(expert_embed, axis=1, keepdims=True)
    denom = np.maximum(x_norm * e_norm.T, 1e-12)
    cosine = (projected @ expert_embed.T) / denom               # (T, E)
    return cosine / tau


@dataclass
class RoutingCriteria:
    """The ``crit`` object produced by routing and consumed by
    encode/decode (paper Figure 8).

    Attributes
    ----------
    idxs:
        ``(k, T)`` int array — expert index per top-k slot per token.
    locations:
        ``(k, T)`` int array — the token's position in its expert's
        capacity queue.
    gates:
        ``(k, T)`` float array — routing weight for each slot
        (renormalized over the selected experts when requested).
    capacity:
        ``dC`` — capacity slots per expert on this rank.
    num_experts:
        ``E`` — global expert count.
    """

    idxs: np.ndarray
    locations: np.ndarray
    gates: np.ndarray
    capacity: int
    num_experts: int

    def __post_init__(self) -> None:
        # Two explicit checks: a chained `a != b != c` comparison skips
        # the a-vs-c case whenever a == b, letting a mis-shaped `gates`
        # slip through validation.
        if self.idxs.shape != self.locations.shape:
            raise ValueError(
                f"idxs shape {self.idxs.shape} != locations shape "
                f"{self.locations.shape}")
        if self.idxs.shape != self.gates.shape:
            raise ValueError(
                f"idxs shape {self.idxs.shape} != gates shape "
                f"{self.gates.shape}")
        if self.idxs.ndim != 2:
            raise ValueError("routing arrays must be (k, T)")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.num_experts < 1:
            raise ValueError("num_experts must be >= 1")

    @property
    def top_k(self) -> int:
        return self.idxs.shape[0]

    @property
    def num_tokens(self) -> int:
        return self.idxs.shape[1]

    @property
    def valid(self) -> np.ndarray:
        """(k, T) bool — slots that survived the capacity limit."""
        return (self.locations >= 0) & (self.locations < self.capacity)

    def dropped_fraction(self) -> float:
        """Fraction of (token, slot) routes dropped by the capacity."""
        if self.locations.size == 0:
            return 0.0  # an empty batch drops nothing
        return 1.0 - float(self.valid.mean())

    def max_needed_capacity(self) -> int:
        """Smallest ``dC`` that would drop nothing for this routing."""
        if self.locations.size == 0:
            return 1  # the smallest legal capacity suffices
        return int(self.locations.max()) + 1


def compute_locations(idxs: np.ndarray, num_experts: int,
                      priority: np.ndarray | None = None) -> np.ndarray:
    """Capacity-queue positions for each (slot, token) routing decision.

    For every expert, tokens routed to it are numbered 0, 1, 2, ... in
    arrival order; slots of lower ``k`` index are served before higher
    ones (GShard semantics).  With ``priority`` given (higher = more
    important), numbering follows decreasing priority instead of batch
    order — this is batch prioritized routing.

    Parameters
    ----------
    idxs:
        ``(k, T)`` int array of expert assignments.
    num_experts:
        Global expert count ``E``.
    priority:
        Optional ``(T,)`` priority scores.

    Returns
    -------
    np.ndarray
        ``(k, T)`` int array of queue positions.
    """
    k, t = idxs.shape
    if priority is not None and priority.shape != (t,):
        raise ValueError(
            f"priority must have shape ({t},), got {priority.shape}")
    order = (np.argsort(-priority, kind="stable") if priority is not None
             else None)

    # Service order is slot-major with tokens in (priority or batch)
    # order inside each slot; a single stable sort of the flattened
    # expert assignments then yields every route's queue position as
    # its rank within its expert's run — O(k*T*log(k*T)) with no
    # (T, E) one-hot or cumsum temporaries.
    routes = idxs if order is None else idxs[:, order]
    flat = routes.reshape(-1)
    perm = np.argsort(flat, kind="stable")
    sorted_experts = flat[perm]
    run_start = np.searchsorted(sorted_experts, sorted_experts,
                                side="left")
    ranks = np.empty(flat.shape[0], dtype=np.int64)
    ranks[perm] = np.arange(flat.shape[0], dtype=np.int64) - run_start
    locations = ranks.reshape(k, t)
    if order is not None:
        inverse = np.empty_like(order)
        inverse[order] = np.arange(t)
        locations = locations[:, inverse]
    return locations


def compute_locations_reference(idxs: np.ndarray, num_experts: int,
                                priority: np.ndarray | None = None
                                ) -> np.ndarray:
    """Reference (pre-rewrite) :func:`compute_locations`.

    Materializes a ``(T, E)`` one-hot and a full cumsum per top-k slot
    in a Python loop — kept as the independent oracle the rewrite is
    tested and benchmarked against (see ``tests/test_gating.py`` and
    ``repro obs``).
    """
    k, t = idxs.shape
    if priority is not None and priority.shape != (t,):
        raise ValueError(
            f"priority must have shape ({t},), got {priority.shape}")
    order = (np.argsort(-priority, kind="stable") if priority is not None
             else np.arange(t))

    locations = np.empty((k, t), dtype=np.int64)
    counts = np.zeros(num_experts, dtype=np.int64)
    for slot in range(k):
        assigned = idxs[slot, order]                      # (T,) in priority order
        one_hot = np.zeros((t, num_experts), dtype=np.int64)
        one_hot[np.arange(t), assigned] = 1
        pos_in_order = one_hot.cumsum(axis=0) - 1         # 0-based per expert
        slot_locations = (pos_in_order[np.arange(t), assigned]
                          + counts[assigned])
        locations[slot, order] = slot_locations
        counts += one_hot.sum(axis=0)
    return locations


def top_k_routing(gate_probs: np.ndarray, top_k: int, capacity: int,
                  normalize_gate: bool = True,
                  batch_prioritized: bool = False) -> RoutingCriteria:
    """Route each token to its ``top_k`` experts under a capacity limit.

    Parameters
    ----------
    gate_probs:
        ``(T, E)`` softmax routing probabilities.
    top_k:
        Fan-out ``k``; any value in ``[1, E]`` ("top-ANY", Section 4.1).
    capacity:
        Capacity ``dC`` per expert; tokens whose queue position reaches
        it are dropped (their slot is marked invalid).
    normalize_gate:
        Renormalize the selected slots' probabilities to sum to one per
        token, as GShard does for k > 1.
    batch_prioritized:
        Enable BPR: capacity slots assigned in order of decreasing
        top-1 confidence (paper Figure 25).
    """
    if gate_probs.ndim != 2:
        raise ValueError("gate_probs must be (T, E)")
    t, e = gate_probs.shape
    if not 1 <= top_k <= e:
        raise ValueError(f"top_k must be in [1, {e}], got {top_k}")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")

    # Slot j holds each token's j-th best expert.
    top_idxs = np.argsort(-gate_probs, axis=1, kind="stable")[:, :top_k]
    idxs = top_idxs.T.copy()                                   # (k, T)
    gates = np.take_along_axis(gate_probs, top_idxs, axis=1).T.copy()

    if normalize_gate:
        denom = np.maximum(gates.sum(axis=0, keepdims=True), 1e-12)
        gates = gates / denom

    priority = gate_probs.max(axis=1) if batch_prioritized else None
    locations = compute_locations(idxs, e, priority=priority)

    crit = RoutingCriteria(idxs=idxs, locations=locations, gates=gates,
                           capacity=capacity, num_experts=e)
    # Zero the gates of dropped slots so decode ignores them.
    crit.gates = np.where(crit.valid, crit.gates, 0.0)
    return crit


def load_balance_loss(gate_probs: np.ndarray,
                      idxs: np.ndarray) -> float:
    """GShard auxiliary load-balancing loss.

    ``l_aux = E * sum_e mean_prob(e) * routed_fraction(e)`` using the
    top-1 assignments; equals 1.0 under perfectly uniform routing.  An
    empty token batch contributes no balance penalty (0.0) rather than
    the NaN a ``counts / 0`` division would produce.
    """
    t, e = gate_probs.shape
    if t == 0:
        return 0.0
    top1 = idxs[0] if idxs.ndim == 2 else idxs
    counts = np.bincount(top1, minlength=e).astype(np.float64)
    routed_fraction = counts / t
    mean_prob = gate_probs.mean(axis=0)
    return float(e * np.sum(mean_prob * routed_fraction))
