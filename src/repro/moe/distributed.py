"""Multi-rank functional MoE layer over simulated ranks.

Executes the complete distributed data path of Figure 2 with real data
movement: per-rank gating with the shared gate ``G0``, sparse encode,
dispatch All-to-All, local expert computation, combine All-to-All, and
decode.  Two dispatch flavours are provided:

* :func:`distributed_moe_forward` uses **Flexible All-to-All**
  (Table 3): the expert input keeps the scale-independent
  ``(dE, C, M)`` layout;
* the ``flexible=False`` path mimics Fairseq/DeepSpeed: the raw
  All-to-All output layout ``(W, dE, dC, M)`` feeds the experts as
  ``W * dE`` separate small batches — numerically identical, but the
  layout that causes the Figure 7 regression on real hardware.

Because every rank routes into per-rank capacity ``dC``, results match
the single-process layer exactly whenever nothing is dropped; a test
asserts this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collectives.functional import flexible_all_to_all
from repro.core.config import MoEConfig
from repro.moe.capacity import CapacityPolicy
from repro.moe.encode import fast_decode, fast_encode
from repro.moe.gating import load_balance_loss, softmax, top_k_routing
from repro.moe.layer import ExpertParams, MoELayerParams, _gate_logits, expert_ffn

__all__ = [
    "DistributedMoEOutput",
    "shard_experts",
    "distributed_moe_forward",
]


@dataclass
class DistributedMoEOutput:
    """Per-rank outputs plus aggregate diagnostics."""

    outputs: list[np.ndarray]
    l_aux: float
    dropped_fraction: float


def shard_experts(params: ExpertParams, world_size: int) -> list[ExpertParams]:
    """Split global expert parameters into per-rank local slices.

    Requires ``E`` divisible by ``world_size`` (``dE`` whole experts
    per rank); fractional ``dE`` belongs to the P2 strategy in
    :mod:`repro.parallel`.
    """
    e = params.num_experts
    if e % world_size != 0:
        raise ValueError(
            f"{e} experts not divisible across {world_size} ranks")
    de = e // world_size
    shards = []
    for r in range(world_size):
        sl = slice(r * de, (r + 1) * de)
        shards.append(ExpertParams(
            w1=params.w1[sl], w2=params.w2[sl],
            b1=None if params.b1 is None else params.b1[sl],
            b2=None if params.b2 is None else params.b2[sl]))
    return shards


def distributed_moe_forward(rank_inputs: list[np.ndarray],
                            params: MoELayerParams,
                            cfg: MoEConfig,
                            flexible: bool = True) -> DistributedMoEOutput:
    """Run one MoE layer across ``cfg.world_size`` simulated ranks.

    Parameters
    ----------
    rank_inputs:
        One ``(T, M)`` token array per rank.
    params:
        Global layer parameters (gate is shared; experts are sharded).
    cfg:
        Placement configuration; ``cfg.capacity_per_gpu`` bounds each
        rank's per-expert contribution.
    flexible:
        Use Flexible All-to-All layouts (Tutel) instead of the raw
        All-to-All layout (Fairseq/DeepSpeed).
    """
    w = cfg.world_size
    if len(rank_inputs) != w:
        raise ValueError(
            f"expected {w} rank inputs, got {len(rank_inputs)}")
    e = params.experts.num_experts
    if e != cfg.num_global_experts:
        raise ValueError(
            f"params have {e} experts but cfg implies "
            f"{cfg.num_global_experts}")
    de = e // w
    if de * w != e:
        raise ValueError(f"{e} experts not divisible across {w} ranks")

    policy = CapacityPolicy(cfg.capacity_factor)
    if policy.is_adaptive:
        raise ValueError(
            "distributed functional path needs a fixed capacity factor; "
            "resolve the adaptive policy before dispatch")
    cap = cfg.capacity_per_gpu

    crits = []
    dispatch_inputs = []
    aux_losses = []
    dropped = []
    for x in rank_inputs:
        logits = _gate_logits(x, params)
        probs = softmax(logits)
        crit = top_k_routing(probs, cfg.top_k, cap,
                             normalize_gate=params.normalize_gate,
                             batch_prioritized=params.batch_prioritized)
        crits.append(crit)
        dispatch_inputs.append(fast_encode(x, crit))     # (E, dC, M)
        aux_losses.append(load_balance_loss(probs, crit.idxs))
        dropped.append(crit.dropped_fraction())

    local_experts = shard_experts(params.experts, w)

    if flexible:
        # (E, dC, M) -> (dE, C, M): scale-independent expert layout.
        expert_inputs = flexible_all_to_all(dispatch_inputs, concat_dim=1,
                                            split_dim=0)
        expert_outputs = [
            expert_ffn(expert_inputs[r], local_experts[r],
                       params.activation)
            for r in range(w)
        ]
        combined = flexible_all_to_all(expert_outputs, concat_dim=0,
                                       split_dim=1)
    else:
        # Raw A2A layout (W, dE, dC, M): experts see W*dE tiny batches.
        m = cfg.model_dim
        raw = [d.reshape(w, de, cap, m) for d in dispatch_inputs]
        exchanged = [np.stack([raw[s][r] for s in range(w)])
                     for r in range(w)]                  # (W, dE, dC, M)
        expert_outputs = []
        for r in range(w):
            batches = exchanged[r].reshape(w * de, cap, m)
            rep = ExpertParams(
                w1=np.tile(local_experts[r].w1, (w, 1, 1)),
                w2=np.tile(local_experts[r].w2, (w, 1, 1)),
                b1=None if local_experts[r].b1 is None
                else np.tile(local_experts[r].b1, (w, 1)),
                b2=None if local_experts[r].b2 is None
                else np.tile(local_experts[r].b2, (w, 1)))
            out = expert_ffn(batches, rep, params.activation)
            expert_outputs.append(out.reshape(w, de, cap, m))
        combined = [np.stack([expert_outputs[s][r] for s in range(w)])
                    .reshape(e, cap, m) for r in range(w)]

    outputs = [fast_decode(combined[r], crits[r]) for r in range(w)]
    return DistributedMoEOutput(
        outputs=outputs,
        l_aux=float(np.mean(aux_losses)),
        dropped_fraction=float(np.mean(dropped)))
