"""Routing diagnostics for MoE layers.

The observability layer a production MoE stack needs: expert load
distributions, balance indices, drop statistics and routing-confidence
summaries.  These are the quantities behind the paper's dynamic-
workload analysis (Figure 1 plots the implied needed capacity; the aux
loss of GShard optimizes the load-balance index reported here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.moe.gating import RoutingCriteria

__all__ = [
    "RoutingStats",
    "routing_stats",
    "expert_load",
    "load_imbalance",
    "load_gini",
    "routing_entropy",
]


def expert_load(crit: RoutingCriteria,
                count_dropped: bool = True) -> np.ndarray:
    """Tokens routed to each expert (``(E,)`` counts).

    With ``count_dropped=False`` only slots that survived the capacity
    limit are counted — the load the experts actually process.
    """
    if count_dropped:
        idxs = crit.idxs.reshape(-1)
    else:
        mask = crit.valid & (crit.gates != 0)
        idxs = crit.idxs[mask]
    return np.bincount(idxs, minlength=crit.num_experts)


def load_imbalance(crit: RoutingCriteria) -> float:
    """Max-over-mean expert load (1.0 = perfectly balanced).

    This is the quantity the capacity factor must cover: the needed
    capacity factor of Figure 1 equals this ratio for top-1 routing.
    Degenerate inputs stay finite: zero routed tokens (empty batch)
    reads as perfectly balanced, never a 0/0 NaN.
    """
    load = expert_load(crit).astype(np.float64)
    mean = load.mean()
    if mean == 0:
        return 1.0
    return float(load.max() / mean)


def load_gini(load: np.ndarray) -> float:
    """Gini coefficient of an expert-load vector (0 = balanced).

    The health detectors' imbalance signal: 0.0 for uniform usage,
    approaching ``1 - 1/E`` when one expert takes everything.  Defined
    (0.0) for the degenerate cases — a single expert, zero routed
    tokens, or an empty vector — so online monitors never see NaN.
    """
    load = np.asarray(load, dtype=np.float64).reshape(-1)
    n = load.size
    total = load.sum()
    if n <= 1 or total <= 0:
        return 0.0
    ordered = np.sort(load)
    # Mean absolute difference form via the sorted-rank identity.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * ordered).sum() - (n + 1) * total)
                 / (n * total))


def routing_entropy(crit: RoutingCriteria,
                    normalized: bool = True) -> float:
    """Shannon entropy of the expert load distribution.

    1.0 (normalized) means uniform expert usage; 0 means collapse onto
    a single expert — the failure mode the auxiliary loss prevents.
    Degenerate inputs return defined values instead of NaN: zero routed
    tokens give 0.0 (no evidence of spread), and a single-expert layer
    gives 1.0 normalized (one expert *is* uniform usage; the 0/log(1)
    division is never evaluated).
    """
    load = expert_load(crit).astype(np.float64)
    total = load.sum()
    if total == 0:
        return 0.0
    p = load / total
    nz = p[p > 0]
    entropy = float(-(nz * np.log(nz)).sum())
    if not normalized:
        return entropy
    if crit.num_experts <= 1:
        return 1.0
    return entropy / np.log(crit.num_experts)


@dataclass(frozen=True)
class RoutingStats:
    """One routing decision's diagnostic summary.

    ``expert_load`` is the per-expert routed-token count (dropped slots
    included) — the series the run registry's utilization heatmap and
    the dead-expert health detector consume; ``load_gini`` is its Gini
    coefficient (0 = balanced).
    """

    num_tokens: int
    num_experts: int
    top_k: int
    capacity: int
    dropped_fraction: float
    load_imbalance: float
    routing_entropy: float
    needed_capacity: int
    mean_top1_confidence: float
    expert_load: tuple[int, ...] = ()
    load_gini: float = 0.0

    @property
    def needed_capacity_factor(self) -> float:
        """Capacity factor that would have kept every token (f of
        Figure 1); 0.0 for an empty batch."""
        slots = self.num_tokens * self.top_k
        if slots <= 0:
            return 0.0
        return self.needed_capacity * self.num_experts / slots

    def describe(self) -> str:
        return (f"T={self.num_tokens} E={self.num_experts} "
                f"k={self.top_k} dC={self.capacity} "
                f"drop={self.dropped_fraction:.1%} "
                f"imbalance={self.load_imbalance:.2f} "
                f"entropy={self.routing_entropy:.2f}")


def routing_stats(crit: RoutingCriteria,
                  gate_probs: np.ndarray | None = None) -> RoutingStats:
    """Compute the full diagnostic summary for one routing decision.

    ``gate_probs`` (the ``(T, E)`` softmax output) adds the mean top-1
    confidence — the priority signal batch prioritized routing sorts
    by; without it the selected-slot gates are used instead.
    """
    if gate_probs is not None and gate_probs.shape != (
            crit.num_tokens, crit.num_experts):
        raise ValueError(
            f"gate_probs must be (T={crit.num_tokens}, "
            f"E={crit.num_experts}), got {gate_probs.shape}")
    if crit.num_tokens == 0:
        confidence = 0.0  # .mean() over zero tokens would be NaN
    elif gate_probs is not None:
        confidence = float(gate_probs.max(axis=1).mean())
    else:
        confidence = float(crit.gates.max(axis=0).mean())
    load = expert_load(crit)
    return RoutingStats(
        num_tokens=crit.num_tokens,
        num_experts=crit.num_experts,
        top_k=crit.top_k,
        capacity=crit.capacity,
        dropped_fraction=crit.dropped_fraction(),
        load_imbalance=load_imbalance(crit),
        routing_entropy=routing_entropy(crit),
        needed_capacity=crit.max_needed_capacity(),
        mean_top1_confidence=confidence,
        expert_load=tuple(int(c) for c in load),
        load_gini=load_gini(load))
