"""Dynamic capacity-factor semantics (paper Section 4.1, Figure 16).

The ``capacity_factor`` argument of the MoE layer API controls how the
runtime capacity is chosen each iteration:

* ``x > 0`` — ``x`` is used directly as the capacity factor;
* ``x == 0`` — the capacity factor adapts to the *minimum* value that
  drops no tokens for the current routing;
* ``x < 0`` — same adaptive behaviour, but ``-x`` is an upper bound:
  any exceeding value is clamped to ``-x``.

The needed capacity at runtime (the y-axis of paper Figure 1) is the
longest expert queue produced by the gating function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import expert_capacity

__all__ = [
    "CapacityPolicy",
    "needed_capacity",
    "needed_capacity_factor",
    "resolve_capacity",
]


def needed_capacity(idxs: np.ndarray, num_experts: int) -> int:
    """Longest expert queue for the given ``(k, T)`` assignments."""
    if idxs.size == 0:
        return 1
    counts = np.bincount(idxs.reshape(-1), minlength=num_experts)
    return max(1, int(counts.max()))


def needed_capacity_factor(idxs: np.ndarray, num_experts: int,
                           tokens: int) -> float:
    """Smallest ``f`` such that Equation (1) capacity drops nothing.

    Inverts ``dC = k * f * T / E``: ``f = dC_needed * E / (k * T)``.
    This is the quantity plotted in paper Figure 1.
    """
    k = idxs.shape[0]
    if tokens < 1 or k < 1:
        raise ValueError("tokens and k must be >= 1")
    return needed_capacity(idxs, num_experts) * num_experts / (k * tokens)


@dataclass(frozen=True)
class CapacityPolicy:
    """Capacity behaviour selected by the ``capacity_factor`` argument."""

    capacity_factor: float = 1.0

    @property
    def is_adaptive(self) -> bool:
        return self.capacity_factor <= 0

    @property
    def upper_bound(self) -> float | None:
        """Upper bound on the adaptive factor (None = unbounded)."""
        if self.capacity_factor < 0:
            return -self.capacity_factor
        return None


def resolve_capacity(policy: CapacityPolicy, idxs: np.ndarray,
                     num_experts: int, tokens: int,
                     top_k: int) -> tuple[int, float]:
    """Runtime capacity ``dC`` and the effective factor ``f``.

    Implements Figure 16 exactly: a positive ``capacity_factor`` is
    applied through Equation (1); zero adapts to the minimum lossless
    value; negative adapts with ``-x`` as the cap.
    """
    if policy.capacity_factor > 0:
        f = policy.capacity_factor
        return expert_capacity(top_k, f, tokens, num_experts), f

    f = needed_capacity_factor(idxs, num_experts, tokens)
    bound = policy.upper_bound
    if bound is not None and f > bound:
        f = bound
        return expert_capacity(top_k, f, tokens, num_experts), f
    # Unbounded adaptive mode: the exact needed queue length is used,
    # not the Equation (1) rounding of the implied factor.
    cap = needed_capacity(idxs, num_experts)
    if not math.isfinite(f):
        raise AssertionError("capacity factor must be finite")
    return cap, f
