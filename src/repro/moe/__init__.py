"""Functional MoE core: gating, capacity, encode/decode, layers."""

from repro.moe.capacity import (
    CapacityPolicy,
    needed_capacity,
    needed_capacity_factor,
    resolve_capacity,
)
from repro.moe.distributed import (
    DistributedMoEOutput,
    distributed_moe_forward,
    shard_experts,
)
from repro.moe.encode import (
    dense_combine_weights,
    dense_decode,
    dense_dispatch_mask,
    dense_encode,
    fast_decode,
    fast_decode_backward,
    fast_encode,
    fast_encode_backward,
)
from repro.moe.gating import (
    RoutingCriteria,
    compute_locations,
    cosine_gate_logits,
    linear_gate_logits,
    load_balance_loss,
    softmax,
    top_k_routing,
)
from repro.moe.metrics import (
    RoutingStats,
    expert_load,
    load_imbalance,
    routing_entropy,
    routing_stats,
)
from repro.moe.layer import (
    ExpertParams,
    MoELayerParams,
    MoEOutput,
    expert_ffn,
    moe_layer_forward,
)

__all__ = [
    "CapacityPolicy",
    "needed_capacity",
    "needed_capacity_factor",
    "resolve_capacity",
    "DistributedMoEOutput",
    "distributed_moe_forward",
    "shard_experts",
    "dense_combine_weights",
    "dense_decode",
    "dense_dispatch_mask",
    "dense_encode",
    "fast_decode",
    "fast_decode_backward",
    "fast_encode",
    "fast_encode_backward",
    "RoutingCriteria",
    "compute_locations",
    "cosine_gate_logits",
    "linear_gate_logits",
    "load_balance_loss",
    "softmax",
    "top_k_routing",
    "RoutingStats",
    "expert_load",
    "load_imbalance",
    "routing_entropy",
    "routing_stats",
    "ExpertParams",
    "MoELayerParams",
    "MoEOutput",
    "expert_ffn",
    "moe_layer_forward",
]
