"""The virtual-clock serving loop over a stack of real MoE layers.

The engine replays a seeded arrival trace through the continuous
batcher and serves every batch **twice over, in one pass**:

* the **modeled column** prices each batch's four MoE stages with a
  closed-form cost model (gate and expert FFN flops on a nominal
  compute throughput; dispatch/combine payload bytes on a nominal
  serving-fabric bandwidth, derated during a brownout window).  These
  integer-nanosecond prices advance the virtual clock, so batch
  composition, queue depths, and the SLO percentiles are bit-stable
  across machines — gateable with tolerance 0;
* the **measured column** runs the batch through the real NumPy MoE
  stack and reads the four stage walls from the observer's
  ``moe.gate`` / ``moe.encode`` / ``moe.expert_ffn`` / ``moe.decode``
  histogram deltas.  Wall-clock numbers ride along in every artifact
  (HetuMoE methodology) but never steer the clock and never gate
  determinism.

Every request leaves with a fully attributed
:class:`repro.serve.ledger.RequestLedger`; batches, requests, queue
depth, per-(layer, expert) load, and SLO verdicts stream into the run
registry, and per-request flow events land in the Chrome trace.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor
from repro.bench.report import Metric
from repro.nn.moe import MoE
from repro.obs import CAT_SERVE, Observer, get_observer
from repro.obs import enable as obs_enable
from repro.obs import disable as obs_disable
from repro.obs.alerts import (
    AlertEngine,
    default_rules,
    merge_worst,
    routing_samples,
)
from repro.obs.overhead import get_ledger
from repro.obs.registry import Histogram
from repro.obs.routing import RoutingRecorder
from repro.obs.runs import (
    RunWriter,
    add_stream_hook,
    env_runs_root,
    get_run,
    remove_stream_hook,
    set_run,
)
from repro.scenarios.engine import SLOCheck
from repro.serve.arrivals import NS, generate_arrivals
from repro.serve.batcher import BatchFormer
from repro.serve.ledger import (
    EXEC_STAGES,
    STAGES,
    BatchLedger,
    RequestLedger,
    build_batch_ledger,
)
from repro.serve.workloads import ServeWorkload

__all__ = ["ServeResult", "SLOCheck", "serve_workload",
           "COMPUTE_FLOPS_PER_S", "COMM_BYTES_PER_S", "LAUNCH_NS"]

# ----------------------------------------------------------------------
# The serving cost model
# ----------------------------------------------------------------------
# Nominal rates scaled so that queueing dynamics are visible at the toy
# layer dimensions the committed workloads serve: a full batch prices
# at ~20 ms, putting the steady workload near 50% utilization and the
# burst/peak/brownout workloads past the capacity knee.

#: Dense-math throughput pricing ``gate`` and ``expert`` stage flops.
COMPUTE_FLOPS_PER_S = 5.0e8
#: Serving-fabric bandwidth pricing ``dispatch``/``combine`` payloads.
COMM_BYTES_PER_S = 20.0e6
#: Per-stage, per-layer launch overhead (kernel + framework).
LAUNCH_NS = 30_000
#: Serving payloads are float32 on the wire.
BYTES_PER_VALUE = 4

_MOE_SPAN_OF_STAGE = {"gate": "moe.gate", "dispatch": "moe.encode",
                      "expert": "moe.expert_ffn", "combine": "moe.decode"}


def price_stages(wl: ServeWorkload, tokens: int,
                 comm_derate: float = 1.0) -> dict[str, int]:
    """Closed-form modeled stage walls (integer ns) for one batch.

    Per layer, for ``T`` tokens with model dim ``M``, hidden ``H``,
    ``E`` experts, top-``k`` and capacity factor ``f``:

    * ``gate``      — ``2·T·M·E`` flops (router GEMM + selection);
    * ``dispatch``  — ``T·k·M`` float32 values over the serving
      fabric (the All-to-All scatter analogue);
    * ``expert``    — ``4·E·C·M·H`` flops with capacity
      ``C = ceil(k·T·f/E)`` (two GEMMs, forward only, padded to
      capacity exactly like the real encode);
    * ``combine``   — ``T·k·M`` values back over the fabric.

    ``comm_derate`` < 1 models a brownout: fabric stages slow by its
    inverse.  Pure float arithmetic rounded once to integer
    nanoseconds — no wall-clock input, so prices are bit-stable.
    """
    if tokens < 1:
        raise ValueError(f"tokens must be >= 1, got {tokens}")
    if not 0.0 < comm_derate <= 1.0:
        raise ValueError(
            f"comm_derate must be in (0, 1], got {comm_derate}")
    m, h, e = wl.model_dim, wl.hidden_dim, wl.num_experts
    k, f = wl.top_k, wl.capacity_factor
    cap = math.ceil(k * tokens * f / e)
    comm_bytes = tokens * k * m * BYTES_PER_VALUE
    seconds = {
        "gate": 2.0 * tokens * m * e / COMPUTE_FLOPS_PER_S,
        "dispatch": comm_bytes / (COMM_BYTES_PER_S * comm_derate),
        "expert": 4.0 * e * cap * m * h / COMPUTE_FLOPS_PER_S,
        "combine": comm_bytes / (COMM_BYTES_PER_S * comm_derate),
    }
    return {s: wl.num_layers * (LAUNCH_NS + round(seconds[s] * NS))
            for s in EXEC_STAGES}


# ----------------------------------------------------------------------
# Result container
# ----------------------------------------------------------------------

@dataclass
class ServeResult:
    """Everything one workload run produced."""

    workload: ServeWorkload
    fast: bool
    requests: list[RequestLedger] = field(default_factory=list)
    batches: list[BatchLedger] = field(default_factory=list)
    checks: list[SLOCheck] = field(default_factory=list)
    metrics: list[Metric] = field(default_factory=list)
    #: Per-(layer, expert) routed-token counts over the whole run —
    #: the MoETuner-style serving-load statistic.
    expert_load: list[list[int]] = field(default_factory=list)
    makespan_s: float = 0.0
    wall_seconds: float = 0.0
    run_id: str | None = None

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def metric(self, name: str) -> Metric:
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(f"serving metric {name!r} not recorded")

    def describe(self) -> str:
        wl = self.workload
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"workload {wl.name} (seed {wl.seed}"
            f"{', fast' if self.fast else ''}) -> {verdict}",
            f"  {wl.title}",
            f"  {len(self.requests)} requests in {len(self.batches)} "
            f"batches over {self.makespan_s:.3f} virtual s "
            f"({self.wall_seconds:.3f} wall s)",
            "-- SLO report --",
        ]
        for check in self.checks:
            lines.append(f"  {check.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The serving loop
# ----------------------------------------------------------------------

def _measured_walls(ob: Observer) -> dict[str, float]:
    """Cumulative seconds in each MoE stage histogram."""
    walls = {}
    for stage, span in _MOE_SPAN_OF_STAGE.items():
        h = ob.registry.histogram(span)
        walls[stage] = h.total
    return walls


def _brownout_active(wl: ServeWorkload, at_ns: int) -> bool:
    if wl.brownout is None:
        return False
    return wl.brownout.step * NS <= at_ns < wl.brownout.end_step * NS


def _emit_trace(ob: Observer, ledger: BatchLedger) -> None:
    """Virtual-timeline spans + per-request flow events."""
    rec = ob.recorder
    t = ledger.close_ns
    for stage in EXEC_STAGES:
        ob.record_span(stage, CAT_SERVE, t / NS,
                       ledger.model_walls[stage] / NS,
                       track="serve/engine",
                       args={"batch": ledger.batch_id,
                             "tokens": ledger.tokens})
        t += ledger.model_walls[stage]
    if rec is None:
        return
    for r in ledger.requests:
        rec.span(f"req {r.request_id}", CAT_SERVE,
                 r.arrival_ns / NS, r.model_e2e_ns / NS,
                 track="serve/requests",
                 args={"tokens": r.tokens, "batch": r.batch_id,
                       "spans_ns": dict(r.model_spans)})
        rec.flow(f"req {r.request_id}", CAT_SERVE, "s",
                 r.arrival_ns / NS, flow_id=r.request_id,
                 track="serve/requests")
        rec.flow(f"req {r.request_id}", CAT_SERVE, "f",
                 ledger.close_ns / NS, flow_id=r.request_id,
                 track="serve/engine")


def serve_workload(workload: ServeWorkload, *, fast: bool = False,
                   seed: int | None = None,
                   p99_slo_ms: float | None = None) -> ServeResult:
    """Serve one workload's arrival trace end to end.

    ``p99_slo_ms`` overrides the workload's modeled-p99 bound (the
    forced-SLO-miss hook the CLI exposes).  Returns the
    :class:`ServeResult`; inspect ``.passed`` for the SLO verdict.
    """
    wl = workload.resolved(fast=fast, seed=seed)
    requests = generate_arrivals(wl.arrival, wl.seed)
    if not requests:
        raise ValueError(
            f"workload {wl.name!r} produced an empty arrival trace")
    result = ServeResult(workload=wl, fast=fast)

    own_obs = get_observer() is None
    ob = obs_enable() if own_obs else get_observer()
    assert ob is not None

    auto_run = None
    if get_run() is None and env_runs_root() is not None:
        auto_run = RunWriter.create(
            seed=wl.seed,
            config={"kind": "serve", "workload": wl.name,
                    "fast": fast, "requests": len(requests)},
            substrate="serve")
        set_run(auto_run)
    run = get_run()
    alerts = None
    if run is not None:
        result.run_id = run.manifest.run_id
        run.emit("serve", step=0, data={
            "kind": "begin", "workload": wl.name, "seed": wl.seed,
            "fast": fast, "requests": len(requests),
            "horizon_s": wl.arrival.horizon_s})
        # Per-batch declarative alerting against this workload's SLO
        # bounds; fault/recovery events (the brownout window) feed the
        # engine's outstanding-fault count via the run stream hook.
        alerts = AlertEngine(default_rules(
            p99_ms=(p99_slo_ms if p99_slo_ms is not None
                    else wl.slo.p99_ms),
            min_goodput_rps=wl.slo.min_goodput_rps))
        add_stream_hook(alerts.stream_hook)

    t_wall0 = time.perf_counter()
    try:
        _serve_loop(wl, requests, result, ob, run, t_wall0=t_wall0,
                    p99_slo_ms=p99_slo_ms, alerts=alerts)
    finally:
        if alerts is not None:
            remove_stream_hook(alerts.stream_hook)
        run = get_run()
        if run is not None:
            for check in result.checks:
                run.emit("slo_check", step=-1, data={
                    "name": check.name, "value": check.value,
                    "bound": check.bound, "op": check.op,
                    "measured": check.measured,
                    "passed": check.passed})
            run.update_summary(_summary(result))
        if auto_run is not None:
            get_run().finalize(
                registry_snapshot=ob.registry.snapshot())
            get_run().close()
            set_run(None)
        if own_obs:
            obs_disable()
    return result


def _summary(result: ServeResult) -> dict:
    get_val = {m.name: m.value for m in result.metrics}
    return {
        "serve.workload": result.workload.name,
        "serve.requests": len(result.requests),
        "serve.batches": len(result.batches),
        "serve.model_p99_ms": get_val.get("model_p99_ms"),
        "serve.goodput_rps": get_val.get("goodput_rps"),
        "serve.slo_pass": result.passed,
        "serve.checks_failed": sum(1 for c in result.checks
                                   if not c.passed),
    }


def _serve_loop(wl: ServeWorkload, requests, result: ServeResult,
                ob: Observer, run, *, t_wall0: float,
                p99_slo_ms: float | None, alerts=None) -> None:
    rng = np.random.default_rng(wl.seed)
    layers = [MoE(wl.model_dim, wl.hidden_dim, wl.num_experts, rng,
                  top_k=wl.top_k, capacity_factor=wl.capacity_factor)
              for _ in range(wl.num_layers)]
    former = BatchFormer(wl.max_batch_size,
                         max_wait_ns=round(wl.max_wait_ms * 1e6))
    loads = [[0] * wl.num_experts for _ in range(wl.num_layers)]
    dropped_tokens = 0
    routed_tokens = 0
    routing_rec = RoutingRecorder(wl.num_layers, wl.num_experts)

    hist_model = Histogram(f"serve.{wl.name}.model_ms")
    hist_measured = Histogram(f"serve.{wl.name}.measured_ms")

    deadline_ns = round(wl.slo.deadline_ms * 1e6)
    on_time = 0

    free_ns = 0
    start = 0
    batch_id = 0
    brownout_was_active = False
    while start < len(requests):
        t_batch0 = time.perf_counter()
        batch = former.next_batch(requests, start, free_ns, batch_id)
        end = start + len(batch.requests)
        queue_depth = sum(1 for r in requests[end:]
                          if r.arrival_ns <= batch.close_ns)

        active = _brownout_active(wl, batch.close_ns)
        if active and not brownout_was_active and run is not None:
            run.emit("fault", step=None, data={
                "kind": "link_brownout", "factor": wl.brownout.factor,
                "at_s": batch.close_ns / NS})
        if brownout_was_active and not active and run is not None:
            run.emit("recovery", step=None, data={
                "kind": "brownout_cleared", "at_s": batch.close_ns / NS})
        brownout_was_active = active
        derate = wl.brownout.factor if active else 1.0
        model_walls = price_stages(wl, batch.tokens, comm_derate=derate)

        # The measured column: a real forward through the MoE stack.
        parts = [np.random.default_rng(r.seed)
                 .standard_normal((r.tokens, wl.model_dim))
                 for r in batch.requests]
        x = Tensor(np.concatenate(parts, axis=0))
        before = _measured_walls(ob)
        batch_crits = []
        for li, layer in enumerate(layers):
            x, _ = layer.forward(x)
            batch_crits.append(layer.last_routing_criteria)
            stats = layer.last_routing_stats
            if stats is not None:
                for e, n in enumerate(stats.expert_load):
                    loads[li][e] += int(n)
                routed_tokens += stats.num_tokens
                dropped_tokens += round(stats.dropped_fraction
                                        * stats.num_tokens)
        if all(c is not None for c in batch_crits):
            routing_rec.observe_batch(batch_crits)
            if run is not None:
                routing_rec.emit(run, step=batch_id)
        after = _measured_walls(ob)
        walls = {s: max(0, round((after[s] - before[s]) * NS))
                 for s in EXEC_STAGES}

        ledger = build_batch_ledger(batch, walls, model_walls,
                                    queue_depth)
        result.batches.append(ledger)
        result.requests.extend(ledger.requests)
        for r in ledger.requests:
            hist_model.observe(r.model_e2e_ns / 1e6)
            hist_measured.observe(r.e2e_ns / 1e6)

        # Rolling goodput on the virtual clock: requests done within
        # the deadline so far over simulated seconds elapsed so far.
        on_time += sum(1 for r in ledger.requests
                       if r.model_e2e_ns <= deadline_ns)
        rolling_goodput = (on_time / (ledger.done_ns / NS)
                           if ledger.done_ns > 0 else 0.0)
        rolling_p99 = hist_model.quantile(0.99)

        ob.count("serve.requests", len(ledger.requests))
        ob.count("serve.batches")
        ob.gauge("serve.queue_depth", queue_depth)
        ob.gauge("serve.model_p99_ms", rolling_p99)
        ob.gauge("serve.goodput_rps", rolling_goodput)
        _emit_trace(ob, ledger)
        if run is not None:
            run.emit("serve_batch", step=batch_id, data={
                "batch": batch_id, "close_ms": batch.close_ns / 1e6,
                "size": ledger.size, "tokens": ledger.tokens,
                "queue_depth": queue_depth,
                "service_model_ms": ledger.service_ns / 1e6,
                "service_measured_ms": ledger.measured_service_ns / 1e6,
                "model_walls_ns": dict(ledger.model_walls),
                "p50_ms": hist_model.quantile(0.50),
                "p95_ms": hist_model.quantile(0.95),
                "p99_ms": rolling_p99,
                "goodput_rps": rolling_goodput,
                "brownout": active,
            })
            for r in ledger.requests:
                run.emit("serve_request", step=batch_id, data={
                    "request": r.request_id, "batch": r.batch_id,
                    "tokens": r.tokens,
                    "arrival_ms": r.arrival_ns / 1e6,
                    "e2e_model_ms": r.model_e2e_ns / 1e6,
                    "e2e_measured_ms": r.e2e_ns / 1e6,
                    "model_spans_ns": dict(r.model_spans),
                    "model_shares_ns": dict(r.model_shares)})

        if alerts is not None:
            samples = {"serve.model_p99_ms": rolling_p99,
                       "serve.goodput_rps": rolling_goodput,
                       "serve.queue_depth": float(queue_depth)}
            for layer in layers:
                stats = layer.last_routing_stats
                if stats is not None:
                    merge_worst(samples, routing_samples(
                        stats.routing_entropy, stats.dropped_fraction,
                        stats.expert_load))
            alerts.evaluate(batch_id, samples, run=run,
                            registry=ob.registry)
        led = get_ledger()
        if led is not None:
            led.observe_step(
                round((time.perf_counter() - t_batch0) * NS))

        free_ns = ledger.done_ns
        start = end
        batch_id += 1

    result.wall_seconds = time.perf_counter() - t_wall0
    _finish(wl, result, hist_model, hist_measured, loads,
            routed_tokens, dropped_tokens, run,
            p99_slo_ms=p99_slo_ms)


def _gini(load: list[int]) -> float:
    arr = np.sort(np.asarray(load, dtype=np.float64))
    if arr.sum() <= 0:
        return 0.0
    n = arr.size
    idx = np.arange(1, n + 1)
    return float((2.0 * (idx * arr).sum() / (n * arr.sum()))
                 - (n + 1.0) / n)


def _finish(wl: ServeWorkload, result: ServeResult,
            hist_model: Histogram, hist_measured: Histogram,
            loads, routed_tokens: int, dropped_tokens: int, run, *,
            p99_slo_ms: float | None) -> None:
    result.expert_load = [list(row) for row in loads]
    makespan_ns = result.batches[-1].done_ns
    result.makespan_s = makespan_ns / NS
    deadline_ns = round(wl.slo.deadline_ms * 1e6)
    on_time = sum(1 for r in result.requests
                  if r.model_e2e_ns <= deadline_ns)
    goodput = on_time / result.makespan_s
    model_p = {q: hist_model.quantile(q) for q in (0.50, 0.95, 0.99)}
    meas_p = {q: hist_measured.quantile(q) for q in (0.50, 0.95, 0.99)}
    dropped_fraction = (dropped_tokens / routed_tokens
                        if routed_tokens else 0.0)
    load_gini = _gini([n for row in loads for n in row])

    p99_bound = p99_slo_ms if p99_slo_ms is not None else wl.slo.p99_ms
    result.checks.append(SLOCheck(
        name=f"{wl.name}.model_p99_ms", value=model_p[0.99],
        bound=p99_bound, op="<="))
    result.checks.append(SLOCheck(
        name=f"{wl.name}.goodput_rps", value=goodput,
        bound=wl.slo.min_goodput_rps, op=">="))
    if wl.slo.measured_p99_ms is not None:
        result.checks.append(SLOCheck(
            name=f"{wl.name}.measured_p99_ms", value=meas_p[0.99],
            bound=wl.slo.measured_p99_ms, op="<=", measured=True))

    mean_batch = len(result.requests) / len(result.batches)
    max_depth = max(b.queue_depth for b in result.batches)
    # Modeled metrics gate exactly (tolerance 0 — any drift is a
    # determinism break); routing-derived numbers get slack for BLAS
    # reduction-order variance; wall-clock rides along ungated.
    result.metrics = [
        Metric("requests", float(len(result.requests)), "count",
               kind="model", tolerance=0.0),
        Metric("batches", float(len(result.batches)), "count",
               kind="model", tolerance=0.0),
        Metric("mean_batch_size", mean_batch, "requests",
               kind="model", tolerance=0.0),
        Metric("max_queue_depth", float(max_depth), "requests",
               kind="model", tolerance=0.0),
        Metric("model_p50_ms", model_p[0.50], "ms", kind="model",
               higher_is_better=False, tolerance=0.0),
        Metric("model_p95_ms", model_p[0.95], "ms", kind="model",
               higher_is_better=False, tolerance=0.0),
        Metric("model_p99_ms", model_p[0.99], "ms", kind="model",
               higher_is_better=False, tolerance=0.0),
        Metric("goodput_rps", goodput, "req/s", kind="model",
               higher_is_better=True, tolerance=0.0),
        Metric("slo_pass", 1.0 if result.passed else 0.0, "bool",
               kind="model", higher_is_better=True, tolerance=0.0),
        Metric("dropped_fraction", dropped_fraction, "fraction",
               kind="model", higher_is_better=False, tolerance=0.25),
        Metric("expert_load_gini", load_gini, "gini", kind="model",
               higher_is_better=False, tolerance=0.25),
        Metric("measured_p50_ms", meas_p[0.50], "ms", kind="measured",
               higher_is_better=False, tolerance=0.5),
        Metric("measured_p99_ms", meas_p[0.99], "ms", kind="measured",
               higher_is_better=False, tolerance=0.5),
        Metric("wall_seconds", result.wall_seconds, "s",
               kind="measured", higher_is_better=False, tolerance=1.0),
    ]
    if run is not None:
        span_totals = {
            s: sum(r.model_spans[s] for r in result.requests)
            for s in STAGES}
        run.emit("serving_load", step=None, data={
            "workload": wl.name,
            "loads": [list(row) for row in loads],
            "gini": load_gini,
            "dropped_fraction": dropped_fraction,
            "span_totals_ns": span_totals})
