"""The per-request latency ledger (integer-nanosecond accounting).

Every request's end-to-end latency is decomposed into six spans::

    queue      | waiting for the server to go idle (prior batches)
    batch_wait | waiting for the batch former to close the batch
    gate       | routing decisions of every MoE layer
    dispatch   | capacity-bucketed encode (the All-to-All analogue)
    expert     | the expert FFN GEMMs
    combine    | gather-and-weigh decode

The ledger keeps **two columns per request** (HetuMoE methodology:
measured and modeled latency must stay separate, comparable columns):

* ``model_spans`` — deterministic simulator-priced stage durations;
  these drive the virtual clock, so batch composition and the modeled
  percentiles are bit-stable across machines;
* ``spans`` — measured wall-clock stage durations of the real NumPy
  kernels serving the batch.

**Conservation is exact, not approximate.**  All durations are integer
nanoseconds, so

* per request, the six spans sum *exactly* to the recorded end-to-end
  latency (both columns), and
* per batch and stage, the token-weighted attributed shares of the
  members sum *exactly* to the batch's stage wall
  (:func:`attribute_shares` distributes the integer remainder by
  largest fractional part, first-come on ties).

Floating point only appears at the reporting boundary (seconds,
milliseconds), never inside the ledger arithmetic — which is why the
conservation property tests hold bit-exactly under both the float32
and float64 substrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.serve.batcher import Batch

__all__ = ["STAGES", "EXEC_STAGES", "RequestLedger", "BatchLedger",
           "attribute_shares", "stage_sum", "build_batch_ledger"]

#: The six spans of a request's life, in timeline order.
STAGES = ("queue", "batch_wait", "gate", "dispatch", "expert", "combine")

#: The spans measured while the batch executes (MoE stage walls).
EXEC_STAGES = STAGES[2:]


def stage_sum(spans: Mapping[str, int]) -> int:
    """Sum of the six spans (exact — integer nanoseconds)."""
    return sum(int(spans[s]) for s in STAGES)


def attribute_shares(wall_ns: int,
                     token_counts: Sequence[int]) -> list[int]:
    """Split one batch stage wall across members by token share.

    Returns integer nanoseconds per member summing *exactly* to
    ``wall_ns``: each member gets ``floor(wall * tokens / total)`` and
    the remainder is distributed one nanosecond at a time by largest
    fractional part (earliest member wins ties), so attribution is
    deterministic and conservative.
    """
    if wall_ns < 0:
        raise ValueError(f"wall_ns must be >= 0, got {wall_ns}")
    if not token_counts:
        raise ValueError("token_counts must be non-empty")
    if any(t < 1 for t in token_counts):
        raise ValueError("every member must carry >= 1 token")
    total = sum(token_counts)
    shares = [wall_ns * t // total for t in token_counts]
    remainders = [(wall_ns * t) % total for t in token_counts]
    leftover = wall_ns - sum(shares)
    # Largest fractional part first; index breaks ties (FIFO).
    order = sorted(range(len(token_counts)),
                   key=lambda i: (-remainders[i], i))
    for i in order[:leftover]:
        shares[i] += 1
    return shares


@dataclass(frozen=True)
class RequestLedger:
    """One request's fully attributed life, both columns."""

    request_id: int
    batch_id: int
    tokens: int
    arrival_ns: int
    close_ns: int
    spans: dict[str, int]          # measured column
    model_spans: dict[str, int]    # simulator-priced column
    shares: dict[str, int]         # measured cost attribution
    model_shares: dict[str, int]   # modeled cost attribution

    @property
    def e2e_ns(self) -> int:
        """Measured end-to-end latency (== exact sum of ``spans``)."""
        return stage_sum(self.spans)

    @property
    def model_e2e_ns(self) -> int:
        """Modeled end-to-end latency (== exact sum of
        ``model_spans``); this is the quantity the deterministic SLO
        percentiles are computed from."""
        return stage_sum(self.model_spans)

    @property
    def completion_ns(self) -> int:
        """Virtual completion instant (modeled timeline)."""
        return self.arrival_ns + self.model_e2e_ns


@dataclass(frozen=True)
class BatchLedger:
    """One executed batch: stage walls plus its members' ledgers."""

    batch_id: int
    close_ns: int
    queue_depth: int               # waiting requests at close time
    walls: dict[str, int]          # measured stage walls
    model_walls: dict[str, int]    # modeled stage walls
    requests: tuple[RequestLedger, ...]

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def tokens(self) -> int:
        return sum(r.tokens for r in self.requests)

    @property
    def service_ns(self) -> int:
        """Modeled service time (advances the virtual clock)."""
        return sum(self.model_walls[s] for s in EXEC_STAGES)

    @property
    def measured_service_ns(self) -> int:
        return sum(self.walls[s] for s in EXEC_STAGES)

    @property
    def done_ns(self) -> int:
        """Virtual completion instant of every member."""
        return self.close_ns + self.service_ns


def build_batch_ledger(batch: Batch, walls: Mapping[str, int],
                       model_walls: Mapping[str, int],
                       queue_depth: int) -> BatchLedger:
    """Assemble the ledgers of one executed batch.

    ``walls``/``model_walls`` map each of :data:`EXEC_STAGES` to the
    batch's measured / modeled stage wall in integer nanoseconds.
    Every member request waits for the whole batch, so its four
    execution spans equal the batch walls; its ``queue`` and
    ``batch_wait`` spans partition ``[arrival, close)`` exactly.
    """
    for name, mapping in (("walls", walls),
                          ("model_walls", model_walls)):
        for s in EXEC_STAGES:
            if int(mapping[s]) < 0:
                raise ValueError(f"{name}[{s!r}] must be >= 0")
    token_counts = [r.tokens for r in batch.requests]
    shares_by_stage = {s: attribute_shares(int(walls[s]), token_counts)
                       for s in EXEC_STAGES}
    model_shares_by_stage = {
        s: attribute_shares(int(model_walls[s]), token_counts)
        for s in EXEC_STAGES}
    ledgers = []
    for i, r in enumerate(batch.requests):
        queue = max(0, batch.free_ns - r.arrival_ns)
        batch_wait = (batch.close_ns - r.arrival_ns) - queue
        base = {"queue": queue, "batch_wait": batch_wait}
        spans = dict(base)
        model_spans = dict(base)
        for s in EXEC_STAGES:
            spans[s] = int(walls[s])
            model_spans[s] = int(model_walls[s])
        ledgers.append(RequestLedger(
            request_id=r.request_id, batch_id=batch.batch_id,
            tokens=r.tokens, arrival_ns=r.arrival_ns,
            close_ns=batch.close_ns,
            spans=spans, model_spans=model_spans,
            shares={s: shares_by_stage[s][i] for s in EXEC_STAGES},
            model_shares={s: model_shares_by_stage[s][i]
                          for s in EXEC_STAGES}))
    return BatchLedger(
        batch_id=batch.batch_id, close_ns=batch.close_ns,
        queue_depth=queue_depth,
        walls={s: int(walls[s]) for s in EXEC_STAGES},
        model_walls={s: int(model_walls[s]) for s in EXEC_STAGES},
        requests=tuple(ledgers))
