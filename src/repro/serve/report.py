"""``BENCH_serving.json`` — the serving SLO record for `repro regress`.

One combined artifact per ``repro serve --all`` run: every workload's
metrics namespaced as ``<workload>.<metric>``.  Modeled metrics carry
tolerance 0 (the virtual clock makes them bit-stable, so any drift is
a determinism break); measured wall-clock metrics ride along with
``kind="measured"`` and stay out of the default regression gate —
the two-column methodology the artifact exists to preserve.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.report import BenchResult, Metric
from repro.bench.report import emit as bench_emit
from repro.bench.harness import Table
from repro.serve.engine import ServeResult

__all__ = ["SERVING_ARTIFACT", "serving_metrics", "emit_serving",
           "render_serve_results"]

SERVING_ARTIFACT = "serving"


def serving_metrics(results: Iterable[ServeResult]) -> list[Metric]:
    """Namespaced metrics of every workload, in workload-name order."""
    metrics: list[Metric] = []
    for res in sorted(results, key=lambda r: r.workload.name):
        for m in res.metrics:
            metrics.append(Metric(
                name=f"{res.workload.name}.{m.name}", value=m.value,
                unit=m.unit, kind=m.kind,
                higher_is_better=m.higher_is_better,
                tolerance=m.tolerance))
    return metrics


def emit_serving(results: Iterable[ServeResult], *,
                 fast: bool,
                 directory=None,
                 verbose: bool = False) -> BenchResult:
    """Write (when configured) the combined serving bench record."""
    results = list(results)
    config = {
        "mode": "fast" if fast else "full",
        "workloads": sorted(r.workload.name for r in results),
        "seeds": {r.workload.name: r.workload.seed for r in results},
    }
    return bench_emit(
        SERVING_ARTIFACT,
        "Online serving: SLO percentiles over seeded arrival traces",
        serving_metrics(results),
        config=config, directory=directory, verbose=verbose)


def render_serve_results(results: Iterable[ServeResult]) -> str:
    """Human summary table of a serving batch."""
    table = Table(
        "serving SLO report",
        ["workload", "seed", "requests", "batches", "p50 ms",
         "p99 ms", "goodput r/s", "verdict"])
    for res in sorted(results, key=lambda r: r.workload.name):
        wl = res.workload
        table.add_row(
            wl.name, wl.seed, len(res.requests), len(res.batches),
            f"{res.metric('model_p50_ms').value:.2f}",
            f"{res.metric('model_p99_ms').value:.2f}",
            f"{res.metric('goodput_rps').value:.1f}",
            "PASS" if res.passed else "FAIL")
    return table.render()
