"""repro.serve — online MoE inference over the functional substrate.

Everything before this package exercised the *training* axis of the
reproduction; production MoE traffic is request-shaped.  The serving
engine closes that gap with end-to-end request observability:

* :mod:`repro.serve.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty/MMPP, diurnal) producing integer-nanosecond request
  traces;
* :mod:`repro.serve.batcher` — the continuous-batch former (close on
  max batch size or max wait);
* :mod:`repro.serve.ledger` — the per-request latency ledger: every
  nanosecond of a request's life attributed to
  ``queue | batch_wait | gate | dispatch | expert | combine`` spans
  that sum *exactly* to the end-to-end latency (integer arithmetic),
  plus token-weighted per-batch cost attribution that sums exactly to
  each batch's stage walls;
* :mod:`repro.serve.engine` — the virtual-clock serving loop over a
  stack of real :class:`repro.nn.moe.MoE` layers, keeping the
  deterministic simulator-priced latency column and the measured
  wall-clock column side by side (HetuMoE's methodology);
* :mod:`repro.serve.workloads` — the named, committed workloads
  (``repro serve --list``);
* :mod:`repro.serve.report` — ``BENCH_serving.json`` for the
  ``repro regress`` gate.
"""

from repro.serve.arrivals import (
    ArrivalSpec,
    Request,
    generate_arrivals,
)
from repro.serve.batcher import Batch, BatchFormer
from repro.serve.engine import (
    ServeResult,
    SLOCheck,
    serve_workload,
)
from repro.serve.ledger import (
    EXEC_STAGES,
    STAGES,
    BatchLedger,
    RequestLedger,
    attribute_shares,
    stage_sum,
)
from repro.serve.report import (
    SERVING_ARTIFACT,
    emit_serving,
    render_serve_results,
    serving_metrics,
)
from repro.serve.workloads import (
    WORKLOADS,
    ServeSLO,
    ServeWorkload,
    get_workload,
    workload_names,
)

__all__ = [
    "ArrivalSpec",
    "Request",
    "generate_arrivals",
    "Batch",
    "BatchFormer",
    "STAGES",
    "EXEC_STAGES",
    "RequestLedger",
    "BatchLedger",
    "attribute_shares",
    "stage_sum",
    "ServeResult",
    "SLOCheck",
    "serve_workload",
    "ServeWorkload",
    "ServeSLO",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "SERVING_ARTIFACT",
    "serving_metrics",
    "emit_serving",
    "render_serve_results",
]
