"""The named serving workloads (`repro serve --list`).

Each workload pairs a seeded arrival trace with a small real MoE stack
and an SLO contract.  The four committed shapes cover the dynamic-
workload axis Tutel's Figure 1 motivates:

* ``poisson_steady`` — memoryless traffic at ~50% utilization, the
  baseline the tail-latency bounds are calibrated on;
* ``bursty_spike`` — MMPP on/off bursts that transiently overload the
  server, so queueing (not service) dominates the p99;
* ``diurnal_cycle`` — a raised-cosine day/night rate sweep whose peak
  exceeds capacity (the Tutel Figure 1 mapping in EXPERIMENTS.md);
* ``brownout_surge`` — steady traffic through a
  :class:`repro.scenarios.spec.LinkBrownout` window (the chaos-
  scenario fault reused under live traffic): the serving fabric is
  derated to ``factor`` of nominal bandwidth during ``[step,
  end_step)`` **virtual seconds**, so dispatch/combine pricing
  inflates and the queue builds until the window closes.

SLO bounds on the modeled column are deterministic, so they are exact
CI contracts; the measured-column bounds are generous (wall-clock
noise stays out of the determinism story, HetuMoE-style).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.scenarios.spec import LinkBrownout
from repro.serve.arrivals import ArrivalSpec

__all__ = ["ServeSLO", "ServeWorkload", "WORKLOADS", "get_workload",
           "workload_names"]


@dataclass(frozen=True)
class ServeSLO:
    """The workload's latency/goodput contract.

    ``p99_ms`` bounds the modeled p99 latency and ``min_goodput_rps``
    the modeled goodput (requests finishing within ``deadline_ms``,
    per second of makespan) — both deterministic, gated exactly.
    ``measured_p99_ms`` optionally bounds the wall-clock p99; it is
    marked measured and stays out of the regression gate.
    """

    p99_ms: float
    min_goodput_rps: float
    deadline_ms: float
    measured_p99_ms: float | None = None

    def __post_init__(self) -> None:
        if self.p99_ms <= 0 or self.deadline_ms <= 0:
            raise ValueError("p99_ms and deadline_ms must be > 0")
        if self.min_goodput_rps < 0:
            raise ValueError("min_goodput_rps must be >= 0")


@dataclass(frozen=True)
class ServeWorkload:
    """One named serving experiment: trace + model + batcher + SLO."""

    name: str
    title: str
    arrival: ArrivalSpec
    slo: ServeSLO
    seed: int = 0
    # The served model: a stack of pure MoE layers, so every modeled
    # nanosecond of service maps onto an instrumented MoE stage.
    num_layers: int = 2
    model_dim: int = 32
    hidden_dim: int = 64
    num_experts: int = 8
    top_k: int = 2
    capacity_factor: float = 1.25
    # Continuous-batching policy.
    max_batch_size: int = 8
    max_wait_ms: float = 10.0
    # Optional fabric fault window, in *virtual seconds* of the trace.
    brownout: LinkBrownout | None = None
    # --fast shrinks the arrival horizon by this factor.
    fast_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError(
                f"num_layers must be >= 1, got {self.num_layers}")
        if not 0.0 < self.fast_factor <= 1.0:
            raise ValueError(
                f"fast_factor must be in (0, 1], got {self.fast_factor}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")

    def resolved(self, fast: bool = False,
                 seed: int | None = None) -> "ServeWorkload":
        """The workload with ``--fast``/``--seed`` overrides applied."""
        wl = self
        if seed is not None:
            wl = replace(wl, seed=seed)
        if fast:
            wl = replace(wl, arrival=wl.arrival.scaled(wl.fast_factor))
        return wl


WORKLOADS: dict[str, ServeWorkload] = {}


def _register(wl: ServeWorkload) -> ServeWorkload:
    if wl.name in WORKLOADS:
        raise ValueError(f"duplicate workload {wl.name!r}")
    WORKLOADS[wl.name] = wl
    return wl


def get_workload(name: str) -> ServeWorkload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from "
            f"{workload_names()}") from None


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


_register(ServeWorkload(
    name="poisson_steady",
    title="Memoryless steady-state traffic at ~50% utilization",
    arrival=ArrivalSpec(kind="poisson", horizon_s=4.0, rate=200.0),
    slo=ServeSLO(p99_ms=80.0, min_goodput_rps=150.0,
                 deadline_ms=80.0, measured_p99_ms=2000.0),
))

_register(ServeWorkload(
    name="bursty_spike",
    title="MMPP on/off bursts transiently overloading the server",
    arrival=ArrivalSpec(kind="bursty", horizon_s=4.0, rate=100.0,
                        burst_rate=600.0, on_s=0.3, off_s=0.7),
    slo=ServeSLO(p99_ms=400.0, min_goodput_rps=100.0,
                 deadline_ms=250.0, measured_p99_ms=2000.0),
))

_register(ServeWorkload(
    name="diurnal_cycle",
    title="Raised-cosine day/night sweep past the capacity knee",
    arrival=ArrivalSpec(kind="diurnal", horizon_s=4.0, rate=60.0,
                        peak_rate=500.0, period_s=2.0),
    slo=ServeSLO(p99_ms=400.0, min_goodput_rps=80.0,
                 deadline_ms=250.0, measured_p99_ms=2000.0),
    max_batch_size=16,
))

_register(ServeWorkload(
    name="brownout_surge",
    title="Steady traffic through a serving-fabric brownout window",
    arrival=ArrivalSpec(kind="poisson", horizon_s=4.0, rate=250.0),
    slo=ServeSLO(p99_ms=600.0, min_goodput_rps=120.0,
                 deadline_ms=300.0, measured_p99_ms=2000.0),
    brownout=LinkBrownout(step=1, end_step=2, factor=0.25),
    # Keep the fast horizon at 2.5 s so the [1, 2) s brownout window
    # both opens *and clears* inside the trace under --fast.
    fast_factor=0.625,
))
