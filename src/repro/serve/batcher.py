"""Continuous/dynamic batch formation for in-flight requests.

The :class:`BatchFormer` implements the standard continuous-batching
contract of online inference engines: requests accumulate while the
server is busy, and the next batch **closes** at the earliest of

* **fill** — ``max_batch_size`` requests are available;
* **deadline** — the first admissible request has waited
  ``max_wait_ns`` since it became eligible (the later of its arrival
  and the server becoming free);
* **drain** — no further arrivals exist, so waiting longer cannot
  grow the batch.

Everything runs on the integer-nanosecond virtual timeline of
:mod:`repro.serve.arrivals`, so batch composition is a deterministic
function of the arrival trace and the (deterministic, model-priced)
service times — never of wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.arrivals import Request

__all__ = ["Batch", "BatchFormer"]


@dataclass(frozen=True)
class Batch:
    """One closed batch: its members and the instants that define the
    members' queueing spans.

    ``free_ns`` is when the server became free (members that arrived
    earlier spend ``free_ns - arrival`` in the ``queue`` span);
    ``close_ns`` is when the batch former closed the batch (the
    remainder up to ``close_ns`` is the ``batch_wait`` span).
    """

    batch_id: int
    requests: tuple[Request, ...]
    free_ns: int
    close_ns: int

    @property
    def tokens(self) -> int:
        return sum(r.tokens for r in self.requests)

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch needs at least one request")
        if self.close_ns < self.free_ns:
            raise ValueError(
                f"close_ns {self.close_ns} precedes free_ns "
                f"{self.free_ns}")
        late = [r for r in self.requests if r.arrival_ns > self.close_ns]
        if late:
            raise ValueError(
                f"request {late[0].request_id} arrives after the "
                f"batch closed")


class BatchFormer:
    """Stateless batch-closing policy over a sorted arrival trace."""

    def __init__(self, max_batch_size: int, max_wait_ns: int) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ns < 0:
            raise ValueError(
                f"max_wait_ns must be >= 0, got {max_wait_ns}")
        self.max_batch_size = max_batch_size
        self.max_wait_ns = max_wait_ns

    def next_batch(self, requests: list[Request], start: int,
                   free_ns: int, batch_id: int) -> Batch:
        """Close the next batch from ``requests[start:]``.

        ``free_ns`` is the virtual instant the server became free.
        ``requests`` must be sorted by arrival.  Returns the closed
        :class:`Batch`; the caller advances ``start`` by its size.
        """
        if start >= len(requests):
            raise ValueError("no requests left to batch")
        first = requests[start]
        # The first member is admissible from the later of its arrival
        # and the server going idle; its max-wait clock starts there.
        eligible_ns = max(free_ns, first.arrival_ns)
        deadline_ns = eligible_ns + self.max_wait_ns
        members = [first]
        for r in requests[start + 1:]:
            if len(members) >= self.max_batch_size:
                break
            if r.arrival_ns > deadline_ns:
                break
            members.append(r)
        last_arrival = members[-1].arrival_ns
        if len(members) >= self.max_batch_size:
            close_ns = max(eligible_ns, last_arrival)     # fill
        elif start + len(members) >= len(requests):
            close_ns = max(eligible_ns, last_arrival)     # drain
        else:
            close_ns = deadline_ns                        # deadline
        return Batch(batch_id=batch_id, requests=tuple(members),
                     free_ns=free_ns, close_ns=close_ns)
