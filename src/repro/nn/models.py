"""Token classifiers used by the accuracy experiments.

Two matched architectures mirror the paper's dense-vs-sparse setup:
:class:`DenseClassifier` uses plain FFN blocks, and
:class:`MoEClassifier` replaces every other FFN with an MoE layer
(exactly the SwinV2-MoE substitution pattern, at toy scale).  Both
process tokens independently — the synthetic task routes per token, the
regime where expert specialization pays off.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.moe import MoE
from repro.nn.modules import FFN, LayerNorm, Linear, Module

__all__ = ["DenseClassifier", "MoEClassifier"]


class _Block(Module):
    """Pre-norm residual block around a token mixer (FFN or MoE)."""

    def __init__(self, dim: int, mixer: Module) -> None:
        self.norm = LayerNorm(dim)
        self.mixer = mixer

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor | None]:
        normed = self.norm(x)
        if isinstance(self.mixer, MoE):
            out, l_aux = self.mixer(normed)
            return x + out, l_aux
        return x + self.mixer(normed), None


class DenseClassifier(Module):
    """Encoder -> N dense FFN blocks -> linear head."""

    def __init__(self, input_dim: int, model_dim: int, hidden_dim: int,
                 num_classes: int, num_blocks: int,
                 rng: np.random.Generator) -> None:
        self.encoder = Linear(input_dim, model_dim, rng)
        self.blocks = [_Block(model_dim, FFN(model_dim, hidden_dim, rng))
                       for _ in range(num_blocks)]
        self.head = Linear(model_dim, num_classes, rng)

    def features(self, x: Tensor) -> Tensor:
        """Penultimate representation (input to the head)."""
        h = self.encoder(x)
        for block in self.blocks:
            h, _ = block(h)
        return h

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        return self.head(self.features(x)), Tensor(0.0)


class MoEClassifier(Module):
    """Same backbone with every other FFN replaced by an MoE layer."""

    def __init__(self, input_dim: int, model_dim: int, hidden_dim: int,
                 num_classes: int, num_blocks: int, num_experts: int,
                 rng: np.random.Generator, top_k: int = 1,
                 capacity_factor: float = 1.0, router: str = "linear",
                 batch_prioritized: bool = False) -> None:
        self.encoder = Linear(input_dim, model_dim, rng)
        self.blocks = []
        for i in range(num_blocks):
            if i % 2 == 1:
                mixer: Module = MoE(
                    model_dim, hidden_dim, num_experts, rng,
                    top_k=top_k, capacity_factor=capacity_factor,
                    router=router, batch_prioritized=batch_prioritized)
            else:
                mixer = FFN(model_dim, hidden_dim, rng)
            self.blocks.append(_Block(model_dim, mixer))
        self.head = Linear(model_dim, num_classes, rng)

    def moe_layers(self) -> list[MoE]:
        return [b.mixer for b in self.blocks if isinstance(b.mixer, MoE)]

    def fail_expert(self, layer: int, expert: int) -> None:
        """Mask expert ``expert`` of MoE layer ``layer`` out of gating
        (graceful degradation after an expert-serving rank dies)."""
        layers = self.moe_layers()
        if not 0 <= layer < len(layers):
            raise ValueError(
                f"layer {layer} out of range for {len(layers)} MoE layers")
        layers[layer].fail_expert(expert)

    def set_inference_capacity(self, capacity_factor: float) -> None:
        """Change the capacity factor of every MoE layer (Table 12's
        separate train-f / infer-f knobs)."""
        from repro.moe.capacity import CapacityPolicy
        for layer in self.moe_layers():
            layer.capacity_policy = CapacityPolicy(capacity_factor)

    def freeze_moe(self) -> None:
        """Freeze all MoE layers (the Table 10 fine-tuning recipe)."""
        for layer in self.moe_layers():
            layer.freeze()

    def features(self, x: Tensor) -> Tensor:
        """Penultimate representation (aux losses are discarded)."""
        h, _ = self._trunk(x)
        return h

    def _trunk(self, x: Tensor) -> tuple[Tensor, Tensor]:
        h = self.encoder(x)
        total_aux: Tensor | None = None
        for block in self.blocks:
            h, l_aux = block(h)
            if l_aux is not None:
                total_aux = l_aux if total_aux is None else total_aux + l_aux
        if total_aux is None:
            total_aux = Tensor(0.0)
        else:
            total_aux = total_aux * (1.0 / max(len(self.moe_layers()), 1))
        return h, total_aux

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        h, total_aux = self._trunk(x)
        return self.head(h), total_aux
