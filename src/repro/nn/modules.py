"""Trainable neural-network modules over the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.autograd.functional import gelu, layer_norm, relu
from repro.autograd.tensor import Tensor

__all__ = ["Module", "Linear", "LayerNorm", "FFN", "Sequential"]


class Module:
    """Base class with recursive parameter discovery."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in vars(self).values():
            for p in _collect(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Tensor]]:
        named: list[tuple[str, Tensor]] = []
        for key, value in vars(self).items():
            path = f"{prefix}{key}"
            if isinstance(value, Tensor) and value.requires_grad:
                named.append((path, value))
            elif isinstance(value, Module):
                named.extend(value.named_parameters(prefix=f"{path}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        named.extend(item.named_parameters(
                            prefix=f"{path}[{i}]."))
                    elif isinstance(item, Tensor) and item.requires_grad:
                        named.append((f"{path}[{i}]", item))
        return named

    def freeze(self) -> None:
        """Stop all parameters of this module from training."""
        for p in self.parameters():
            p.requires_grad = False

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


def _collect(value) -> list[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_collect(item))
        return out
    return []


class Linear(Module):
    """Affine layer ``y = x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        scale = (2.0 / in_dim) ** 0.5
        self.weight = Tensor(rng.normal(0.0, scale, (in_dim, out_dim)),
                             requires_grad=True, name="linear.weight")
        self.bias = (Tensor(np.zeros(out_dim), requires_grad=True,
                            name="linear.bias") if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """LayerNorm over the last dimension."""

    def __init__(self, dim: int) -> None:
        self.weight = Tensor(np.ones(dim), requires_grad=True,
                             name="ln.weight")
        self.bias = Tensor(np.zeros(dim), requires_grad=True,
                           name="ln.bias")

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.weight, self.bias)


class FFN(Module):
    """The dense two-layer feed-forward block MoE replaces."""

    def __init__(self, model_dim: int, hidden_dim: int,
                 rng: np.random.Generator,
                 activation: str = "gelu") -> None:
        self.fc1 = Linear(model_dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, model_dim, rng)
        if activation not in ("gelu", "relu"):
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        h = self.fc1(x)
        h = gelu(h) if self.activation == "gelu" else relu(h)
        return self.fc2(h)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
