"""Trainable MoE layer module (the API of paper Figure 8, trainable).

Routing (top-k selection, capacity assignment, BPR ordering) is a
discrete decision computed outside the tape; the gate *values* flow
through :func:`moe_combine` so the router trains end to end, and the
GShard load-balancing auxiliary loss is returned alongside the output.
Supports the dynamic features of Section 4.1: per-call ``top_k``
("top-ANY") and dynamic capacity-factor semantics, plus the cosine
router of Equation (2).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.functional import softmax, take_along
from repro.autograd.moe_ops import (
    expert_ffn,
    moe_combine,
    moe_dispatch,
)
from repro.autograd.tensor import Tensor
from repro.moe.capacity import CapacityPolicy, resolve_capacity
from repro.moe.gating import RoutingCriteria, compute_locations
from repro.moe.metrics import routing_stats
from repro.moe.metrics import RoutingStats
from repro.nn.modules import Linear, Module
from repro.obs import CAT_MOE, get_observer
from repro.obs import profiler as _prof
from repro.obs import span as _span
from repro.obs.runs import get_run

__all__ = ["MoE"]


class MoE(Module):
    """Trainable mixture-of-experts feed-forward layer.

    Parameters
    ----------
    model_dim / hidden_dim:
        Expert fflayer dimensions (M and V).
    num_experts:
        Global expert count E.
    top_k:
        Default routing fan-out (overridable per call).
    capacity_factor:
        Figure 16 semantics — positive fixed, 0 adaptive, negative
        adaptive with bound.
    router:
        ``"linear"`` or ``"cosine"`` (Equation 2).
    batch_prioritized:
        Assign capacity by confidence instead of batch order (BPR).
    """

    def __init__(self, model_dim: int, hidden_dim: int, num_experts: int,
                 rng: np.random.Generator, top_k: int = 2,
                 capacity_factor: float = 1.0, router: str = "linear",
                 router_dim: int = 256, activation: str = "gelu",
                 normalize_gate: bool = True,
                 batch_prioritized: bool = False) -> None:
        if num_experts < 1:
            raise ValueError(f"num_experts must be >= 1, got {num_experts}")
        if not 1 <= top_k <= num_experts:
            raise ValueError(
                f"top_k must be in [1, {num_experts}], got {top_k}")
        self.model_dim = model_dim
        self.hidden_dim = hidden_dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.capacity_policy = CapacityPolicy(capacity_factor)
        self.router = router
        self.activation = activation
        self.normalize_gate = normalize_gate
        self.batch_prioritized = batch_prioritized

        s1 = (2.0 / model_dim) ** 0.5
        s2 = (2.0 / hidden_dim) ** 0.5
        self.w1 = Tensor(rng.normal(0.0, s1,
                                    (num_experts, model_dim, hidden_dim)),
                         requires_grad=True, name="moe.w1")
        self.w2 = Tensor(rng.normal(0.0, s2,
                                    (num_experts, hidden_dim, model_dim)),
                         requires_grad=True, name="moe.w2")
        if router == "linear":
            self.gate = Linear(model_dim, num_experts, rng, bias=False)
        elif router == "cosine":
            self.cosine_proj = Linear(model_dim, router_dim, rng,
                                      bias=False)
            self.expert_embed = Tensor(
                rng.normal(0.0, router_dim ** -0.5,
                           (num_experts, router_dim)),
                requires_grad=True, name="moe.expert_embed")
            self.log_temperature = Tensor(np.log(0.3), requires_grad=True,
                                          name="moe.log_tau")
        else:
            raise ValueError(f"unknown router {router!r}")

        # Diagnostics recorded each forward (drives Figure 1 traces).
        self.last_needed_capacity_factor: float | None = None
        self.last_effective_capacity_factor: float | None = None
        self.last_dropped_fraction: float | None = None
        # Full routing summary of the latest forward — the trainer's
        # run-registry events and health detectors read this, so it is
        # computed unconditionally (cheap next to the expert GEMMs).
        self.last_routing_stats: RoutingStats | None = None
        # Raw routing decisions of the latest forward — the routing
        # provenance recorder (repro.obs.routing) folds these into
        # per-source dispatch counts and inter-layer affinity matrices.
        self.last_routing_criteria: RoutingCriteria | None = None

        # Experts masked out of gating (graceful degradation path).
        self.failed_experts: set[int] = set()

    # -- graceful degradation ---------------------------------------------

    def fail_expert(self, expert: int) -> None:
        """Mask a dead expert out of gating; survivors take over.

        The mask zeroes the expert's softmax probability, so top-k
        selection never picks it and (with ``normalize_gate``) the
        surviving gate values renormalize automatically — tokens are
        re-routed, not dropped.  At least one expert must survive.
        """
        if not 0 <= expert < self.num_experts:
            raise ValueError(
                f"expert {expert} out of range for {self.num_experts}")
        if len(self.failed_experts | {expert}) >= self.num_experts:
            raise ValueError(
                "cannot fail the last surviving expert; "
                "restore from checkpoint instead")
        self.failed_experts.add(expert)
        run = get_run()
        if run is not None:
            run.emit("fault", data={"kind": "expert_failure",
                                    "expert": expert})

    def restore_expert(self, expert: int) -> None:
        """Readmit a previously failed expert to gating."""
        self.failed_experts.discard(expert)
        run = get_run()
        if run is not None:
            run.emit("recovery", data={"kind": "expert_restored",
                                       "expert": expert})

    # -- routing ----------------------------------------------------------

    def _gate_logits(self, x: Tensor) -> Tensor:
        if self.router == "linear":
            return self.gate(x)
        projected = self.cosine_proj(x)
        p_norm = (projected * projected).sum(axis=1, keepdims=True) ** 0.5
        e_norm = ((self.expert_embed * self.expert_embed)
                  .sum(axis=1, keepdims=True) ** 0.5)
        cosine = (projected @ self.expert_embed.T) / (p_norm @ e_norm.T
                                                      + 1e-12)
        from repro.autograd.functional import exp as _exp
        if float(np.exp(self.log_temperature.data)) <= 0.01:
            # Clamped regime: tau is pinned at the floor (paper: "set
            # lowest 0.01"), no gradient flows into it.
            return cosine * (1.0 / 0.01)
        return cosine * _exp(-self.log_temperature)

    def forward(self, x: Tensor, top_k: int | None = None,
                capacity_factor: float | None = None
                ) -> tuple[Tensor, Tensor]:
        """Returns ``(output, l_aux)``; both differentiable."""
        if x.ndim != 2:
            raise ValueError(f"x must be (T, M), got {x.shape}")
        k = top_k if top_k is not None else self.top_k
        policy = (CapacityPolicy(capacity_factor)
                  if capacity_factor is not None else self.capacity_policy)
        t = x.shape[0]

        with _span("gate", CAT_MOE), _prof.stage("gate"):
            logits = self._gate_logits(x)
            if self.failed_experts:
                # Graceful degradation: a large negative logit zeroes
                # the dead experts' probabilities, so selection and the
                # aux loss see only survivors; k shrinks if needed.
                mask = np.zeros((1, self.num_experts),
                                dtype=logits.data.dtype)
                mask[0, sorted(self.failed_experts)] = -1e30
                logits = logits + mask
                k = min(k, self.num_experts - len(self.failed_experts))
            probs = softmax(logits, axis=1)

            # Discrete routing decisions (outside the tape).
            order = np.argsort(-probs.data, axis=1, kind="stable")[:, :k]
            idxs = order.T.copy()
            from repro.moe.capacity import needed_capacity_factor
            self.last_needed_capacity_factor = needed_capacity_factor(
                idxs, self.num_experts, t)
            cap, eff_f = resolve_capacity(policy, idxs, self.num_experts,
                                          tokens=t, top_k=k)
            self.last_effective_capacity_factor = eff_f
            priority = (probs.data.max(axis=1)
                        if self.batch_prioritized else None)
            locations = compute_locations(idxs, self.num_experts,
                                          priority=priority)
            crit = RoutingCriteria(
                idxs=idxs, locations=locations,
                gates=np.zeros_like(idxs, dtype=x.data.dtype),
                capacity=cap, num_experts=self.num_experts)
            self.last_dropped_fraction = crit.dropped_fraction()

            # Differentiable gate values of the selected slots, (k, T).
            # Normalization only applies for k > 1 (GShard); with k == 1
            # the raw probability scales the expert output
            # (Switch-style), which is the path the router's gradient
            # flows through.
            selected = take_along(probs, order, axis=1).T
            if self.normalize_gate and k > 1:
                selected = selected / (selected.sum(axis=0, keepdims=True)
                                       + 1e-12)
            # Mark the selected routes live so the sparse kernels keep
            # them; real values come from `selected` at combine time.
            crit.gates = crit.valid.astype(x.data.dtype)

        self.last_routing_stats = routing_stats(crit, probs.data)
        self.last_routing_criteria = crit
        ob = get_observer()
        if ob is not None:
            ob.record_routing(self.last_routing_stats)

        with _span("encode", CAT_MOE), _prof.stage("dispatch"):
            dispatched = moe_dispatch(x, crit)
        with _span("expert_ffn", CAT_MOE), _prof.stage("expert_ffn"):
            # Fused op: act(x @ w1) @ w2 in one tape node; runs the E
            # experts on the multicore executor when one is configured
            # (repro.core.substrate.set_expert_workers).
            expert_out = expert_ffn(dispatched, self.w1, self.w2,
                                    self.activation)
        with _span("decode", CAT_MOE), _prof.stage("combine"):
            output = moe_combine(expert_out, selected, crit)

        # GShard auxiliary loss: E * sum_e mean_prob(e) * routed_frac(e).
        counts = np.bincount(idxs[0], minlength=self.num_experts)
        routed_frac = Tensor(counts / t, dtype=x.data.dtype)
        l_aux = (probs.mean(axis=0) * routed_frac).sum() * self.num_experts
        return output, l_aux
