"""Trainable modules: layers, MoE, and the experiment classifiers."""

from repro.nn.models import DenseClassifier, MoEClassifier
from repro.nn.modules import FFN, LayerNorm, Linear, Module, Sequential
from repro.nn.moe import MoE

__all__ = [
    "DenseClassifier",
    "MoEClassifier",
    "FFN",
    "LayerNorm",
    "Linear",
    "Module",
    "Sequential",
    "MoE",
]
