"""Process-wide substrate configuration: dtype and expert parallelism.

The functional substrate historically hardcoded ``np.float64``
everywhere — every :class:`~repro.autograd.tensor.Tensor` coerced its
payload, the profiler pinned ``ITEMSIZE = 8``, and calibration pinned
``DTYPE_BYTES = 8``.  That monoculture made the repo unable to measure
the single-precision regime Tutel actually targets (fp16/fp32 kernels,
Section 3) and doubled every byte ledger under float32.

This module is the single source of truth for the substrate dtype:

* ``default_dtype()`` — the dtype new Tensors are created with.
  Defaults to **float32** (the training/bench regime); override
  per-process with :func:`set_default_dtype`, per-block with the
  :func:`substrate_dtype` context manager, or at startup with the
  ``REPRO_DTYPE`` environment variable (``float32`` / ``float64``).
* ``default_itemsize()`` — bytes per element of the active dtype; the
  profiler and calibrator derive their byte accounting from this.
* ``expert_workers()`` — number of worker processes for the
  expert-parallel FFN executor (0 = serial, the default).  Set with
  :func:`set_expert_workers`, the :func:`expert_parallelism` context
  manager, or the ``REPRO_EXPERT_WORKERS`` environment variable.

It deliberately lives in ``repro.core`` (a leaf package) rather than
``repro.autograd``: the profiler needs the itemsize and is itself
imported by ``autograd.tensor``, so the config must sit below both.
Gradient-check tests keep float64 via ``substrate_dtype(np.float64)``
— central differences at float32 lose half the mantissa to roundoff.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "SUPPORTED_DTYPES",
    "default_dtype",
    "set_default_dtype",
    "resolve_dtype",
    "default_itemsize",
    "substrate_dtype",
    "expert_workers",
    "set_expert_workers",
    "expert_parallelism",
]

#: Dtypes the substrate supports end to end (autograd, profiler ledger,
#: calibration, checkpoints).  float16 is deliberately excluded: NumPy
#: has no fast half-precision kernels, so it would only distort the
#: calibrated coefficients.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _validate(dtype: object) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported substrate dtype {dt.name!r}; expected one of "
            f"{supported}")
    return dt


def _dtype_from_env() -> np.dtype:
    raw = os.environ.get("REPRO_DTYPE", "").strip()
    if not raw:
        return np.dtype(np.float32)
    return _validate(raw)


_DEFAULT_DTYPE: np.dtype = _dtype_from_env()


def default_dtype() -> np.dtype:
    """The dtype new Tensors (and substrate buffers) are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype: object) -> np.dtype:
    """Set the process-wide substrate dtype; returns the previous one."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _validate(dtype)
    return previous


def resolve_dtype(dtype: object | None = None) -> np.dtype:
    """``dtype`` if given (validated), else the active default."""
    if dtype is None:
        return _DEFAULT_DTYPE
    return _validate(dtype)


def default_itemsize() -> int:
    """Bytes per element of the active substrate dtype (4 or 8)."""
    return _DEFAULT_DTYPE.itemsize


@contextmanager
def substrate_dtype(dtype: object) -> Iterator[np.dtype]:
    """Temporarily switch the substrate dtype (e.g. float64 gradchecks)."""
    previous = set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)


def _workers_from_env() -> int:
    raw = os.environ.get("REPRO_EXPERT_WORKERS", "").strip()
    if not raw:
        return 0
    try:
        n = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_EXPERT_WORKERS must be an integer, got {raw!r}"
        ) from exc
    if n < 0:
        raise ValueError(f"REPRO_EXPERT_WORKERS must be >= 0, got {n}")
    return n


_EXPERT_WORKERS: int = _workers_from_env()


def expert_workers() -> int:
    """Worker processes for expert-parallel FFN (0 = run serially)."""
    return _EXPERT_WORKERS


def set_expert_workers(n: int) -> int:
    """Set the expert-parallel worker count; returns the previous one."""
    global _EXPERT_WORKERS
    if n < 0:
        raise ValueError(f"expert workers must be >= 0, got {n}")
    previous = _EXPERT_WORKERS
    _EXPERT_WORKERS = int(n)
    return previous


@contextmanager
def expert_parallelism(n: int) -> Iterator[int]:
    """Temporarily set the expert-parallel worker count."""
    previous = set_expert_workers(n)
    try:
        yield _EXPERT_WORKERS
    finally:
        set_expert_workers(previous)
