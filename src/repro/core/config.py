"""Core configuration objects shared across the Tutel reproduction.

The symbols follow Table 2 of the paper:

====== =====================================================
Symbol Description
====== =====================================================
``W``  world size used for All-to-All exchange (total GPUs)
``M``  fflayer channel size for each sample (model dim)
``V``  fflayer hidden size for each sample
``dE`` number of local experts per GPU (may be fractional,
       e.g. 0.5 means one expert is sharded over two GPUs)
``E``  number of global experts
``dC`` per-GPU tokens within the local capacity limit
``C``  the gather of every ``dC`` (global capacity per expert)
``f``  the capacity factor used in Equation (1)
====== =====================================================

Equation (1) of the paper defines the expert capacity as::

    Expert Capacity = k * f * T / E

where ``T`` is the number of tokens per batch *per GPU* and ``k`` is the
top-k routing fan-out.  With weak scaling (fixed tokens per GPU) this
makes the per-source-GPU slice ``dC = k * f * T / E`` shrink as the
world grows, which is the root of the layout regression in Figure 7.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

__all__ = [
    "MoEConfig",
    "expert_capacity",
]


def expert_capacity(top_k: int, capacity_factor: float, tokens_per_gpu: int,
                    num_global_experts: int) -> int:
    """Expert capacity per source GPU following Equation (1).

    Parameters
    ----------
    top_k:
        Routing fan-out ``k`` (each token is sent to ``k`` experts).
    capacity_factor:
        The capacity factor ``f`` (``f >= 1`` keeps all tokens when the
        routing is perfectly even).
    tokens_per_gpu:
        Number of tokens ``T`` in the local batch of one GPU.
    num_global_experts:
        Number of global experts ``E``.

    Returns
    -------
    int
        ``ceil(k * f * T / E)``, at least 1.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if capacity_factor <= 0:
        raise ValueError(f"capacity_factor must be > 0, got {capacity_factor}")
    if tokens_per_gpu < 1:
        raise ValueError(f"tokens_per_gpu must be >= 1, got {tokens_per_gpu}")
    if num_global_experts < 1:
        raise ValueError(
            f"num_global_experts must be >= 1, got {num_global_experts}")
    cap = math.ceil(top_k * capacity_factor * tokens_per_gpu
                    / num_global_experts)
    return max(1, cap)


@dataclass(frozen=True)
class MoEConfig:
    """Static description of a single MoE layer and its placement.

    This object is shared between the functional NumPy implementation
    (:mod:`repro.moe`) and the performance substrate
    (:mod:`repro.runtime`); it intentionally contains no arrays.

    Attributes
    ----------
    world_size:
        ``W`` — number of GPUs participating in dispatch/combine.
    gpus_per_node:
        ``m`` — GPUs sharing the fast intra-node interconnect.
    experts_per_gpu:
        ``dE`` — local experts per GPU.  Values below one (e.g. ``0.5``)
        mean a single expert is sharded across ``1/dE`` GPUs, matching
        the ``count_per_node=-2`` style placement of Figure 17.
    model_dim:
        ``M`` — fflayer channel size.
    hidden_dim:
        ``V`` — fflayer hidden size.
    tokens_per_gpu:
        ``T`` — tokens in the local batch of a single GPU per step.
    top_k:
        ``k`` — routing fan-out.
    capacity_factor:
        ``f`` — see Equation (1).  This is the *static* value; dynamic
        adjustment semantics live in :mod:`repro.moe.capacity`.
    dtype_bytes:
        Bytes per element for activations exchanged in All-to-All
        (2 for fp16/bf16, 4 for fp32).
    """

    world_size: int = 1
    gpus_per_node: int = 8
    experts_per_gpu: float = 1.0
    model_dim: int = 1024
    hidden_dim: int = 4096
    tokens_per_gpu: int = 4096
    top_k: int = 2
    capacity_factor: float = 1.0
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}")
        if self.experts_per_gpu <= 0:
            raise ValueError(
                f"experts_per_gpu must be > 0, got {self.experts_per_gpu}")
        if self.experts_per_gpu < 1:
            shards = 1.0 / self.experts_per_gpu
            if abs(shards - round(shards)) > 1e-9:
                raise ValueError(
                    "fractional experts_per_gpu must be 1/int "
                    f"(one expert over an integer GPU count), got "
                    f"{self.experts_per_gpu}")
            if self.world_size % round(shards) != 0:
                raise ValueError(
                    f"world_size {self.world_size} is not divisible by the "
                    f"expert shard count {round(shards)}")
        if self.model_dim < 1 or self.hidden_dim < 1:
            raise ValueError("model_dim and hidden_dim must be >= 1")
        if self.tokens_per_gpu < 1:
            raise ValueError(
                f"tokens_per_gpu must be >= 1, got {self.tokens_per_gpu}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.top_k > self.num_global_experts:
            raise ValueError(
                f"top_k ({self.top_k}) cannot exceed the number of global "
                f"experts ({self.num_global_experts})")
        if self.capacity_factor <= 0:
            raise ValueError(
                f"capacity_factor must be > 0, got {self.capacity_factor}")
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported dtype_bytes {self.dtype_bytes}")

    # ------------------------------------------------------------------
    # Derived quantities (Table 2)
    # ------------------------------------------------------------------

    @property
    def num_global_experts(self) -> int:
        """``E = max(1, W * dE)`` global experts."""
        return max(1, round(self.world_size * self.experts_per_gpu))

    @property
    def expert_shards(self) -> int:
        """How many GPUs one expert is sharded over (``n-sharded`` of P2).

        1 when each GPU holds at least one whole expert.
        """
        if self.experts_per_gpu >= 1:
            return 1
        return round(1.0 / self.experts_per_gpu)

    @property
    def capacity_per_gpu(self) -> int:
        """``dC`` — per-source-GPU capacity slice of one expert."""
        return expert_capacity(self.top_k, self.capacity_factor,
                               self.tokens_per_gpu, self.num_global_experts)

    @property
    def global_capacity(self) -> int:
        """``C = W * dC`` — total capacity of one expert."""
        return self.world_size * self.capacity_per_gpu

    @property
    def num_nodes(self) -> int:
        """Number of nodes (world size may not fill the last node)."""
        return max(1, math.ceil(self.world_size / self.gpus_per_node))

    @property
    def dispatch_bytes_per_gpu(self) -> int:
        """Bytes each GPU contributes to the dispatch All-to-All.

        The dispatch input layout is ``(E, dC, M)`` (Table 3).
        """
        return (self.num_global_experts * self.capacity_per_gpu
                * self.model_dim * self.dtype_bytes)

    @property
    def expert_parameter_count(self) -> int:
        """Parameters of one expert fflayer (two weight matrices)."""
        return 2 * self.model_dim * self.hidden_dim

    @property
    def expert_parameter_bytes(self) -> int:
        """Bytes of one expert's parameters at the activation dtype."""
        return self.expert_parameter_count * self.dtype_bytes

    @property
    def tokens_per_step(self) -> int:
        """Global tokens processed per step across all GPUs."""
        return self.tokens_per_gpu * self.world_size

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def with_(self, **overrides) -> "MoEConfig":
        """Return a copy with ``overrides`` applied."""
        return dataclasses.replace(self, **overrides)

    def describe(self) -> str:
        """Short human-readable summary used by the bench harness."""
        return (f"W={self.world_size} E={self.num_global_experts} "
                f"dE={self.experts_per_gpu} M={self.model_dim} "
                f"V={self.hidden_dim} T={self.tokens_per_gpu} "
                f"k={self.top_k} f={self.capacity_factor}")
