"""Core configuration and shared utilities."""

from repro.core.config import MoEConfig, expert_capacity
from repro.core.substrate import (
    default_dtype,
    default_itemsize,
    expert_parallelism,
    expert_workers,
    resolve_dtype,
    set_default_dtype,
    set_expert_workers,
    substrate_dtype,
)
from repro.core.units import GIB, KIB, MIB, fmt_bytes, fmt_rate, fmt_time

__all__ = [
    "MoEConfig",
    "expert_capacity",
    "default_dtype",
    "default_itemsize",
    "expert_parallelism",
    "expert_workers",
    "resolve_dtype",
    "set_default_dtype",
    "set_expert_workers",
    "substrate_dtype",
    "KIB",
    "MIB",
    "GIB",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
]
