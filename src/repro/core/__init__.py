"""Core configuration and shared utilities."""

from repro.core.config import MoEConfig, expert_capacity
from repro.core.units import GIB, KIB, MIB, fmt_bytes, fmt_rate, fmt_time

__all__ = [
    "MoEConfig",
    "expert_capacity",
    "KIB",
    "MIB",
    "GIB",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
]
