"""Small unit helpers used across cost models and bench output."""

from __future__ import annotations

__all__ = [
    "KIB", "MIB", "GIB",
    "US", "MS",
    "fmt_bytes", "fmt_time", "fmt_rate",
]

KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3

US = 1e-6
MS = 1e-3


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary unit suffix."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (us / ms / s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def fmt_rate(bytes_per_second: float) -> str:
    """Format a bandwidth in GB/s (decimal, as NCCL reports busbw)."""
    return f"{bytes_per_second / 1e9:.2f} GB/s"
