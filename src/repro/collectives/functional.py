"""Functional (data-moving) collectives over simulated ranks.

Every algorithm here operates on a list of per-rank NumPy arrays — the
"world" — and returns the per-rank results.  These are the correctness
half of the collectives layer: the 2DH algorithm (paper Algorithm 3 /
Figure 15) must produce byte-identical output to the linear algorithm
(paper Algorithm 1), and the tests assert exactly that.  The latency
half lives in :mod:`repro.collectives.schedule`.

Conventions: for plain All-to-All each rank's input has leading
dimension ``n`` (one chunk per destination rank); rank ``r``'s output
row ``s`` is rank ``s``'s input row ``r``.
"""

from __future__ import annotations

import numpy as np

from repro.obs import CAT_COLLECTIVE
from repro.obs import span as _span

__all__ = [
    "all_to_all_linear",
    "stride_memcpy",
    "all_to_all_2dh",
    "all_to_all_2dh_phases",
    "all_to_all_3dh",
    "flexible_all_to_all",
    "all_gather",
    "reduce_scatter",
    "all_reduce",
]


def _check_world(inputs: list[np.ndarray]) -> int:
    n = len(inputs)
    if n == 0:
        raise ValueError("world must contain at least one rank")
    shape = inputs[0].shape
    for r, arr in enumerate(inputs):
        if arr.shape != shape:
            raise ValueError(
                f"rank {r} has shape {arr.shape}, expected {shape}")
    return n


def all_to_all_linear(inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Linear All-to-All (paper Algorithm 1).

    ``inputs[r]`` has shape ``(n, ...)``; ``outputs[r][s] == inputs[s][r]``.
    """
    n = _check_world(inputs)
    for r, arr in enumerate(inputs):
        if arr.shape[0] != n:
            raise ValueError(
                f"rank {r} input leading dim {arr.shape[0]} != world {n}")
    with _span("all_to_all_linear", CAT_COLLECTIVE):
        return [np.stack([inputs[s][r] for s in range(n)])
                for r in range(n)]


def stride_memcpy(buf: np.ndarray, row: int, col: int) -> np.ndarray:
    """Chunk-grid transpose used by 2DH phases 1 and 3 (Algorithm 3).

    The buffer is viewed as ``col x row`` equal chunks in row-major
    order and rewritten as the ``row x col`` transpose, aligning chunks
    that share a destination into contiguous runs.
    """
    if row < 1 or col < 1:
        raise ValueError(f"row and col must be >= 1, got {row}, {col}")
    if buf.shape[0] != row * col:
        raise ValueError(
            f"buffer leading dim {buf.shape[0]} != row*col = {row * col}")
    grid = buf.reshape(col, row, *buf.shape[1:])
    return np.ascontiguousarray(grid.swapaxes(0, 1)).reshape(buf.shape)


def _intra_node_exchange(buffers: list[np.ndarray], gpus_per_node: int,
                         block: int) -> list[np.ndarray]:
    """All-to-All within each node, moving contiguous blocks of
    ``block`` chunks between local peers (2DH phase 2)."""
    n = len(buffers)
    out = [np.empty_like(b) for b in buffers]
    for node_start in range(0, n, gpus_per_node):
        local = list(range(node_start, min(node_start + gpus_per_node, n)))
        for dst_idx, dst in enumerate(local):
            parts = [buffers[src][dst_idx * block:(dst_idx + 1) * block]
                     for src in local]
            out[dst] = np.concatenate(parts, axis=0)
    return out


def _inter_node_exchange(buffers: list[np.ndarray], gpus_per_node: int,
                         block: int) -> list[np.ndarray]:
    """All-to-All between same-local-rank GPUs of different nodes,
    moving contiguous blocks of ``block`` chunks (2DH phase 4)."""
    n = len(buffers)
    nnodes = -(-n // gpus_per_node)
    out = [np.empty_like(b) for b in buffers]
    for local_rank in range(min(gpus_per_node, n)):
        rail = [node * gpus_per_node + local_rank for node in range(nnodes)
                if node * gpus_per_node + local_rank < n]
        for dst_idx, dst in enumerate(rail):
            parts = [buffers[src][dst_idx * block:(dst_idx + 1) * block]
                     for src in rail]
            out[dst] = np.concatenate(parts, axis=0)
    return out


def all_to_all_2dh_phases(
        inputs: list[np.ndarray],
        gpus_per_node: int) -> list[list[np.ndarray]]:
    """All intermediate layouts of 2DH All-to-All (paper Figure 15).

    Returns ``[initial, phase1, phase2, phase3, phase4]`` where each
    entry is the per-rank buffer list.  Exposed so tests can assert the
    exact data layouts drawn in the figure.
    """
    n = _check_world(inputs)
    if n % gpus_per_node != 0:
        raise ValueError(
            f"world size {n} must be a multiple of gpus_per_node "
            f"{gpus_per_node} for 2DH")
    nnodes = n // gpus_per_node
    m = gpus_per_node

    with _span("all_to_all_2dh", CAT_COLLECTIVE):
        phases = [list(inputs)]
        # Phase 1: align chunks sharing the same destination local rank.
        p1 = [stride_memcpy(b, row=m, col=nnodes) for b in phases[-1]]
        phases.append(p1)
        # Phase 2: intra-node All-to-All of nnodes-chunk blocks.
        phases.append(_intra_node_exchange(p1, m, block=nnodes))
        # Phase 3: align chunks sharing the same destination node.
        p3 = [stride_memcpy(b, row=nnodes, col=m) for b in phases[-1]]
        phases.append(p3)
        # Phase 4: inter-node All-to-All of m-chunk blocks.
        phases.append(_inter_node_exchange(p3, m, block=m))
    return phases


def all_to_all_2dh(inputs: list[np.ndarray],
                   gpus_per_node: int) -> list[np.ndarray]:
    """Two-dimensional hierarchical All-to-All (paper Algorithm 3).

    Produces the same result as :func:`all_to_all_linear` while only
    ever sending large aggregated messages.
    """
    return all_to_all_2dh_phases(inputs, gpus_per_node)[-1]


def all_to_all_3dh(inputs: list[np.ndarray], gpus_per_node: int,
                   nodes_per_group: int) -> list[np.ndarray]:
    """Three-level hierarchical All-to-All (paper Section 4.3).

    For dragonfly-style topologies the paper proposes splitting the
    inter-node exchange into intra-group and inter-group levels.  This
    realizes it by recursion: the cluster is viewed as *groups* of
    ``gpus_per_node * nodes_per_group`` GPUs; the outer two phases are
    the 2DH construction at group granularity, and the intra-group
    exchange is itself performed with 2DH (so NVLink aggregation still
    happens at the innermost level).  Produces output identical to
    :func:`all_to_all_linear`.
    """
    n = _check_world(inputs)
    group = gpus_per_node * nodes_per_group
    if n % group != 0:
        raise ValueError(
            f"world size {n} must be a multiple of the group size "
            f"{group} (= {gpus_per_node} GPUs x {nodes_per_group} "
            "nodes)")
    ngroups = n // group
    if inputs[0].shape[0] != n:
        raise ValueError(
            f"input leading dim {inputs[0].shape[0]} != world {n}")
    chunk_shape = inputs[0].shape[1:]

    with _span("all_to_all_3dh", CAT_COLLECTIVE):
        return _all_to_all_3dh_body(inputs, gpus_per_node, n, group,
                                    ngroups, chunk_shape)


def _all_to_all_3dh_body(inputs: list[np.ndarray], gpus_per_node: int,
                         n: int, group: int, ngroups: int,
                         chunk_shape: tuple) -> list[np.ndarray]:
    # Phase 1: align chunks by destination position-within-group.
    p1 = [stride_memcpy(b, row=group, col=ngroups) for b in inputs]
    # Phase 2: intra-group All-to-All of ngroups-chunk blocks,
    # performed hierarchically (2DH) inside each group.
    p2: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for g0 in range(0, n, group):
        sub = [p1[g0 + i].reshape(group, -1) for i in range(group)]
        exchanged = all_to_all_2dh(sub, gpus_per_node=gpus_per_node)
        for i in range(group):
            p2[g0 + i] = exchanged[i].reshape(n, *chunk_shape)
    # Phase 3: align chunks by destination group.
    p3 = [stride_memcpy(b, row=ngroups, col=group) for b in p2]
    # Phase 4: inter-group All-to-All of group-sized blocks between
    # same-position ranks of each group.
    out = [np.empty_like(b) for b in p3]
    for pos in range(group):
        rail = [g * group + pos for g in range(ngroups)]
        for dst_idx, dst in enumerate(rail):
            parts = [p3[src][dst_idx * group:(dst_idx + 1) * group]
                     for src in rail]
            out[dst] = np.concatenate(parts, axis=0)
    return out


def flexible_all_to_all(inputs: list[np.ndarray], concat_dim: int,
                        split_dim: int) -> list[np.ndarray]:
    """Flexible All-to-All (paper Section 3.1, Table 3).

    Splits each rank's tensor into ``n`` equal parts along
    ``split_dim``, exchanges part ``r`` to rank ``r``, and concatenates
    the received parts along ``concat_dim``.  With MoE dispatch inputs
    of layout ``(E, dC, M)``:

    - ``flexible_all_to_all(x, 1, 0)`` yields ``(dE, C, M)`` — the
      scale-independent layout used for expert computation;
    - ``flexible_all_to_all(y, 0, 1)`` is its inverse for combine.
    """
    n = _check_world(inputs)
    ndim = inputs[0].ndim
    for name, dim in (("concat_dim", concat_dim), ("split_dim", split_dim)):
        if not 0 <= dim < ndim:
            raise ValueError(f"{name} {dim} out of range for ndim {ndim}")
    if inputs[0].shape[split_dim] % n != 0:
        raise ValueError(
            f"dimension {split_dim} of size {inputs[0].shape[split_dim]} "
            f"is not divisible by world size {n}")
    with _span("flexible_all_to_all", CAT_COLLECTIVE):
        split_parts = [np.split(arr, n, axis=split_dim) for arr in inputs]
        return [np.concatenate([split_parts[s][r] for s in range(n)],
                               axis=concat_dim)
                for r in range(n)]


def all_gather(inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Each rank receives the concatenation of every rank's shard."""
    _check_world(inputs)
    with _span("all_gather", CAT_COLLECTIVE):
        gathered = np.concatenate(inputs, axis=0)
        return [gathered.copy() for _ in inputs]


def reduce_scatter(inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Sum across ranks, then scatter equal shards along dim 0."""
    n = _check_world(inputs)
    if inputs[0].shape[0] % n != 0:
        raise ValueError(
            f"leading dim {inputs[0].shape[0]} not divisible by world {n}")
    with _span("reduce_scatter", CAT_COLLECTIVE):
        total = np.sum(np.stack(inputs), axis=0)
        return list(np.split(total, n, axis=0))


def all_reduce(inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Every rank receives the elementwise sum across ranks."""
    _check_world(inputs)
    with _span("all_reduce", CAT_COLLECTIVE):
        total = np.sum(np.stack(inputs), axis=0)
        return [total.copy() for _ in inputs]
