"""Analytic latency models for the collective algorithms.

For symmetric collectives every rank does identical work, so one
representative GPU's message schedule determines the collective's
latency in closed form.  The models below implement the arithmetic of
paper Sections 2.4 / 3.4 / 4.3:

* **linear** All-to-All: ``n - 1`` point-to-point messages of ``S/n``
  bytes each, per-message overhead dominating at scale; in a
  rail-optimized fabric most of those messages are additionally
  cross-rail.
* **naive local aggregation**: an intra-node phase that degenerates to
  ``n/m`` rounds of non-contiguous exchanges (the ~600 us -> ~5 ms
  blow-up quoted in Section 3.4), then an aggregated inter-node phase.
* **2DH**: two aligned stride copies + an intra-node All-to-All of
  ``S/m`` messages + an on-rail inter-node All-to-All of ``m * S/n``
  messages (Algorithm 3).
* **MSCCL-optimized 2DH** removes the inter-phase synchronization
  barriers of the NCCL implementation, and the **LL128** protocol
  trades a ~5% bandwidth cap for much lower per-message overhead
  (Section 4.3 / Figure 21).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.linkmodel import stride_memcpy_time
from repro.cluster.topology import ClusterTopology, LinkSpec

__all__ = [
    "A2AAlgorithm",
    "Protocol",
    "Impl",
    "CollectiveCostModel",
    "linear_a2a_time",
    "naive_local_agg_a2a_time",
    "twodh_a2a_time",
    "threedh_a2a_time",
    "a2a_time",
    "all_gather_time",
    "reduce_scatter_time",
    "all_reduce_time",
    "best_a2a_algorithm",
    "feasible_a2a_algorithms",
]


class A2AAlgorithm(enum.Enum):
    """All-to-All algorithm choices exposed to adaptive pipelining."""

    LINEAR = "linear"
    NAIVE_LOCAL_AGG = "naive_local_agg"
    TWO_DH = "2dh"


class Protocol(enum.Enum):
    """NCCL transfer protocol (Section 4.3)."""

    SIMPLE = "simple"
    LL128 = "ll128"


class Impl(enum.Enum):
    """Implementation backend for hierarchical algorithms."""

    NCCL = "nccl"          # ncclSend/ncclRecv with inter-phase barriers
    MSCCL = "msccl"        # fused DSL-compiled schedule, no barriers


@dataclass(frozen=True)
class CollectiveCostModel:
    """Tunable second-order constants of the collective models.

    Attributes
    ----------
    cross_rail_overhead:
        Multiplier on per-message overhead for messages between GPUs
        with different local ranks on a rail-optimized fabric (extra
        switch tier / adaptive-routing spraying).
    cross_rail_bandwidth:
        Bandwidth derate for cross-rail messages (adaptive routing
        recovers most of the bandwidth for large flows).
    phase_barrier:
        Synchronization cost between 2DH phases in the NCCL
        implementation; MSCCL fuses the phases and skips it.
    ll128_overhead_factor / ll128_bandwidth_factor:
        LL128 lowers per-message latency but caps achievable bandwidth.
    """

    cross_rail_overhead: float = 2.5
    cross_rail_bandwidth: float = 0.90
    phase_barrier: float = 18e-6
    ll128_overhead_factor: float = 0.35
    ll128_bandwidth_factor: float = 0.95


_DEFAULT = CollectiveCostModel()


def _with_protocol(link: LinkSpec, protocol: Protocol,
                   model: CollectiveCostModel) -> LinkSpec:
    if protocol is Protocol.SIMPLE:
        return link
    return LinkSpec(
        bandwidth=link.bandwidth * model.ll128_bandwidth_factor,
        latency=link.latency * 0.5,
        message_overhead=link.message_overhead * model.ll128_overhead_factor,
    )


def _cross_rail(link: LinkSpec, model: CollectiveCostModel) -> LinkSpec:
    return LinkSpec(
        bandwidth=link.bandwidth * model.cross_rail_bandwidth,
        latency=link.latency,
        message_overhead=link.message_overhead * model.cross_rail_overhead,
    )


def linear_a2a_time(topo: ClusterTopology, total_bytes: float,
                    protocol: Protocol = Protocol.SIMPLE,
                    model: CollectiveCostModel = _DEFAULT) -> float:
    """Latency of the linear All-to-All (Algorithm 1).

    ``total_bytes`` is the per-GPU buffer size ``S``; each peer gets an
    ``S/n`` chunk.  Intra-node messages ride NVLink concurrently with
    the NIC, so the phase time is the max of the two streams.
    """
    n = topo.num_gpus
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if n == 1 or total_bytes == 0:
        return 0.0
    chunk = total_bytes / n
    m = topo.local_size
    intra = _with_protocol(topo.intra_link, protocol, model)
    inter = _with_protocol(topo.inter_link, protocol, model)

    intra_time = intra.stream_time(chunk, m - 1)
    inter_peers = n - m
    if inter_peers <= 0:
        return intra_time
    if topo.rail_optimized:
        # Only the destination with our own local rank is on-rail;
        # (m-1)/m of inter-node peers require cross-rail hops.
        on_rail = inter_peers // m
        off_rail = inter_peers - on_rail
        inter_time = (inter.stream_time(chunk, on_rail)
                      + _cross_rail(inter, model).stream_time(chunk,
                                                              off_rail))
    else:
        inter_time = inter.stream_time(chunk, inter_peers)
    return max(intra_time, inter_time)


def naive_local_agg_a2a_time(topo: ClusterTopology, total_bytes: float,
                             protocol: Protocol = Protocol.SIMPLE,
                             model: CollectiveCostModel = _DEFAULT) -> float:
    """Latency of the naive local-aggregation All-to-All (Figure 15 top).

    Phase 1 performs ``n/m`` successive intra-node All-to-Alls over
    non-contiguous ``S/n`` chunks — the per-round fixed costs and the
    scattered memory access make it grow with ``n`` even though the
    total bytes moved per GPU stay ``S * (m-1)/m``.
    """
    n = topo.num_gpus
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if n == 1 or total_bytes == 0:
        return 0.0
    m = topo.local_size
    nnodes = topo.num_nodes
    chunk = total_bytes / n
    intra = _with_protocol(topo.intra_link, protocol, model)
    inter = _with_protocol(topo.inter_link, protocol, model)

    rounds = max(1, nnodes)
    per_round = intra.stream_time(chunk, m - 1)
    gather_penalty = stride_memcpy_time(topo.gpu, total_bytes, chunk)
    phase1 = rounds * per_round + gather_penalty

    inter_msg = m * chunk
    phase2 = inter.stream_time(inter_msg, nnodes - 1)
    return phase1 + phase2


def twodh_a2a_time(topo: ClusterTopology, total_bytes: float,
                   protocol: Protocol = Protocol.SIMPLE,
                   impl: Impl = Impl.NCCL,
                   model: CollectiveCostModel = _DEFAULT) -> float:
    """Latency of 2DH All-to-All (Algorithm 3).

    Phases 1-3 depend only on ``S`` and ``m``; phase 4 sends
    ``nnodes - 1`` on-rail messages of ``m * S/n`` bytes, so the
    per-message overhead term scales with ``n/m`` instead of ``n``.
    """
    n = topo.num_gpus
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if n == 1 or total_bytes == 0:
        return 0.0
    m = topo.local_size
    nnodes = topo.num_nodes
    chunk = total_bytes / n
    intra = _with_protocol(topo.intra_link, protocol, model)
    inter = _with_protocol(topo.inter_link, protocol, model)

    copy1 = stride_memcpy_time(topo.gpu, total_bytes, chunk)
    phase2 = intra.stream_time(total_bytes / m, m - 1) if m > 1 else 0.0
    copy3 = stride_memcpy_time(topo.gpu, total_bytes, chunk * m)
    phase4 = (inter.stream_time(m * chunk, nnodes - 1)
              if nnodes > 1 else 0.0)

    total = copy1 + phase2 + copy3 + phase4
    if impl is Impl.NCCL:
        total += 3 * model.phase_barrier
    return total


def threedh_a2a_time(topo: ClusterTopology, total_bytes: float,
                     nodes_per_group: int = 16,
                     protocol: Protocol = Protocol.SIMPLE,
                     impl: Impl = Impl.MSCCL,
                     model: CollectiveCostModel = _DEFAULT) -> float:
    """Latency of 3-level hierarchical All-to-All (Section 4.3).

    Nodes form groups of ``nodes_per_group``; the long-haul message
    count per GPU scales with the *group* count instead of the node
    count, at the price of one more aggregation pass (an extra stride
    copy and an intra-group exchange).
    """
    n = topo.num_gpus
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if nodes_per_group < 1:
        raise ValueError(
            f"nodes_per_group must be >= 1, got {nodes_per_group}")
    if n == 1 or total_bytes == 0:
        return 0.0
    m = topo.local_size
    nnodes = topo.num_nodes
    groups = max(1, nnodes // nodes_per_group)
    g = min(nodes_per_group, nnodes)
    chunk = total_bytes / n
    intra = _with_protocol(topo.intra_link, protocol, model)
    inter = _with_protocol(topo.inter_link, protocol, model)

    copy1 = stride_memcpy_time(topo.gpu, total_bytes, chunk)
    # Intra-group level: the inner 2DH — NVLink exchange of S/m
    # messages plus an on-rail intra-group exchange of m-chunk blocks.
    level1 = intra.stream_time(total_bytes / m, m - 1) if m > 1 else 0.0
    copy2 = stride_memcpy_time(topo.gpu, total_bytes, chunk * m)
    level2 = (inter.stream_time(m * chunk, g - 1) if g > 1 else 0.0)
    copy3 = stride_memcpy_time(topo.gpu, total_bytes, chunk * m * g)
    # Inter-group level: fully aggregated group-sized blocks.
    level3 = (inter.stream_time(m * g * chunk, groups - 1)
              if groups > 1 else 0.0)

    total = copy1 + level1 + copy2 + level2 + copy3 + level3
    if impl is Impl.NCCL:
        total += 5 * model.phase_barrier
    return total


def a2a_time(topo: ClusterTopology, total_bytes: float,
             algorithm: A2AAlgorithm,
             protocol: Protocol = Protocol.SIMPLE,
             impl: Impl = Impl.NCCL,
             model: CollectiveCostModel = _DEFAULT) -> float:
    """Dispatch to the requested All-to-All algorithm's latency model."""
    if algorithm is A2AAlgorithm.LINEAR:
        return linear_a2a_time(topo, total_bytes, protocol, model)
    if algorithm is A2AAlgorithm.NAIVE_LOCAL_AGG:
        return naive_local_agg_a2a_time(topo, total_bytes, protocol, model)
    if algorithm is A2AAlgorithm.TWO_DH:
        return twodh_a2a_time(topo, total_bytes, protocol, impl, model)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def best_a2a_algorithm(topo: ClusterTopology, total_bytes: float,
                       model: CollectiveCostModel = _DEFAULT,
                       candidates: tuple[A2AAlgorithm, ...] | None = None
                       ) -> tuple[A2AAlgorithm, float]:
    """Cheapest algorithm and its latency for this size and scale.

    ``candidates`` restricts the choice — the recovery path uses this
    to exclude hierarchical algorithms while a node is asymmetric
    (see :func:`feasible_a2a_algorithms`).
    """
    if candidates is not None and not candidates:
        raise ValueError("candidates must be non-empty when given")
    pool = candidates or (A2AAlgorithm.LINEAR, A2AAlgorithm.TWO_DH)
    costs = {
        algo: a2a_time(topo, total_bytes, algo, model=model)
        for algo in pool
    }
    algo = min(costs, key=costs.__getitem__)
    return algo, costs[algo]


def feasible_a2a_algorithms(topo: ClusterTopology,
                            symmetric_nodes: bool = True
                            ) -> tuple[A2AAlgorithm, ...]:
    """Algorithms usable under the current cluster health.

    2DH's intra-node aggregation phases assume every node contributes
    ``m`` equal participants; after a rank failure that leaves a node
    partially populated (``symmetric_nodes=False``), only the linear
    All-to-All — which degrades gracefully to an arbitrary peer set —
    remains available until the rank is replaced.
    """
    if symmetric_nodes and topo.local_size > 1:
        return (A2AAlgorithm.LINEAR, A2AAlgorithm.TWO_DH)
    return (A2AAlgorithm.LINEAR,)


# ----------------------------------------------------------------------
# Ring collectives used by the parallelism strategies
# ----------------------------------------------------------------------

def _ring_group_link(topo: ClusterTopology, group_size: int) -> LinkSpec:
    """Bottleneck link of a ring spanning ``group_size`` ranks."""
    if group_size <= topo.local_size:
        return topo.intra_link
    return topo.inter_link


def all_gather_time(topo: ClusterTopology, shard_bytes: float,
                    group_size: int | None = None) -> float:
    """Ring all-gather of per-rank shards of ``shard_bytes``."""
    g = group_size or topo.num_gpus
    if g < 1:
        raise ValueError(f"group_size must be >= 1, got {g}")
    if g == 1 or shard_bytes == 0:
        return 0.0
    link = _ring_group_link(topo, g)
    return link.stream_time(shard_bytes, g - 1)


def reduce_scatter_time(topo: ClusterTopology, total_bytes: float,
                        group_size: int | None = None) -> float:
    """Ring reduce-scatter of a ``total_bytes`` buffer."""
    g = group_size or topo.num_gpus
    if g < 1:
        raise ValueError(f"group_size must be >= 1, got {g}")
    if g == 1 or total_bytes == 0:
        return 0.0
    link = _ring_group_link(topo, g)
    return link.stream_time(total_bytes / g, g - 1)


def all_reduce_time(topo: ClusterTopology, total_bytes: float,
                    group_size: int | None = None) -> float:
    """Ring all-reduce = reduce-scatter + all-gather."""
    g = group_size or topo.num_gpus
    return (reduce_scatter_time(topo, total_bytes, g)
            + all_gather_time(topo, total_bytes / max(g, 1), g))
