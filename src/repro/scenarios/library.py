"""The named, committed chaos scenarios (``repro scenario --list``).

Four scenarios cover the resilience surface the paper's adaptive
machinery has to keep working under:

* ``rank_loss_deadline`` — a rank dies mid-run; checkpoint restore plus
  lost-work replay must beat a wall-clock deadline, post-recovery step
  time must stay near pre-fault, and the modeled re-selection on the
  shrunken (asymmetric) cluster must stay within a slowdown budget.
* ``expert_death_loss_slo`` — two experts die in different layers;
  survivor-renormalized gating must keep the final loss within a
  parity bound of the fault-free twin run.
* ``link_brownout_switch`` — an asymmetric inter-node brownout forces
  the All-to-All selector off 2DH onto linear (Tutel Figure 20 logic
  under HetuMoE-style degraded-fabric conditions) and back when the
  window closes.
* ``elastic_scale`` — membership grows 16→32 then shrinks to 8; every
  re-placement's shard movement is priced through the cluster
  simulator and scale-up must actually buy throughput.

SLO bounds on deterministic (model) quantities are tight; wall-clock
bounds are deliberately generous so shared CI machines do not flake.
"""

from __future__ import annotations

from repro.scenarios.spec import (
    ElasticResize,
    ExpertDeath,
    LinkBrownout,
    RankLoss,
    Scenario,
    SLOSpec,
)

__all__ = ["SCENARIOS", "get_scenario", "scenario_names"]


SCENARIOS: dict[str, Scenario] = {}


def _register(sc: Scenario) -> Scenario:
    if sc.name in SCENARIOS:
        raise ValueError(f"duplicate scenario name {sc.name!r}")
    SCENARIOS[sc.name] = sc
    return sc


_register(Scenario(
    name="rank_loss_deadline",
    title="rank dies at step 9; restore + replay under a deadline",
    seed=11,
    steps=16,
    fast_steps=12,
    checkpoint_every=4,
    events=(RankLoss(step=9, ranks=(3,), recovery_deadline_s=20.0),),
    slo=SLOSpec(
        max_step_time_ratio=3.0,
        loss_band=(0.5, 3.9),
        max_model_slowdown=3.0,
    ),
))

_register(Scenario(
    name="expert_death_loss_slo",
    title="two experts die in different layers; loss parity vs the "
          "fault-free twin",
    seed=5,
    steps=16,
    fast_steps=12,
    checkpoint_every=4,
    num_blocks=4,  # two MoE layers, so the deaths hit distinct gates
    events=(ExpertDeath(step=4, layer=0, expert=2),
            ExpertDeath(step=7, layer=1, expert=1)),
    slo=SLOSpec(
        max_loss_parity=0.75,
        loss_band=(0.5, 3.1),
    ),
))

_register(Scenario(
    name="link_brownout_switch",
    title="asymmetric inter-node brownout forces the 2DH->linear "
          "All-to-All switch",
    seed=3,
    steps=12,
    fast_steps=10,
    checkpoint_every=4,
    sim_world=64,
    sim_experts=32,
    events=(LinkBrownout(step=3, end_step=8, factor=0.25,
                         asymmetric=True),),
    slo=SLOSpec(
        require_a2a_switch=True,
        max_model_slowdown=4.0,
        loss_band=(0.5, 3.4),
    ),
))

_register(Scenario(
    name="elastic_scale",
    title="membership 16->32->8; re-placement traffic priced through "
          "the simulator",
    seed=7,
    steps=12,
    fast_steps=10,
    checkpoint_every=4,
    sim_world=16,
    sim_experts=8,
    events=(ElasticResize(step=3, new_world=32),
            ElasticResize(step=8, new_world=8)),
    slo=SLOSpec(
        max_replacement_seconds=1.0,
        min_scaleup_throughput_ratio=1.2,
        loss_band=(0.5, 3.3),
    ),
))


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(
            f"unknown scenario {name!r}; known: {known}") from None
