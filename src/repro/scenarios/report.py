"""Aggregate scenario results into ``BENCH_scenarios.json``.

All scenarios of one ``repro scenario --all`` invocation land in a
single schema-versioned artifact so ``repro regress`` gates every
SLO verdict and every deterministic price in one place.  Metric names
are namespaced ``<scenario>.<metric>``; wall-clock metrics keep
``kind="measured"`` and are exempt from the gate.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.harness import Table
from repro.bench.report import BenchResult, Metric
from repro.bench.report import emit as bench_emit
from repro.scenarios.engine import ScenarioResult

__all__ = ["SCENARIOS_ARTIFACT", "scenario_metrics", "emit_scenarios",
           "render_results"]

SCENARIOS_ARTIFACT = "scenarios"


def scenario_metrics(results: Iterable[ScenarioResult]) -> list[Metric]:
    """Namespaced metrics of every scenario, in scenario-name order."""
    metrics: list[Metric] = []
    for res in sorted(results, key=lambda r: r.scenario.name):
        for m in res.metrics:
            metrics.append(Metric(
                name=f"{res.scenario.name}.{m.name}", value=m.value,
                unit=m.unit, kind=m.kind,
                higher_is_better=m.higher_is_better,
                tolerance=m.tolerance))
    return metrics


def emit_scenarios(results: Iterable[ScenarioResult], *,
                   fast: bool,
                   directory=None,
                   verbose: bool = False) -> BenchResult:
    """Write (when configured) the combined scenario bench record."""
    results = list(results)
    config = {
        "mode": "fast" if fast else "full",
        "scenarios": sorted(r.scenario.name for r in results),
        "seeds": {r.scenario.name: r.scenario.seed for r in results},
    }
    return bench_emit(
        SCENARIOS_ARTIFACT,
        "Chaos scenarios: SLO gates over seeded fault timelines",
        scenario_metrics(results),
        config=config, directory=directory, verbose=verbose)


def render_results(results: Iterable[ScenarioResult]) -> str:
    """Human summary table of a scenario batch."""
    table = Table(
        "scenario SLO report",
        ["scenario", "seed", "steps", "events", "checks", "failed",
         "verdict"])
    for res in sorted(results, key=lambda r: r.scenario.name):
        sc = res.scenario
        failed = sum(1 for c in res.checks if not c.passed)
        table.add_row(sc.name, sc.seed, sc.steps, len(sc.events),
                      len(res.checks), failed,
                      "PASS" if res.passed else "FAIL")
    return table.render()
