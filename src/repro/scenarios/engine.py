"""Scenario executor: play a chaos timeline, assert the SLOs.

One :func:`run_scenario` call drives a :class:`~repro.scenarios.spec.
Scenario` end to end:

* **Functional substrate** — the toy MoE classifier actually trains
  through the timeline.  A :class:`RankLoss` kills the process image:
  the model object is discarded and rebuilt, training resumes from the
  latest checkpoint (bit-identically, so deterministic metrics survive
  the fault), and the wall clock from kill to re-reaching the pre-fault
  step is held against the recovery deadline.  An :class:`ExpertDeath`
  calls ``fail_expert`` mid-run; survivor gating renormalizes and a
  fault-free twin run (same seed) bounds the loss damage.
* **Performance substrate** — every event is priced on the simulated
  cluster: rank loss re-runs :func:`~repro.resilience.recovery.
  reselect_strategy` under whatever brownout is active at that step
  (compound faults), a :class:`LinkBrownout` re-selects the All-to-All
  algorithm on the derated fabric (the 2DH→linear switch), and an
  :class:`ElasticResize` re-derives the expert placement and simulates
  the shard movement through :mod:`repro.cluster.simulator`.

Everything is recorded through the run registry when ``REPRO_RUNS_DIR``
is set — ``scenario`` / ``fault`` / ``recovery`` / ``strategy_switch``
/ ``slo_check`` events land in the same stream the trainer writes, so
``repro dashboard`` shows the fault/recovery/SLO timeline.  On a rank
loss the engine compacts its own run via ``RunWriter.resume`` so the
replayed steps do not appear twice.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from statistics import median
from time import perf_counter

import numpy as np

from repro.bench.report import Metric
from repro.cluster.simulator import Schedule, simulate
from repro.cluster.topology import ClusterTopology, ndv4_topology
from repro.core.config import MoEConfig
from repro.obs import get_observer
from repro.obs.runs import RunWriter, env_runs_root, get_run, set_run
from repro.parallel.placement import ExpertPlacement, build_placement
from repro.parallel.strategy import best_strategy
from repro.collectives.schedule import feasible_a2a_algorithms
from repro.resilience.recovery import reselect_strategy
from repro.scenarios.spec import Scenario

__all__ = [
    "SLOCheck",
    "ScenarioResult",
    "run_scenario",
    "price_replacement",
]


@dataclass(frozen=True)
class SLOCheck:
    """One pass/fail assertion of the scenario's SLO report.

    ``measured=True`` marks wall-clock-derived values — they stay out
    of the determinism contract (and the regression gate) but still
    gate the scenario run itself.
    """

    name: str
    value: float
    bound: float
    op: str  # "<=" or ">="
    measured: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"op must be '<=' or '>=', got {self.op!r}")

    @property
    def passed(self) -> bool:
        if self.op == "<=":
            return self.value <= self.bound
        return self.value >= self.bound

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        tag = " (wall-clock)" if self.measured else ""
        return (f"[{verdict}] {self.name}: {self.value:.6g} "
                f"{self.op} {self.bound:.6g}{tag}")


@dataclass
class ScenarioResult:
    """SLO report plus everything the run produced."""

    scenario: Scenario
    fast: bool
    checks: list[SLOCheck] = field(default_factory=list)
    metrics: list[Metric] = field(default_factory=list)
    timeline: list[dict] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    eval_accuracy: float = 0.0
    run_id: str | None = None

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def metric(self, name: str) -> Metric:
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(f"scenario metric {name!r} not recorded")

    def describe(self) -> str:
        sc = self.scenario
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"scenario {sc.name} (seed {sc.seed}, "
                 f"{sc.steps} steps{', fast' if self.fast else ''}) "
                 f"-> {verdict}",
                 f"  {sc.title}",
                 "-- timeline --"]
        for ev in self.timeline:
            detail = ", ".join(f"{k}={v}" for k, v in ev.items()
                               if k not in ("step", "kind"))
            lines.append(f"  step {ev['step']:>4}  {ev['kind']:<16} "
                         f"{detail}")
        lines.append("-- SLO report --")
        for check in self.checks:
            lines.append(f"  {check.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Performance-substrate pricing
# ----------------------------------------------------------------------

def _placement_for(world: int, experts: int) -> ExpertPlacement:
    """Canonical expert placement at a given world size."""
    if world >= experts:
        if world % experts != 0:
            raise ValueError(
                f"world {world} not divisible by {experts} experts")
        shards = world // experts
        return build_placement(world, -shards if shards > 1 else 1)
    if experts % world != 0:
        raise ValueError(
            f"{experts} experts not divisible over world {world}")
    return build_placement(world, experts // world)


def price_replacement(old_world: int, new_world: int, experts: int,
                      topology: ClusterTopology,
                      param_bytes: float) -> tuple[float, float]:
    """Simulated (makespan seconds, bytes moved) of a membership change.

    Every expert shard a new-placement host does not already hold is
    copied from one current host; each source GPU serializes its
    outgoing copies on its comm stream and the cluster simulator turns
    the transfer DAG into a makespan.  ``topology`` must span
    ``max(old_world, new_world)`` ranks (pass a calibrated topology's
    ``at_world`` result to price on fitted link coefficients).
    """
    if topology.num_gpus < max(old_world, new_world):
        raise ValueError(
            f"topology spans {topology.num_gpus} GPUs, need "
            f"{max(old_world, new_world)}")
    old_pl = _placement_for(old_world, experts)
    new_pl = _placement_for(new_world, experts)
    schedule = Schedule()
    moved = 0.0
    transfers = 0
    for e in range(experts):
        old_hosts = old_pl.gpus_of_expert(e)
        new_hosts = new_pl.gpus_of_expert(e)
        shard_bytes = param_bytes / new_pl.shards_per_expert
        src = min(old_hosts)
        for g in new_hosts:
            if g in old_hosts:
                continue
            link = topology.link_between(src, g)
            schedule.new_op(work=link.message_time(shard_bytes),
                            gpu=src, stream="comm", kind="comm",
                            label=f"replace/e{e}->g{g}")
            moved += shard_bytes
            transfers += 1
    if transfers == 0:
        return 0.0, 0.0
    return simulate(schedule).makespan, moved


def _sim_shapes(sc: Scenario,
                topology_fn) -> tuple[MoEConfig, ClusterTopology]:
    cfg = MoEConfig(model_dim=1024, hidden_dim=4096,
                    tokens_per_gpu=4096,
                    experts_per_gpu=sc.sim_experts / sc.sim_world,
                    world_size=sc.sim_world, top_k=2)
    return cfg, topology_fn(sc.sim_world)


def _throughput(cfg: MoEConfig, topo: ClusterTopology) -> float:
    best = best_strategy(cfg, topo)
    return cfg.tokens_per_step / best.total_time


# ----------------------------------------------------------------------
# Functional-substrate helpers
# ----------------------------------------------------------------------

def _build_model(sc: Scenario):
    from repro.nn.models import MoEClassifier
    return MoEClassifier(
        input_dim=sc.input_dim, model_dim=sc.model_dim,
        hidden_dim=sc.hidden_dim, num_classes=sc.num_classes,
        num_blocks=sc.num_blocks, num_experts=sc.num_experts,
        rng=np.random.default_rng(sc.seed + 1), top_k=sc.top_k)


def _build_batches(sc: Scenario):
    from repro.train.data import ClusteredTokenTask
    task = ClusteredTokenTask(num_clusters=sc.num_experts,
                              input_dim=sc.input_dim,
                              num_classes=sc.num_classes, seed=sc.seed)
    data_rng = np.random.default_rng(sc.seed + 17)
    return (task.sample(sc.train_tokens, data_rng),
            task.sample(sc.test_tokens, data_rng))


@contextmanager
def _no_run_recording():
    """Silence the run registry (for the fault-free twin run)."""
    previous = set_run(None)
    env = os.environ.pop("REPRO_RUNS_DIR", None)
    try:
        yield
    finally:
        if env is not None:
            os.environ["REPRO_RUNS_DIR"] = env
        set_run(previous)


def _ckpt_step(path: str) -> int:
    """Step encoded in a trainer checkpoint filename."""
    stem = os.path.basename(path)
    return int(stem.replace("ckpt_", "").replace(".npz", ""))


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

def run_scenario(scenario: Scenario, fast: bool = False,
                 checkpoint_dir: str | None = None,
                 calibrated=None) -> ScenarioResult:
    """Execute one scenario; never raises on an SLO miss — the report
    carries the verdict (``repro scenario`` turns it into exit codes).

    ``calibrated`` is an optional
    :class:`repro.obs.calibrate.CalibratedTopology`; when given, every
    performance-substrate price (recovery re-selection, brownout
    switch, elastic re-placement) is computed on the fitted link and
    GPU coefficients instead of the nominal NDv4 model.
    """
    sc = scenario.resolved(fast)
    topology_fn = (calibrated.at_world if calibrated is not None
                   else ndv4_topology)
    result = ScenarioResult(scenario=sc, fast=fast)

    auto_run = None
    if get_run() is None and env_runs_root() is not None:
        auto_run = RunWriter.create(
            seed=sc.seed,
            config={"kind": "scenario", "name": sc.name,
                    "steps": sc.steps, "fast": fast},
            substrate="scenario")
        set_run(auto_run)
    run = get_run()
    if run is not None:
        result.run_id = run.manifest.run_id
        run.emit("scenario", step=0, data={
            "kind": "begin", "name": sc.name, "seed": sc.seed,
            "steps": sc.steps, "events": len(sc.events)})

    temp_dir = None
    if checkpoint_dir is None:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-scenario-")
        checkpoint_dir = temp_dir.name
    try:
        _execute(sc, result, checkpoint_dir, topology_fn,
                 own_run_id=(auto_run.manifest.run_id
                             if auto_run is not None else None))
        run = get_run()  # compaction may have swapped the writer
        if run is not None:
            for check in result.checks:
                run.emit("slo_check", step=-1, data={
                    "name": check.name, "value": check.value,
                    "bound": check.bound, "op": check.op,
                    "measured": check.measured,
                    "passed": check.passed})
        if auto_run is not None:
            auto_run = get_run()
            ob = get_observer()
            auto_run.finalize(
                registry_snapshot=(ob.registry.snapshot()
                                   if ob is not None else None),
                summary={
                    "scenario": sc.name,
                    "passed": result.passed,
                    "checks": len(result.checks),
                    "checks_failed": sum(1 for c in result.checks
                                         if not c.passed),
                    "final_train_loss": (result.losses[-1]
                                         if result.losses else None),
                    "eval_accuracy": result.eval_accuracy,
                })
        return result
    finally:
        if auto_run is not None:
            get_run().close()
            set_run(None)
        if temp_dir is not None:
            temp_dir.cleanup()


def _execute(sc: Scenario, result: ScenarioResult,
             checkpoint_dir: str, topology_fn,
             own_run_id: str | None = None) -> None:
    from repro.train.trainer import train_model

    train_batch, test_batch = _build_batches(sc)
    sim_cfg, sim_topo = _sim_shapes(sc, topology_fn)
    slo = sc.slo

    deaths_by_step: dict[int, list] = {}
    for ev in sc.expert_deaths:
        deaths_by_step.setdefault(ev.step, []).append(ev)
    deaths_recorded: set = set()

    def make_hook(catchup: dict | None):
        def hook(step: int, model) -> None:
            if catchup is not None and catchup.get("at") is None \
                    and step >= catchup["target"]:
                catchup["at"] = perf_counter()
            for ev in deaths_by_step.get(step, ()):
                # Replayed steps re-apply the (idempotent) failure so
                # the resumed segment stays bit-identical; record the
                # event only the first time through.
                model.fail_expert(ev.layer, ev.expert)
                key = (ev.step, ev.layer, ev.expert)
                if key not in deaths_recorded:
                    deaths_recorded.add(key)
                    result.timeline.append({
                        "step": step, "kind": "expert_death",
                        "layer": ev.layer, "expert": ev.expert})
                    run = get_run()
                    if run is not None:
                        run.emit("fault", step=step, data={
                            "kind": "expert_failure",
                            "layer": ev.layer, "expert": ev.expert})
        return hook

    def train_segment(until: int, resume: str | None,
                      catchup: dict | None):
        model = _build_model(sc)
        return train_model(
            model, train_batch, test_batch, steps=until,
            batch_size=sc.batch_size, seed=sc.seed,
            checkpoint_every=sc.checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume, step_hook=make_hook(catchup))

    # -- training drive, split at every rank loss -----------------------
    model_slowdowns: list[float] = []
    recovery_walls: list[tuple[float, float]] = []  # (secs, deadline)
    replay_steps: list[int] = []
    segment_results = []
    all_ckpts: list[str] = []
    resume_path: str | None = None
    pending_catchup: dict | None = None

    for rl in sc.rank_losses:
        seg = train_segment(rl.step, resume_path, pending_catchup)
        segment_results.append(seg)
        all_ckpts.extend(seg.checkpoint_paths)
        t_kill = perf_counter()
        if pending_catchup is not None:
            recovery_walls.append(
                (pending_catchup.get("at", t_kill)
                 - pending_catchup["killed"],
                 pending_catchup["deadline"]))
        resume_path = all_ckpts[-1]
        from_step = _ckpt_step(resume_path)
        replay_steps.append(rl.step - from_step)

        # Only a run the engine itself opened gets compacted — the
        # resumed trainer re-emits the replayed steps and
        # RunWriter.resume drops the originals (PR4 contract); a
        # caller-owned stream is never rewritten.
        run = get_run()
        if run is not None and own_run_id == run.manifest.run_id:
            directory = run.directory
            run.close()
            run = RunWriter.resume(directory, from_step=from_step)
            set_run(run)
        if run is not None:
            run.begin_step(rl.step)

        # Price the recovery on the simulated cluster, under whatever
        # brownout is active at the fault step (compound faults).
        factor, _ = sc.brownout_factor_at(rl.step)
        decision = reselect_strategy(sim_cfg, sim_topo,
                                     list(rl.ranks),
                                     link_degradation=factor)
        model_slowdowns.append(decision.slowdown)
        result.timeline.append({
            "step": rl.step, "kind": "rank_loss",
            "ranks": list(rl.ranks),
            "restore_from": from_step,
            "surviving_world": decision.surviving_world,
            "strategy": decision.cost.strategy.value,
            "a2a": decision.cost.a2a_algorithm.value,
            "model_slowdown": round(decision.slowdown, 4)})
        pending_catchup = {"target": rl.step, "killed": t_kill,
                           "deadline": rl.recovery_deadline_s,
                           "at": None}

    final = train_segment(sc.steps, resume_path, pending_catchup)
    segment_results.append(final)
    end_wall = perf_counter()
    if pending_catchup is not None:
        recovery_walls.append(
            (pending_catchup.get("at", end_wall)
             - pending_catchup["killed"],
             pending_catchup["deadline"]))

    result.losses = list(final.losses)
    result.eval_accuracy = final.eval_accuracy

    # -- sim-only events: brownout switches, elastic resizes ------------
    a2a_switched = None
    for ev in sc.brownouts:
        healthy = best_strategy(sim_cfg, sim_topo)
        browned_topo = sim_topo.with_degraded_inter_link(ev.factor)
        candidates = feasible_a2a_algorithms(
            browned_topo, symmetric_nodes=not ev.asymmetric)
        browned = best_strategy(sim_cfg, browned_topo,
                                a2a_candidates=candidates)
        switched = (browned.a2a_algorithm != healthy.a2a_algorithm)
        a2a_switched = bool(a2a_switched) or switched
        slowdown = (browned.total_time / healthy.total_time
                    if healthy.total_time > 0 else 1.0)
        model_slowdowns.append(slowdown)
        result.timeline.append({
            "step": ev.step, "kind": "link_brownout",
            "factor": ev.factor, "asymmetric": ev.asymmetric,
            "a2a": f"{healthy.a2a_algorithm.value}->"
                   f"{browned.a2a_algorithm.value}",
            "model_slowdown": round(slowdown, 4)})
        result.timeline.append({
            "step": ev.end_step, "kind": "brownout_cleared",
            "a2a": healthy.a2a_algorithm.value})
        run = get_run()
        if run is not None:
            run.emit("fault", step=ev.step, data={
                "kind": "link_brownout", "factor": ev.factor,
                "asymmetric": ev.asymmetric})
            if switched:
                run.emit("strategy_switch", step=ev.step, data={
                    "from": healthy.a2a_algorithm.value,
                    "to": browned.a2a_algorithm.value,
                    "slowdown": slowdown})
            run.emit("recovery", step=ev.end_step, data={
                "kind": "brownout_cleared",
                "a2a": healthy.a2a_algorithm.value})

    replacement_total = 0.0
    moved_total = 0.0
    scaleup_ratios: list[float] = []
    world = sc.sim_world
    for ev in sc.resizes:
        big = topology_fn(max(world, ev.new_world))
        seconds, moved = price_replacement(
            world, ev.new_world, sc.sim_experts, big,
            sim_cfg.expert_parameter_bytes)
        replacement_total += seconds
        moved_total += moved
        old_tput = _throughput(
            sim_cfg.with_(world_size=world,
                          experts_per_gpu=sc.sim_experts / world),
            topology_fn(world))
        new_tput = _throughput(
            sim_cfg.with_(world_size=ev.new_world,
                          experts_per_gpu=sc.sim_experts / ev.new_world),
            topology_fn(ev.new_world))
        ratio = new_tput / old_tput if old_tput > 0 else 1.0
        if ev.new_world > world:
            scaleup_ratios.append(ratio)
        result.timeline.append({
            "step": ev.step, "kind": "elastic_resize",
            "world": f"{world}->{ev.new_world}",
            "moved_mb": round(moved / 1e6, 3),
            "replace_s": round(seconds, 6),
            "throughput_ratio": round(ratio, 4)})
        run = get_run()
        if run is not None:
            run.emit("scenario", step=ev.step, data={
                "kind": "elastic_resize", "old_world": world,
                "new_world": ev.new_world, "moved_bytes": moved,
                "replacement_seconds": seconds,
                "throughput_ratio": ratio})
        world = ev.new_world

    # -- fault-free twin for the loss-parity bound ----------------------
    loss_parity = None
    if slo.max_loss_parity is not None:
        with _no_run_recording():
            twin = train_model(_build_model(sc), train_batch,
                               test_batch, steps=sc.steps,
                               batch_size=sc.batch_size, seed=sc.seed)
        loss_parity = abs(final.final_train_loss
                          - twin.final_train_loss)

    # -- step-time ratio across the first fault -------------------------
    step_time_ratio = None
    if sc.rank_losses and segment_results[0].step_walls:
        first_fault = sc.rank_losses[0].step
        last_fault = sc.rank_losses[-1].step
        pre = [w for s, w in segment_results[0].step_walls.items()
               if s < first_fault]
        post = [w for s, w in final.step_walls.items()
                if s > last_fault]
        if pre and post:
            step_time_ratio = median(post) / median(pre)

    # -- SLO report -----------------------------------------------------
    checks = result.checks
    for i, (secs, deadline) in enumerate(recovery_walls):
        checks.append(SLOCheck(f"recovery_deadline_{i}", secs,
                               deadline, "<=", measured=True))
    if slo.max_step_time_ratio is not None \
            and step_time_ratio is not None:
        checks.append(SLOCheck("step_time_ratio", step_time_ratio,
                               slo.max_step_time_ratio, "<=",
                               measured=True))
    final_loss = final.final_train_loss
    if slo.loss_band is not None:
        lo, hi = slo.loss_band
        checks.append(SLOCheck("final_loss_max", final_loss, hi, "<="))
        checks.append(SLOCheck("final_loss_min", final_loss, lo, ">="))
    if loss_parity is not None:
        checks.append(SLOCheck("loss_parity", loss_parity,
                               slo.max_loss_parity, "<="))
    if slo.max_model_slowdown is not None and model_slowdowns:
        checks.append(SLOCheck("model_slowdown",
                               max(model_slowdowns),
                               slo.max_model_slowdown, "<="))
    if slo.max_replacement_seconds is not None:
        checks.append(SLOCheck("replacement_seconds",
                               replacement_total,
                               slo.max_replacement_seconds, "<="))
    if slo.min_scaleup_throughput_ratio is not None and scaleup_ratios:
        checks.append(SLOCheck("scaleup_throughput_ratio",
                               min(scaleup_ratios),
                               slo.min_scaleup_throughput_ratio, ">="))
    if slo.require_a2a_switch:
        checks.append(SLOCheck("a2a_switched",
                               1.0 if a2a_switched else 0.0, 1.0,
                               ">="))
    nonfinite = sum(0 if np.isfinite(v) else 1 for v in final.losses)
    if slo.require_finite:
        checks.append(SLOCheck("nonfinite_steps", float(nonfinite),
                               0.0, "<="))
    if slo.max_skipped_steps is not None:
        checks.append(SLOCheck("skipped_steps",
                               float(len(final.skipped_steps)),
                               float(slo.max_skipped_steps), "<="))

    # -- metrics for BENCH_scenarios.json -------------------------------
    metrics = result.metrics
    metrics.append(Metric("slo_pass", 1.0 if result.passed else 0.0,
                          kind="model", higher_is_better=True,
                          tolerance=0.0))
    metrics.append(Metric("final_loss", final_loss, kind="model",
                          higher_is_better=False, tolerance=0.30))
    metrics.append(Metric("nonfinite_steps", float(nonfinite),
                          kind="model", higher_is_better=False,
                          tolerance=0.0))
    if model_slowdowns:
        metrics.append(Metric("model_slowdown", max(model_slowdowns),
                              unit="x", kind="model",
                              higher_is_better=False, tolerance=0.05))
    for i, n in enumerate(replay_steps):
        metrics.append(Metric(f"replay_steps_{i}", float(n),
                              unit="steps", kind="model",
                              higher_is_better=False, tolerance=0.0))
    for i, (secs, _) in enumerate(recovery_walls):
        metrics.append(Metric(f"recovery_seconds_{i}", secs, unit="s",
                              kind="measured", higher_is_better=False))
    if step_time_ratio is not None:
        metrics.append(Metric("step_time_ratio", step_time_ratio,
                              unit="x", kind="measured",
                              higher_is_better=False))
    if loss_parity is not None:
        metrics.append(Metric("loss_parity", loss_parity,
                              kind="model", higher_is_better=False,
                              tolerance=0.05))
    if a2a_switched is not None:
        metrics.append(Metric("a2a_switched",
                              1.0 if a2a_switched else 0.0,
                              kind="model", higher_is_better=True,
                              tolerance=0.0))
    if sc.resizes:
        metrics.append(Metric("replacement_seconds", replacement_total,
                              unit="s", kind="model",
                              higher_is_better=False, tolerance=0.05))
        metrics.append(Metric("replacement_moved_mb",
                              moved_total / 1e6, unit="MB",
                              kind="model", higher_is_better=None,
                              tolerance=0.01))
    if scaleup_ratios:
        metrics.append(Metric("scaleup_throughput_ratio",
                              min(scaleup_ratios), unit="x",
                              kind="model", higher_is_better=True,
                              tolerance=0.05))
