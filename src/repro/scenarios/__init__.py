"""Seeded chaos scenarios with pass/fail SLO gates.

See DESIGN.md §11: :mod:`repro.scenarios.spec` declares timelines,
:mod:`repro.scenarios.engine` executes them against both substrates,
:mod:`repro.scenarios.library` holds the committed named scenarios and
:mod:`repro.scenarios.report` turns a batch into
``BENCH_scenarios.json`` for the regression gate.
"""

from repro.scenarios.engine import (
    ScenarioResult,
    SLOCheck,
    price_replacement,
    run_scenario,
)
from repro.scenarios.library import SCENARIOS, get_scenario, scenario_names
from repro.scenarios.report import (
    SCENARIOS_ARTIFACT,
    emit_scenarios,
    render_results,
    scenario_metrics,
)
from repro.scenarios.spec import (
    ElasticResize,
    ExpertDeath,
    LinkBrownout,
    RankLoss,
    Scenario,
    SLOSpec,
)

__all__ = [
    "ElasticResize",
    "ExpertDeath",
    "LinkBrownout",
    "RankLoss",
    "Scenario",
    "SLOSpec",
    "SLOCheck",
    "ScenarioResult",
    "SCENARIOS",
    "SCENARIOS_ARTIFACT",
    "emit_scenarios",
    "get_scenario",
    "price_replacement",
    "render_results",
    "run_scenario",
    "scenario_metrics",
    "scenario_names",
]
