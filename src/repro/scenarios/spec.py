"""Declarative chaos-scenario specifications.

A :class:`Scenario` is pure data: a seed, a step count, a timeline of
fault events, and an :class:`SLOSpec` of pass/fail bounds.  The engine
(:mod:`repro.scenarios.engine`) interprets it against both substrates —
the functional trainer actually lives through the events (checkpoint
restore on rank loss, :meth:`repro.nn.moe.MoE.fail_expert` on expert
death) while the cluster simulator prices their performance
consequences (strategy re-selection, brownout algorithm switches,
elastic re-placement traffic).

Determinism rules
-----------------
Everything derived from ``(scenario, seed)`` alone — final loss, loss
parity against the fault-free twin, modeled slowdowns, simulated
re-placement makespans, SLO verdicts on those values — is bit-stable
across runs on one machine and lands in ``BENCH_scenarios.json`` as
``kind="model"`` metrics.  Wall-clock quantities (recovery seconds,
step-time ratios) are ``kind="measured"`` and exempt from both the
determinism contract and the ``repro regress`` gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "RankLoss",
    "ExpertDeath",
    "LinkBrownout",
    "ElasticResize",
    "SLOSpec",
    "Scenario",
]


@dataclass(frozen=True)
class RankLoss:
    """Ranks die at ``step``; training must restore from the latest
    checkpoint and re-reach the pre-fault step within
    ``recovery_deadline_s`` wall-clock seconds (restore + lost-work
    replay both count against the deadline)."""

    step: int
    ranks: tuple[int, ...] = (0,)
    recovery_deadline_s: float = 30.0

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError(f"rank loss step must be >= 1, got {self.step}")
        if not self.ranks:
            raise ValueError("rank loss needs at least one rank")
        if self.recovery_deadline_s <= 0:
            raise ValueError("recovery_deadline_s must be > 0")


@dataclass(frozen=True)
class ExpertDeath:
    """Expert ``expert`` of MoE layer ``layer`` dies at ``step``;
    gating renormalizes over the survivors and training continues."""

    step: int
    layer: int = 0
    expert: int = 0

    def __post_init__(self) -> None:
        if self.step < 0 or self.layer < 0 or self.expert < 0:
            raise ValueError("step, layer, expert must all be >= 0")


@dataclass(frozen=True)
class LinkBrownout:
    """Inter-node fabric derated to ``factor`` of nominal bandwidth in
    ``[step, end_step)``.  ``asymmetric=True`` models the degradation
    hitting one node's NICs unevenly, which rules the hierarchical 2DH
    All-to-All out until the window closes (its aggregation phases
    assume equal participants per node) — the Tutel 2DH-vs-linear
    switch under HetuMoE-style commodity fabric conditions."""

    step: int
    end_step: int
    factor: float = 0.25
    asymmetric: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        if self.step < 0 or self.end_step <= self.step:
            raise ValueError(
                f"need 0 <= step < end_step, got [{self.step}, "
                f"{self.end_step})")

    def active(self, step: int) -> bool:
        return self.step <= step < self.end_step


@dataclass(frozen=True)
class ElasticResize:
    """Cluster membership changes to ``new_world`` GPUs at ``step``.

    The engine re-derives the expert placement on the new world and
    prices the shard movement (every shard a new host lacks is copied
    from a current host) through the cluster simulator.
    """

    step: int
    new_world: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.new_world < 1:
            raise ValueError(
                f"new_world must be >= 1, got {self.new_world}")


@dataclass(frozen=True)
class SLOSpec:
    """Pass/fail bounds evaluated after the timeline has played out.

    ``None`` disables a bound.  Measured (wall-clock) bounds should be
    generous — they run on shared CI machines; the deterministic model
    bounds are the tight ones.
    """

    # measured (wall-clock) bounds
    max_step_time_ratio: float | None = None   # post/pre-fault median
    # model (deterministic) bounds
    loss_band: tuple[float, float] | None = None
    max_loss_parity: float | None = None       # |loss - twin loss|
    max_model_slowdown: float | None = None    # worst modeled ratio
    max_replacement_seconds: float | None = None
    min_scaleup_throughput_ratio: float | None = None
    require_a2a_switch: bool = False
    require_finite: bool = True
    max_skipped_steps: int | None = 0

    def __post_init__(self) -> None:
        if self.loss_band is not None:
            lo, hi = self.loss_band
            if not lo <= hi:
                raise ValueError(
                    f"loss_band must be (lo, hi) with lo <= hi, "
                    f"got {self.loss_band}")
        for name in ("max_step_time_ratio", "max_loss_parity",
                     "max_model_slowdown", "max_replacement_seconds",
                     "min_scaleup_throughput_ratio"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")


@dataclass(frozen=True)
class Scenario:
    """One seeded chaos timeline plus the SLOs it must meet.

    The training-shape fields describe the functional-substrate toy
    model; ``sim_world``/``sim_experts`` describe the cluster the
    performance consequences are priced on (they are independent
    scales by design — the trainer proves behaviour, the simulator
    prices it at paper scale).
    """

    name: str
    title: str
    seed: int
    steps: int
    events: tuple = ()
    slo: SLOSpec = field(default_factory=SLOSpec)
    # functional substrate shape
    num_experts: int = 4
    top_k: int = 2
    num_blocks: int = 2
    input_dim: int = 16
    model_dim: int = 24
    hidden_dim: int = 48
    num_classes: int = 4
    batch_size: int = 64
    train_tokens: int = 256
    test_tokens: int = 128
    checkpoint_every: int = 4
    # performance substrate shape
    sim_world: int = 16
    sim_experts: int = 8
    # step count when run with --fast (None = same as ``steps``)
    fast_steps: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.steps < 2:
            raise ValueError(f"steps must be >= 2, got {self.steps}")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.sim_world < 1 or self.sim_experts < 1:
            raise ValueError("sim_world and sim_experts must be >= 1")
        if self.fast_steps is not None and self.fast_steps < 2:
            raise ValueError("fast_steps must be >= 2")
        self._validate_events(self.steps)
        if self.fast_steps is not None:
            self._validate_events(self.fast_steps)

    def _validate_events(self, horizon: int) -> None:
        for ev in self.events:
            if isinstance(ev, RankLoss):
                if not self.checkpoint_every <= ev.step < horizon:
                    raise ValueError(
                        f"rank loss at step {ev.step} needs a prior "
                        f"checkpoint and must precede step {horizon}")
            elif isinstance(ev, ExpertDeath):
                if ev.step >= horizon:
                    raise ValueError(
                        f"expert death at step {ev.step} is past the "
                        f"{horizon}-step horizon")
                # Every other block is MoE (the SwinV2-MoE pattern),
                # so num_blocks blocks hold num_blocks // 2 MoE layers.
                if ev.layer >= self.num_blocks // 2:
                    raise ValueError(
                        f"expert death layer {ev.layer} out of range "
                        f"for {self.num_blocks // 2} MoE layer(s)")
                if ev.expert >= self.num_experts:
                    raise ValueError(
                        f"expert death expert {ev.expert} out of range "
                        f"for {self.num_experts} experts")
            elif isinstance(ev, LinkBrownout):
                if ev.step >= horizon:
                    raise ValueError(
                        f"brownout at step {ev.step} is past the "
                        f"{horizon}-step horizon")
            elif isinstance(ev, ElasticResize):
                if ev.step >= horizon:
                    raise ValueError(
                        f"resize at step {ev.step} is past the "
                        f"{horizon}-step horizon")
            else:
                raise TypeError(
                    f"unknown scenario event {type(ev).__name__}")
        losses = [ev.step for ev in self.events
                  if isinstance(ev, RankLoss)]
        if len(losses) != len(set(losses)):
            raise ValueError("at most one rank loss per step")

    def resolved(self, fast: bool = False) -> "Scenario":
        """The concrete spec to execute (``--fast`` shrinks steps)."""
        if not fast or self.fast_steps is None \
                or self.fast_steps == self.steps:
            return self
        return replace(self, steps=self.fast_steps, fast_steps=None)

    @property
    def rank_losses(self) -> list[RankLoss]:
        return sorted((ev for ev in self.events
                       if isinstance(ev, RankLoss)),
                      key=lambda ev: ev.step)

    @property
    def expert_deaths(self) -> list[ExpertDeath]:
        return sorted((ev for ev in self.events
                       if isinstance(ev, ExpertDeath)),
                      key=lambda ev: ev.step)

    @property
    def brownouts(self) -> list[LinkBrownout]:
        return sorted((ev for ev in self.events
                       if isinstance(ev, LinkBrownout)),
                      key=lambda ev: ev.step)

    @property
    def resizes(self) -> list[ElasticResize]:
        return sorted((ev for ev in self.events
                       if isinstance(ev, ElasticResize)),
                      key=lambda ev: ev.step)

    def brownout_factor_at(self, step: int) -> tuple[float, bool]:
        """(bandwidth factor, asymmetric?) of the fabric at ``step``."""
        factor, asymmetric = 1.0, False
        for ev in self.brownouts:
            if ev.active(step):
                factor = min(factor, ev.factor)
                asymmetric = asymmetric or ev.asymmetric
        return factor, asymmetric

    def describe(self) -> str:
        kinds = [type(ev).__name__ for ev in self.events]
        return (f"{self.name}: seed={self.seed} steps={self.steps} "
                f"events=[{', '.join(kinds) or 'none'}] "
                f"sim={self.sim_world}x{self.sim_experts}")
