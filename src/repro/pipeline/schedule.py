"""Multi-stream pipeline schedules for the MoE inner segment.

Builds the event-simulator schedule for the segment that adaptive
pipelining overlaps: dispatch All-to-All -> expert fflayer -> combine
All-to-All, chunked into ``degree`` virtual capacity partitions
(Figure 14).  Communication chunks run on the representative GPU's
communication stream and experts on its computation stream; the
simulator's interference model applies the concurrent-kernel slowdown
that makes the jointly optimal (algorithm, degree) pair workload
dependent (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gemm import GemmModel, expert_ffn_time
from repro.cluster.simulator import InterferenceModel, Op, Schedule, simulate
from repro.cluster.topology import ClusterTopology
from repro.collectives.schedule import A2AAlgorithm, Impl, Protocol, a2a_time
from repro.core.config import MoEConfig
from repro.pipeline.partition import VALID_DEGREES

__all__ = [
    "PipelineStrategy",
    "SegmentSpec",
    "all_strategies",
    "build_segment_schedule",
    "segment_time",
    "build_pipeline_schedule",
    "pipeline_segment_time",
]


@dataclass(frozen=True)
class PipelineStrategy:
    """One point of the adaptive-pipelining search space.

    The space matches the paper's evaluation: pipelining degrees
    {1, 2, 4, 8} crossed with the Linear and 2DH All-to-All algorithms.
    """

    degree: int = 1
    algorithm: A2AAlgorithm = A2AAlgorithm.LINEAR
    protocol: Protocol = Protocol.SIMPLE
    impl: Impl = Impl.NCCL

    def __post_init__(self) -> None:
        if self.degree not in VALID_DEGREES:
            raise ValueError(
                f"degree must be one of {VALID_DEGREES}, got {self.degree}")

    def describe(self) -> str:
        return f"{self.algorithm.value}/deg{self.degree}"


@dataclass(frozen=True)
class SegmentSpec:
    """Shape of the dispatch-expert-combine segment on one GPU.

    Decouples the pipeline builder from :class:`MoEConfig` so the
    runtime can feed parallelism-adjusted shapes (e.g. P2 repeats the
    All-to-All payload ``r`` times and shards the hidden dimension).
    """

    a2a_bytes: float          # per-GPU All-to-All payload per leg
    expert_batch: int         # independent expert problems per GPU
    expert_rows: int          # token rows per expert problem
    model_dim: int
    hidden_dim: int

    def __post_init__(self) -> None:
        if self.a2a_bytes < 0:
            raise ValueError(f"a2a_bytes must be >= 0, got {self.a2a_bytes}")
        if min(self.expert_batch, self.expert_rows, self.model_dim,
               self.hidden_dim) < 1:
            raise ValueError("segment dimensions must be >= 1")

    @staticmethod
    def from_config(cfg: MoEConfig) -> "SegmentSpec":
        """Flexible-layout segment of a plain EP configuration."""
        return SegmentSpec(
            a2a_bytes=cfg.dispatch_bytes_per_gpu,
            expert_batch=max(1, round(cfg.experts_per_gpu)),
            expert_rows=cfg.global_capacity,
            model_dim=cfg.model_dim,
            hidden_dim=cfg.hidden_dim)


def all_strategies(
        degrees: tuple[int, ...] = VALID_DEGREES,
        algorithms: tuple[A2AAlgorithm, ...] = (A2AAlgorithm.LINEAR,
                                                A2AAlgorithm.TWO_DH),
) -> list[PipelineStrategy]:
    """The full static strategy grid (8 entries by default)."""
    return [PipelineStrategy(degree=d, algorithm=a)
            for a in algorithms for d in degrees]


def _comm_kind(algorithm: A2AAlgorithm) -> str:
    """2DH launches SM-occupying stride-copy kernels; plain P2P does
    not — they interfere with compute differently."""
    return ("comm_memcpy" if algorithm is A2AAlgorithm.TWO_DH
            else "comm")


def build_segment_schedule(spec: SegmentSpec, topo: ClusterTopology,
                           strategy: PipelineStrategy,
                           training: bool = False,
                           gemm: GemmModel | None = None) -> Schedule:
    """Op DAG of the pipelined dispatch-expert-combine segment.

    One representative GPU is modelled (symmetric collective work).
    Chunk ``i`` contributes three ops — dispatch A2A, expert compute,
    combine A2A — with chained dependencies; same-stream ops serialize
    FIFO, which realizes exactly the overlap pattern of Figure 14.
    """
    degree = strategy.degree
    chunk_bytes = spec.a2a_bytes / degree
    a2a_chunk = a2a_time(topo, chunk_bytes, strategy.algorithm,
                         strategy.protocol, strategy.impl)
    # The bandwidth-independent floor of each A2A chunk (same payload
    # through an unbounded fabric): feeds the infinite-bandwidth
    # what-if bound in repro.obs.analysis.
    a2a_floor = min(a2a_chunk, a2a_time(
        topo.with_infinite_bandwidth(), chunk_bytes, strategy.algorithm,
        strategy.protocol, strategy.impl))
    rows_chunk = max(1, spec.expert_rows // degree)
    expert_chunk = expert_ffn_time(topo.gpu, spec.expert_batch, rows_chunk,
                                   spec.model_dim, spec.hidden_dim, gemm,
                                   backward=training)
    kind = _comm_kind(strategy.algorithm)

    schedule = Schedule()
    # Comm-stream FIFO order is [d0 .. d_{n-1}, c0 .. c_{n-1}]: all
    # dispatch chunks are enqueued ahead of any combine so a pending
    # combine never blocks the next dispatch (Figure 14's schedule).
    dispatches = [schedule.new_op(
        work=a2a_chunk, gpu=0, stream="comm", kind=kind,
        latency=a2a_floor, label=f"a2a_dispatch[{i}]")
        for i in range(degree)]
    experts = [schedule.new_op(
        work=expert_chunk, gpu=0, stream="compute", kind="compute",
        deps=(dispatches[i],), label=f"expert[{i}]")
        for i in range(degree)]
    combines = [schedule.new_op(
        work=a2a_chunk, gpu=0, stream="comm", kind=kind,
        latency=a2a_floor, deps=(experts[i],), label=f"a2a_combine[{i}]")
        for i in range(degree)]
    schedule.new_op(work=0.0, gpu=0, stream="compute", kind="host",
                    deps=tuple(combines), label="barrier")
    return schedule


def segment_time(spec: SegmentSpec, topo: ClusterTopology,
                 strategy: PipelineStrategy, training: bool = False,
                 gemm: GemmModel | None = None,
                 interference: InterferenceModel | None = None) -> float:
    """Makespan of the pipelined segment under a strategy."""
    schedule = build_segment_schedule(spec, topo, strategy, training, gemm)
    return simulate(schedule, interference).makespan


def build_pipeline_schedule(cfg: MoEConfig, topo: ClusterTopology,
                            strategy: PipelineStrategy,
                            training: bool = False,
                            gemm: GemmModel | None = None) -> Schedule:
    """Convenience wrapper building from a plain :class:`MoEConfig`."""
    return build_segment_schedule(SegmentSpec.from_config(cfg), topo,
                                  strategy, training, gemm)


def pipeline_segment_time(cfg: MoEConfig, topo: ClusterTopology,
                          strategy: PipelineStrategy,
                          training: bool = False,
                          gemm: GemmModel | None = None,
                          interference: InterferenceModel | None = None
                          ) -> float:
    """Makespan of the segment for a plain :class:`MoEConfig`."""
    return segment_time(SegmentSpec.from_config(cfg), topo, strategy,
                        training, gemm, interference)
