"""Online pipelining strategy search (paper Algorithm 2).

The capacity factor ``f`` observed at runtime varies over a large
floating-point domain (Figure 1), so trying every strategy at every
distinct ``f`` would never converge.  The algorithm exploits one
intuition: *close* capacity factors have similar workload shapes and
share an optimal strategy.  Known ``f`` values are grouped into buckets
of numeric width ``L``; measurements are shared bucket-wide (normalized
by the lowest ``f`` in the bucket, since the segment time is roughly
proportional to the workload), and each bucket explores every strategy
exactly once before settling on its best.

Complexities match the paper: O(1) for a known ``f`` (hash lookup),
O(log M) to place a new ``f`` among M buckets, O(N log N) worst case
when buckets are rebuilt over N known factors.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import CAT_PIPELINE, get_observer
from repro.obs.runs import get_run
from repro.pipeline.schedule import PipelineStrategy, all_strategies

__all__ = [
    "MAX_BUCKET_SAMPLES",
    "Bucket",
    "OnlinePipeliningSearch",
]


MAX_BUCKET_SAMPLES = 9
"""Sliding-window size of per-strategy samples kept in each bucket.

Odd so the median is always an observed value; large enough that a
couple of straggler-inflated (or glitch-deflated) measurements cannot
move it, small enough that the statistic tracks a drifting workload."""


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class Bucket:
    """A contiguous range of capacity factors sharing strategy data.

    Each strategy keeps a bounded window of normalized samples and is
    scored by their **median**: a min-keeping memo is robust to slow
    outliers (stragglers) but permanently locks in a spuriously-fast
    glitch, while the median discounts both tails — the property the
    resilience path needs when fault-injected steps feed the search.
    """

    low: float
    length: float
    members: list[float] = field(default_factory=list)
    samples: dict[PipelineStrategy, list[float]] = field(
        default_factory=dict)

    def contains(self, f: float) -> bool:
        return self.low <= f < self.low + self.length

    def record(self, strategy: PipelineStrategy, f: float,
               elapsed: float) -> None:
        """Fold a measurement normalized to the bucket's lowest f.

        Segment time grows roughly linearly with workload, so dividing
        by ``f / low`` makes measurements at different factors
        comparable within the bucket.
        """
        normalized = elapsed * (self.low / f) if f > 0 else elapsed
        window = self.samples.setdefault(strategy, [])
        window.append(normalized)
        if len(window) > MAX_BUCKET_SAMPLES:
            del window[0]

    def score(self, strategy: PipelineStrategy) -> float:
        """Median of the strategy's sample window (robust statistic)."""
        window = self.samples.get(strategy)
        if not window:
            raise KeyError(f"no samples for {strategy}")
        return _median(window)

    @property
    def tried(self) -> dict[PipelineStrategy, float]:
        """Strategy -> median-normalized-time view of the samples."""
        return {s: self.score(s) for s in self.samples}

    def best_strategy(self) -> PipelineStrategy:
        if not self.samples:
            raise ValueError("bucket has no measurements yet")
        return min(self.samples, key=self.score)


@dataclass
class OnlinePipeliningSearch:
    """The GETSTRATEGY / OPTIMIZESTRATEGY pair of Algorithm 2."""

    bucket_length: float = 1.0
    strategies: list[PipelineStrategy] = field(
        default_factory=all_strategies)
    per_factor: dict[float, dict[PipelineStrategy, float]] = field(
        default_factory=dict)
    buckets: list[Bucket] = field(default_factory=list)
    known_factors: list[float] = field(default_factory=list)
    # Last strategy chosen per bucket (keyed by bucket low), so step()
    # can flag switches as observability events.
    last_choice: dict[float, PipelineStrategy] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        if self.bucket_length <= 0:
            raise ValueError(
                f"bucket_length must be > 0, got {self.bucket_length}")
        if not self.strategies:
            raise ValueError("strategy space must be non-empty")

    # -- bucket maintenance (RECOMPUTEBUCKETS) -------------------------

    def _rebuild_buckets(self) -> None:
        """Greedy re-bucketing over the sorted known factors.

        A bucket starts at its lowest member and absorbs factors until
        one falls outside ``[low, low + L)``; measurements are rebuilt
        from the per-factor memos of the members.
        """
        self.buckets = []
        current: Bucket | None = None
        for f in self.known_factors:
            if current is None or not current.contains(f):
                current = Bucket(low=f, length=self.bucket_length)
                self.buckets.append(current)
            current.members.append(f)
            for strategy, elapsed in self.per_factor.get(f, {}).items():
                current.record(strategy, f, elapsed)
        ob = get_observer()
        if ob is not None:
            ob.count("pipeline.bucket_rebuilds")
            ob.gauge("pipeline.num_buckets", len(self.buckets))
            ob.gauge("pipeline.known_factors", len(self.known_factors))

    def _bucket_of(self, f: float) -> Bucket:
        """Binary search for the bucket containing ``f``."""
        lows = [b.low for b in self.buckets]
        idx = bisect.bisect_right(lows, f) - 1
        if idx < 0 or not self.buckets[idx].contains(f):
            raise KeyError(f"capacity factor {f} not in any bucket")
        return self.buckets[idx]

    def _ensure_known(self, f: float) -> None:
        if f in self.per_factor:
            return
        self.per_factor[f] = {}
        bisect.insort(self.known_factors, f)
        self._rebuild_buckets()

    # -- Algorithm 2 procedures ----------------------------------------

    def get_strategy(self, capacity_factor: float) -> PipelineStrategy:
        """GETSTRATEGY: best known, else an untried bucket strategy."""
        if capacity_factor <= 0:
            raise ValueError(
                f"capacity_factor must be > 0, got {capacity_factor}")
        f = float(capacity_factor)
        self._ensure_known(f)
        tried_here = self.per_factor[f]
        if len(tried_here) == len(self.strategies):
            return min(tried_here, key=tried_here.__getitem__)
        bucket = self._bucket_of(f)
        ob = get_observer()
        for strategy in self.strategies:
            if strategy not in bucket.samples:
                # Bucket exploration: this factor's bucket still has
                # untried strategies, so the step pays a measurement.
                if ob is not None:
                    ob.instant("explore", CAT_PIPELINE, args={
                        "f": f, "bucket_low": bucket.low,
                        "strategy": strategy.describe(),
                        "remaining": (len(self.strategies)
                                      - len(bucket.samples))})
                return strategy
        if ob is not None:
            ob.count("pipeline.bucket_hits")
        return bucket.best_strategy()

    def optimize_strategy(self, capacity_factor: float,
                          strategy: PipelineStrategy,
                          measured_time: float) -> None:
        """OPTIMIZESTRATEGY: fold a measurement into both memo levels."""
        if measured_time < 0:
            raise ValueError(
                f"measured_time must be >= 0, got {measured_time}")
        f = float(capacity_factor)
        self._ensure_known(f)
        memo = self.per_factor[f]
        if strategy not in memo or measured_time < memo[strategy]:
            memo[strategy] = measured_time
        self._bucket_of(f).record(strategy, f, measured_time)
        ob = get_observer()
        if ob is not None:
            ob.count("pipeline.measurements")
            ob.registry.histogram(
                "pipeline.measured_time").observe(measured_time)

    def step(self, capacity_factor: float,
             measure: Callable[[PipelineStrategy], float]
             ) -> tuple[PipelineStrategy, float]:
        """MOESTEPANDOPTIMIZESTRATEGY: pick, run, learn.

        ``measure`` runs the MoE segment under the given strategy and
        returns its elapsed time (in the reproduction, a simulator
        call; on hardware, a CUDA-event timing).
        """
        strategy = self.get_strategy(capacity_factor)
        bucket_low = self._bucket_of(float(capacity_factor)).low
        previous = self.last_choice.get(bucket_low)
        if previous is not None and previous != strategy:
            # The adaptive runtime changed its mind for this workload
            # band — the Figure 5 event the run timeline plots.
            switch = {"f": float(capacity_factor),
                      "bucket_low": bucket_low,
                      "from": previous.describe(),
                      "to": strategy.describe()}
            ob = get_observer()
            if ob is not None:
                ob.instant("strategy_switch", CAT_PIPELINE, args=switch)
            run = get_run()
            if run is not None:
                run.emit("strategy_switch", data=switch)
        self.last_choice[bucket_low] = strategy
        elapsed = measure(strategy)
        self.optimize_strategy(capacity_factor, strategy, elapsed)
        return strategy, elapsed

    # -- diagnostics -----------------------------------------------------

    def exploration_remaining(self, capacity_factor: float) -> int:
        """Strategies the factor's bucket has not yet tried."""
        f = float(capacity_factor)
        self._ensure_known(f)
        bucket = self._bucket_of(f)
        return len(self.strategies) - len(bucket.samples)
