"""Adaptive pipelining: token partition, schedules, online search."""

from repro.pipeline.adaptive import Bucket, OnlinePipeliningSearch
from repro.pipeline.partition import (
    VALID_DEGREES,
    merge_partitions,
    partition_capacity,
    valid_degrees,
)
from repro.pipeline.schedule import (
    PipelineStrategy,
    SegmentSpec,
    all_strategies,
    build_pipeline_schedule,
    build_segment_schedule,
    pipeline_segment_time,
    segment_time,
)

__all__ = [
    "Bucket",
    "OnlinePipeliningSearch",
    "VALID_DEGREES",
    "merge_partitions",
    "partition_capacity",
    "valid_degrees",
    "PipelineStrategy",
    "SegmentSpec",
    "all_strategies",
    "build_pipeline_schedule",
    "build_segment_schedule",
    "pipeline_segment_time",
    "segment_time",
]
