"""Token partitioning for multi-stream pipelining (paper Figure 14).

Only the two All-to-Alls and the expert in between are partitioned —
not the whole MoE layer — so that capacity-dependent ML features
(e.g. batch prioritized routing) stay correct: the routing decision is
made once on the full batch, then the *capacity* dimension of the
dispatch buffer is sliced into virtual partitions ``C_0 .. C_{d-1}``
that flow through All-to-All -> expert -> All-to-All independently.

Because the split is along the capacity dimension of the already
encoded ``(E, dC, M)`` buffer, merging the partition outputs is exact:
the functional test asserts pipelined == unpipelined output.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "valid_degrees",
    "partition_capacity",
    "merge_partitions",
]

VALID_DEGREES = (1, 2, 4, 8)


def valid_degrees(capacity: int) -> tuple[int, ...]:
    """Pipelining degrees usable for a given capacity ``dC``.

    A degree must divide the capacity so that every virtual partition
    carries the same number of slots.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    return tuple(d for d in VALID_DEGREES if capacity % d == 0)


def partition_capacity(dispatched: np.ndarray,
                       degree: int) -> list[np.ndarray]:
    """Split an ``(E, dC, M)`` dispatch buffer into ``degree`` virtual
    partitions ``(E, dC/degree, M)`` along the capacity dimension."""
    if dispatched.ndim != 3:
        raise ValueError(
            f"dispatched must be (E, dC, M), got {dispatched.shape}")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if dispatched.shape[1] % degree != 0:
        raise ValueError(
            f"capacity {dispatched.shape[1]} not divisible by degree "
            f"{degree}")
    return [np.ascontiguousarray(part)
            for part in np.split(dispatched, degree, axis=1)]


def merge_partitions(parts: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`partition_capacity` (the post-barrier merge)."""
    if not parts:
        raise ValueError("parts must be non-empty")
    return np.concatenate(parts, axis=1)
