"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # all benches with their paper artifact
    python -m repro bench fig20          # regenerate one table/figure
    python -m repro bench all            # regenerate everything
    python -m repro info                 # library / substrate summary

Each bench is the same module pytest-benchmark runs; the CLI imports
its ``run()`` and prints the full table.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

__all__ = ["main", "discover_benches", "run_bench"]

_BENCH_DESCRIPTIONS = {
    "fig01": "Figure 1 — dynamic MoE workload during training",
    "fig03": "Figure 3 — P1 vs P2 runtime preference",
    "fig05": "Figure 5 — optimal pipelining strategy distribution",
    "fig06": "Figure 6 — small-message bandwidth under-utilization",
    "fig07": "Figure 7 — DeepSpeed fflayer layout regression",
    "fig10": "Figure 10 — Flexible All-to-All layout fix",
    "fig20": "Figure 20 — linear vs 2DH All-to-All scaling",
    "fig21": "Figure 21 — NCCL vs MSCCL implementations",
    "fig22": "Figure 22 — adaptive pipelining under dynamic f",
    "fig23": "Figure 23 — single MoE layer breakdown",
    "fig24": "Figure 24 — encode/decode kernel time (measured)",
    "fig25": "Figure 25 — batch prioritized routing",
    "tab01": "Table 1 — All-to-All overhead ratio",
    "tab04": "Table 4 — GPU memory, dense vs sparse",
    "tab05": "Table 5 — adaptive parallelism switching",
    "tab07": "Table 7 — adaptive pipelining improvements",
    "tab08": "Table 8 — SwinV2-MoE end-to-end speed",
    "tab09": "Table 9 — sparse vs dense accuracy",
    "tab10": "Table 10 — fine-tuning with frozen MoE",
    "tab11": "Table 11 — expert-count ablation",
    "tab12": "Table 12 — top-k / capacity ablation",
    "tab13": "Table 13 — cosine vs linear router",
    "abl": "Ablations — online search, hierarchy width",
}


def _benchmarks_dir() -> Path:
    """Locate the benchmarks/ directory relative to the repo root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if candidate.is_dir() and any(candidate.glob("bench_*.py")):
            return candidate
    raise FileNotFoundError(
        "benchmarks/ directory not found; run from a source checkout")


def discover_benches() -> dict[str, Path]:
    """Map short ids (e.g. 'fig20') to bench script paths."""
    benches: dict[str, Path] = {}
    for path in sorted(_benchmarks_dir().glob("bench_*.py")):
        stem = path.stem.removeprefix("bench_")
        tokens = stem.split("_")
        # Numbered artifacts collapse to 'fig20'/'tab08'; unnumbered
        # families (ablations) keep a second token to stay unique.
        if any(ch.isdigit() for ch in tokens[0]):
            short = tokens[0]
        else:
            short = "_".join(tokens[:2])
        benches[short] = path
    return benches


def run_bench(short_id: str) -> None:
    """Import a bench module by path and execute its ``run()``."""
    benches = discover_benches()
    if short_id not in benches:
        known = ", ".join(sorted(benches))
        raise SystemExit(
            f"unknown bench {short_id!r}; available: {known}")
    path = benches[short_id]
    sys.path.insert(0, str(path.parent))  # for `import conftest`
    try:
        spec = importlib.util.spec_from_file_location(path.stem, path)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.run(verbose=True)
    finally:
        sys.path.remove(str(path.parent))


def _cmd_list() -> None:
    benches = discover_benches()
    width = max(len(k) for k in benches)
    for short, path in sorted(benches.items()):
        prefix = short.rstrip("0123456789")
        desc = _BENCH_DESCRIPTIONS.get(
            short, _BENCH_DESCRIPTIONS.get(prefix, ""))
        print(f"  {short.ljust(width)}  {path.name:42s} {desc}")


def _cmd_info() -> None:
    import repro
    from repro.cluster.topology import ndv4_topology
    print(f"repro {repro.__version__} — reproduction of 'Tutel: "
          "Adaptive Mixture-of-Experts at Scale' (MLSys 2023)")
    topo = ndv4_topology(2048)
    print(f"default testbed model: {topo.num_gpus} GPUs, "
          f"{topo.gpus_per_node}/node, "
          f"NVLink {topo.intra_link.bandwidth / 1e9:.0f} GB/s, "
          f"IB {topo.inter_link.bandwidth / 1e9:.0f} GB/s per GPU")
    print("substrates: functional NumPy MoE (+autograd) and a "
          "discrete-event cluster simulator")
    print("see DESIGN.md for the system inventory and EXPERIMENTS.md "
          "for paper-vs-measured results")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Tutel paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available benches")
    sub.add_parser("info", help="library summary")
    bench = sub.add_parser("bench", help="run one bench (or 'all')")
    bench.add_argument("id", help="short id, e.g. fig20, tab08, all")
    args = parser.parse_args(argv)

    if args.command == "list":
        _cmd_list()
    elif args.command == "info":
        _cmd_info()
    elif args.command == "bench":
        if args.id == "all":
            for short in sorted(discover_benches()):
                print(f"### {short}")
                run_bench(short)
        else:
            run_bench(args.id)
    return 0
