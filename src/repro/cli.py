"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # all benches with their paper artifact
    python -m repro bench fig20          # regenerate one table/figure
    python -m repro bench all            # regenerate everything
    python -m repro info                 # library / substrate summary
    python -m repro obs                  # instrumented demo + Chrome trace
    python -m repro chaos --seed 0       # fault-injection scenario

Each bench is the same module pytest-benchmark runs; the CLI imports
its ``run()`` and prints the full table.  Setting ``REPRO_TRACE=path``
makes ``bench`` record every instrumented span and write a Chrome-trace
JSON there; ``repro obs`` does the same for a self-contained demo
(train steps + simulator run + the encode-locations microbench).
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys
from pathlib import Path

__all__ = ["main", "discover_benches", "run_bench"]

_BENCH_DESCRIPTIONS = {
    "fig01": "Figure 1 — dynamic MoE workload during training",
    "fig03": "Figure 3 — P1 vs P2 runtime preference",
    "fig05": "Figure 5 — optimal pipelining strategy distribution",
    "fig06": "Figure 6 — small-message bandwidth under-utilization",
    "fig07": "Figure 7 — DeepSpeed fflayer layout regression",
    "fig10": "Figure 10 — Flexible All-to-All layout fix",
    "fig20": "Figure 20 — linear vs 2DH All-to-All scaling",
    "fig21": "Figure 21 — NCCL vs MSCCL implementations",
    "fig22": "Figure 22 — adaptive pipelining under dynamic f",
    "fig23": "Figure 23 — single MoE layer breakdown",
    "fig24": "Figure 24 — encode/decode kernel time (measured)",
    "fig25": "Figure 25 — batch prioritized routing",
    "tab01": "Table 1 — All-to-All overhead ratio",
    "tab04": "Table 4 — GPU memory, dense vs sparse",
    "tab05": "Table 5 — adaptive parallelism switching",
    "tab07": "Table 7 — adaptive pipelining improvements",
    "tab08": "Table 8 — SwinV2-MoE end-to-end speed",
    "tab09": "Table 9 — sparse vs dense accuracy",
    "tab10": "Table 10 — fine-tuning with frozen MoE",
    "tab11": "Table 11 — expert-count ablation",
    "tab12": "Table 12 — top-k / capacity ablation",
    "tab13": "Table 13 — cosine vs linear router",
    "abl": "Ablations — online search, hierarchy width",
}


def _benchmarks_dir() -> Path:
    """Locate the benchmarks/ directory relative to the repo root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if candidate.is_dir() and any(candidate.glob("bench_*.py")):
            return candidate
    raise FileNotFoundError(
        "benchmarks/ directory not found; run from a source checkout")


def discover_benches() -> dict[str, Path]:
    """Map short ids (e.g. 'fig20') to bench script paths."""
    benches: dict[str, Path] = {}
    for path in sorted(_benchmarks_dir().glob("bench_*.py")):
        stem = path.stem.removeprefix("bench_")
        tokens = stem.split("_")
        # Numbered artifacts collapse to 'fig20'/'tab08'; unnumbered
        # families (ablations) keep a second token to stay unique.
        if any(ch.isdigit() for ch in tokens[0]):
            short = tokens[0]
        else:
            short = "_".join(tokens[:2])
        benches[short] = path
    return benches


def run_bench(short_id: str) -> None:
    """Import a bench module by path and execute its ``run()``.

    With ``REPRO_TRACE=path`` in the environment the run happens under
    an enabled observer and the collected trace is written there (one
    file per bench — with ``bench all`` the last bench's trace wins).
    """
    benches = discover_benches()
    if short_id not in benches:
        known = ", ".join(sorted(benches))
        raise SystemExit(
            f"unknown bench {short_id!r}; available: {known}")
    path = benches[short_id]
    trace_path = os.environ.get("REPRO_TRACE")
    ob = None
    if trace_path:
        from repro import obs
        ob = obs.enable()
    sys.path.insert(0, str(path.parent))  # for `import conftest`
    try:
        spec = importlib.util.spec_from_file_location(path.stem, path)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.run(verbose=True)
    finally:
        sys.path.remove(str(path.parent))
        if ob is not None:
            from repro import obs
            assert ob.recorder is not None
            ob.recorder.dump_chrome_trace(trace_path)
            print(f"[obs] wrote {len(ob.recorder.events)} trace events "
                  f"to {trace_path}")
            obs.disable()


def _cmd_list() -> None:
    benches = discover_benches()
    width = max(len(k) for k in benches)
    for short, path in sorted(benches.items()):
        prefix = short.rstrip("0123456789")
        desc = _BENCH_DESCRIPTIONS.get(
            short, _BENCH_DESCRIPTIONS.get(prefix, ""))
        print(f"  {short.ljust(width)}  {path.name:42s} {desc}")


def _cmd_info() -> None:
    import repro
    from repro.cluster.topology import ndv4_topology
    print(f"repro {repro.__version__} — reproduction of 'Tutel: "
          "Adaptive Mixture-of-Experts at Scale' (MLSys 2023)")
    topo = ndv4_topology(2048)
    print(f"default testbed model: {topo.num_gpus} GPUs, "
          f"{topo.gpus_per_node}/node, "
          f"NVLink {topo.intra_link.bandwidth / 1e9:.0f} GB/s, "
          f"IB {topo.inter_link.bandwidth / 1e9:.0f} GB/s per GPU")
    print("substrates: functional NumPy MoE (+autograd) and a "
          "discrete-event cluster simulator")
    print("see DESIGN.md for the system inventory and EXPERIMENTS.md "
          "for paper-vs-measured results")


def _cmd_obs(trace_path: str, jsonl_path: str | None, steps: int) -> None:
    """Instrumented end-to-end demo of the ``repro.obs`` subsystem.

    Runs (1) a few real training steps of a small MoE classifier so the
    trace carries gate/encode/expert_ffn/decode spans and the per-step
    RoutingStats history, (2) one discrete-event simulation so
    simulated-clock tracks appear beside the wall-clock ones, and
    (3) the ``compute_locations`` rewrite-vs-reference microbench timed
    through the obs registry.  Writes the Chrome trace (and optionally
    JSONL) and prints the metrics summary.
    """
    import numpy as np

    from repro import obs
    from repro.cluster.simulator import Schedule, simulate
    from repro.moe.gating import (
        compute_locations,
        compute_locations_reference,
    )
    from repro.nn.models import MoEClassifier
    from repro.train.data import ClusteredTokenTask
    from repro.train.trainer import train_model

    ob = obs.enable()
    try:
        # 1. Real training steps (wall-clock spans + routing history).
        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        rng = np.random.default_rng(0)
        model = MoEClassifier(input_dim=8, model_dim=32, hidden_dim=64,
                              num_classes=4, num_blocks=2, num_experts=8,
                              rng=rng, top_k=2, capacity_factor=1.25)
        train_model(model, task.sample(512), task.sample(256),
                    steps=steps, batch_size=128)

        # 2. One simulated pipeline segment (simulated-clock spans).
        sched = Schedule()
        prev = None
        for i in range(3):
            comp = sched.new_op(work=2e-3, stream="compute",
                                kind="compute", label=f"expert_chunk{i}",
                                deps=(prev,) if prev else ())
            prev = sched.new_op(work=1.5e-3, stream="comm", kind="comm",
                                label=f"a2a_chunk{i}", deps=(comp,))
        simulate(sched)

        # 3. compute_locations speedup, recorded via the obs timers.
        bench_rng = np.random.default_rng(0)
        idxs = bench_rng.integers(0, 64, (2, 4096))
        for _ in range(5):
            with ob.span("locations_reference", obs.CAT_BENCH):
                compute_locations_reference(idxs, 64)
            with ob.span("locations_fast", obs.CAT_BENCH):
                compute_locations(idxs, 64)
        ref = ob.registry.histogram("bench.locations_reference")
        fast = ob.registry.histogram("bench.locations_fast")

        print(ob.registry.render())
        print()
        train_records = [r for r in ob.routing_history if r.step >= 0]
        print(f"routing history: {len(train_records)} training records "
              f"({steps} steps x {len(model.moe_layers())} MoE layer(s)), "
              f"{len(ob.routing_history) - len(train_records)} eval")
        series = ob.capacity_factor_series(layer=0)
        if series:
            print(f"needed capacity factor (layer 0): "
                  f"first={series[0]:.2f} last={series[-1]:.2f} "
                  f"max={max(series):.2f}")
        if fast.min > 0:
            print(f"compute_locations rewrite: {ref.min * 1e3:.3f} ms -> "
                  f"{fast.min * 1e3:.3f} ms "
                  f"({ref.min / fast.min:.1f}x, best of {fast.count}, "
                  f"T=4096 E=64 k=2)")

        assert ob.recorder is not None
        ob.recorder.dump_chrome_trace(trace_path)
        print(f"[obs] wrote {len(ob.recorder.events)} trace events to "
              f"{trace_path} (open in chrome://tracing or "
              "https://ui.perfetto.dev)")
        if jsonl_path:
            ob.recorder.dump_jsonl(jsonl_path)
            print(f"[obs] wrote JSONL events to {jsonl_path}")
    finally:
        obs.disable()


def _cmd_chaos(seed: int, steps: int, num_gpus: int, smoke: bool,
               checkpoint_dir: str | None, trace_path: str | None) -> None:
    """Run the seeded chaos scenario on both substrates and report."""
    from repro.resilience.chaos import run_chaos

    report = run_chaos(seed=seed, steps=steps, num_gpus=num_gpus,
                       smoke=smoke, checkpoint_dir=checkpoint_dir,
                       trace_path=trace_path)
    print(report.describe())
    if trace_path:
        print(f"[obs] wrote fault/recovery trace events to {trace_path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Tutel paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available benches")
    sub.add_parser("info", help="library summary")
    bench = sub.add_parser("bench", help="run one bench (or 'all')")
    bench.add_argument("id", help="short id, e.g. fig20, tab08, all")
    obs_cmd = sub.add_parser(
        "obs", help="instrumented demo: trace + metrics of a train step")
    obs_cmd.add_argument("--trace", default="repro-trace.json",
                         help="Chrome-trace JSON output path")
    obs_cmd.add_argument("--jsonl", default=None,
                         help="also dump raw events as JSONL")
    obs_cmd.add_argument("--steps", type=int, default=8,
                         help="training steps to record")
    chaos_cmd = sub.add_parser(
        "chaos", help="seeded fault-injection scenario on both substrates")
    chaos_cmd.add_argument("--seed", type=int, default=0,
                           help="fault-plan seed (default 0)")
    chaos_cmd.add_argument("--steps", type=int, default=30,
                           help="training steps of the functional half")
    chaos_cmd.add_argument("--gpus", type=int, default=4,
                           help="simulated GPUs in the chaos schedule")
    chaos_cmd.add_argument("--smoke", action="store_true",
                           help="small/fast variant (CI)")
    chaos_cmd.add_argument("--checkpoint-dir", default=None,
                           help="keep checkpoints here (default: tempdir)")
    chaos_cmd.add_argument("--trace", default=None,
                           help="dump fault/recovery events as JSONL")
    args = parser.parse_args(argv)

    if args.command == "list":
        _cmd_list()
    elif args.command == "info":
        _cmd_info()
    elif args.command == "obs":
        _cmd_obs(args.trace, args.jsonl, args.steps)
    elif args.command == "chaos":
        _cmd_chaos(args.seed, args.steps, args.gpus, args.smoke,
                   args.checkpoint_dir, args.trace)
    elif args.command == "bench":
        if args.id == "all":
            for short in sorted(discover_benches()):
                print(f"### {short}")
                run_bench(short)
        else:
            run_bench(args.id)
    return 0
