"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # all benches with their paper artifact
    python -m repro bench fig20          # regenerate one table/figure
    python -m repro bench all            # regenerate everything
    python -m repro info                 # library / substrate summary
    python -m repro obs                  # instrumented demo + Chrome trace
    python -m repro chaos --seed 0       # fault-injection scenario
    python -m repro analyze fig22        # critical path + attribution
    python -m repro report               # aggregate BENCH_*.json records
    python -m repro regress              # compare against baselines
    python -m repro serve --all --fast   # serving workloads + SLO gates
    python -m repro runs list            # persisted run registry
    python -m repro runs diff A B        # metric deltas between runs
    python -m repro dashboard latest     # static HTML report of a run
    python -m repro profile step         # op-level FLOP/byte/memory profile
    python -m repro calibrate --fast     # fit simulator coefficients

Each bench is the same module pytest-benchmark runs; the CLI imports
its ``run()`` and prints the full table.  Setting ``REPRO_TRACE=path``
makes ``bench`` record every instrumented span and write a Chrome-trace
JSON there; ``repro obs`` does the same for a self-contained demo
(train steps + simulator run + the encode-locations microbench).
Setting ``REPRO_RUNS_DIR=path`` makes ``bench`` (and any training it
performs) record a persistent run directory there — browse with
``repro runs ...`` and ``repro dashboard``.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys
from pathlib import Path

__all__ = ["main", "discover_benches", "run_bench"]

_BENCH_DESCRIPTIONS = {
    "fig01": "Figure 1 — dynamic MoE workload during training",
    "fig03": "Figure 3 — P1 vs P2 runtime preference",
    "fig05": "Figure 5 — optimal pipelining strategy distribution",
    "fig06": "Figure 6 — small-message bandwidth under-utilization",
    "fig07": "Figure 7 — DeepSpeed fflayer layout regression",
    "fig10": "Figure 10 — Flexible All-to-All layout fix",
    "fig20": "Figure 20 — linear vs 2DH All-to-All scaling",
    "fig21": "Figure 21 — NCCL vs MSCCL implementations",
    "fig22": "Figure 22 — adaptive pipelining under dynamic f",
    "fig23": "Figure 23 — single MoE layer breakdown",
    "fig24": "Figure 24 — encode/decode kernel time (measured)",
    "fig25": "Figure 25 — batch prioritized routing",
    "tab01": "Table 1 — All-to-All overhead ratio",
    "tab04": "Table 4 — GPU memory, dense vs sparse",
    "tab05": "Table 5 — adaptive parallelism switching",
    "tab07": "Table 7 — adaptive pipelining improvements",
    "tab08": "Table 8 — SwinV2-MoE end-to-end speed",
    "tab09": "Table 9 — sparse vs dense accuracy",
    "tab10": "Table 10 — fine-tuning with frozen MoE",
    "tab11": "Table 11 — expert-count ablation",
    "tab12": "Table 12 — top-k / capacity ablation",
    "tab13": "Table 13 — cosine vs linear router",
    "abl": "Ablations — online search, hierarchy width",
}


def _benchmarks_dir() -> Path:
    """Locate the benchmarks/ directory relative to the repo root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if candidate.is_dir() and any(candidate.glob("bench_*.py")):
            return candidate
    raise FileNotFoundError(
        "benchmarks/ directory not found; run from a source checkout")


def discover_benches() -> dict[str, Path]:
    """Map short ids (e.g. 'fig20') to bench script paths."""
    benches: dict[str, Path] = {}
    for path in sorted(_benchmarks_dir().glob("bench_*.py")):
        stem = path.stem.removeprefix("bench_")
        tokens = stem.split("_")
        # Numbered artifacts collapse to 'fig20'/'tab08'; unnumbered
        # families (ablations) keep a second token to stay unique.
        if any(ch.isdigit() for ch in tokens[0]):
            short = tokens[0]
        else:
            short = "_".join(tokens[:2])
        benches[short] = path
    return benches


def run_bench(short_id: str) -> None:
    """Import a bench module by path and execute its ``run()``.

    With ``REPRO_TRACE=path`` in the environment the run happens under
    an enabled observer and the collected trace is written there (one
    file per bench — with ``bench all`` the last bench's trace wins).
    With ``REPRO_RUNS_DIR=path`` the bench records a persistent run
    directory there (manifest + event stream, see ``repro runs``).
    """
    benches = discover_benches()
    if short_id not in benches:
        known = ", ".join(sorted(benches))
        raise SystemExit(
            f"unknown bench {short_id!r}; available: {known}")
    path = benches[short_id]
    trace_path = os.environ.get("REPRO_TRACE")
    ob = None
    if trace_path:
        from repro import obs
        ob = obs.enable()
    run_ctx = None
    from repro.obs.runs import env_runs_root, get_run, recording_run
    if env_runs_root() is not None and get_run() is None:
        run_ctx = recording_run(config={"kind": "bench",
                                        "bench": short_id})
        writer = run_ctx.__enter__()
        print(f"[runs] recording run {writer.manifest.run_id}")
    sys.path.insert(0, str(path.parent))  # for `import conftest`
    try:
        spec = importlib.util.spec_from_file_location(path.stem, path)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.run(verbose=True)
    finally:
        sys.path.remove(str(path.parent))
        if run_ctx is not None:
            if ob is not None and run_ctx.run is not None \
                    and run_ctx.run.manifest.status != "complete":
                run_ctx.run.finalize(
                    registry_snapshot=ob.registry.snapshot())
            run_ctx.__exit__(None, None, None)
        if ob is not None:
            from repro import obs
            assert ob.recorder is not None
            ob.recorder.dump_chrome_trace(trace_path)
            print(f"[obs] wrote {len(ob.recorder.events)} trace events "
                  f"to {trace_path}")
            obs.disable()


def _cmd_list() -> None:
    benches = discover_benches()
    width = max(len(k) for k in benches)
    for short, path in sorted(benches.items()):
        prefix = short.rstrip("0123456789")
        desc = _BENCH_DESCRIPTIONS.get(
            short, _BENCH_DESCRIPTIONS.get(prefix, ""))
        print(f"  {short.ljust(width)}  {path.name:42s} {desc}")


def _cmd_info() -> None:
    import repro
    from repro.cluster.topology import ndv4_topology
    print(f"repro {repro.__version__} — reproduction of 'Tutel: "
          "Adaptive Mixture-of-Experts at Scale' (MLSys 2023)")
    topo = ndv4_topology(2048)
    print(f"default testbed model: {topo.num_gpus} GPUs, "
          f"{topo.gpus_per_node}/node, "
          f"NVLink {topo.intra_link.bandwidth / 1e9:.0f} GB/s, "
          f"IB {topo.inter_link.bandwidth / 1e9:.0f} GB/s per GPU")
    print("substrates: functional NumPy MoE (+autograd) and a "
          "discrete-event cluster simulator")
    print("see DESIGN.md for the system inventory and EXPERIMENTS.md "
          "for paper-vs-measured results")


def _cmd_analyze(target: str, world: int, factor: float,
                 trace_out: str | None) -> None:
    """Critical-path / attribution analysis (``repro analyze``).

    ``target`` is either a Chrome-trace JSON written by
    :func:`repro.cluster.trace.save_chrome_trace` (re-attributed after
    the fact) or the keyword ``fig22``, which rebuilds the paper's
    pipelining segment at ``--world``/``--factor`` and contrasts the
    unpipelined baseline against the adaptive oracle strategy.
    """
    from repro.cluster.simulator import simulate
    from repro.cluster.trace import load_sim_trace, save_chrome_trace
    from repro.obs import analysis

    if target != "fig22":
        if not Path(target).is_file():
            raise SystemExit(
                f"analyze target must be 'fig22' or a trace JSON file, "
                f"got {target!r}")
        result, schedule = load_sim_trace(target)
        report = analysis.analyze(result, schedule)
        print(f"== analysis of {target} ==")
        print(report.render())
        if trace_out:
            save_chrome_trace(result, trace_out, critical=report.critical)
            print(f"[analyze] wrote critical-path-flagged trace to "
                  f"{trace_out}")
        return

    from repro.cluster.topology import ndv4_topology
    from repro.core.config import MoEConfig
    from repro.pipeline.schedule import (
        PipelineStrategy,
        all_strategies,
        build_pipeline_schedule,
    )

    cfg = MoEConfig(world_size=world, experts_per_gpu=2, model_dim=4096,
                    hidden_dim=4096, tokens_per_gpu=4096, top_k=2,
                    capacity_factor=factor)
    topo = ndv4_topology(world)

    def analyzed(strategy: PipelineStrategy):
        schedule = build_pipeline_schedule(cfg, topo, strategy)
        result = simulate(schedule)
        return result, analysis.analyze(result, schedule)

    baseline = PipelineStrategy(degree=1)
    best = min(all_strategies(),
               key=lambda s: simulate(
                   build_pipeline_schedule(cfg, topo, s)).makespan)
    base_result, base_report = analyzed(baseline)
    best_result, best_report = analyzed(best)

    print(f"== Figure 22 segment, {world} GPUs, f={factor:g} ==\n")
    print(f"-- baseline {baseline.describe()} --")
    print(base_report.render())
    print()
    print(f"-- adaptive choice {best.describe()} --")
    print(best_report.render())
    print()
    speedup = base_result.makespan / best_result.makespan
    print(f"adaptive vs unpipelined: {speedup:.2f}x faster; overlap "
          f"efficiency {base_report.overlap_efficiency:.1%} -> "
          f"{best_report.overlap_efficiency:.1%}")
    if trace_out:
        save_chrome_trace(best_result, trace_out,
                          critical=best_report.critical)
        print(f"[analyze] wrote critical-path-flagged trace to "
              f"{trace_out}")


def _cmd_report(bench_dir: str, write_baselines_dir: str | None) -> None:
    """Aggregate ``BENCH_*.json`` records (``repro report``)."""
    from repro.bench import report as bench_report

    results = bench_report.load_results(bench_dir)
    if not results:
        raise SystemExit(f"no BENCH_*.json files in {bench_dir} "
                         "(run benches with REPRO_BENCH_DIR set)")
    print(bench_report.render_report(results))
    if write_baselines_dir:
        paths = bench_report.write_baselines(results, write_baselines_dir)
        print(f"wrote {len(paths)} baseline file(s) to "
              f"{write_baselines_dir}")


def _cmd_regress(bench_dir: str, baselines_dir: str,
                 include_measured: bool) -> int:
    """Compare a bench run against committed baselines
    (``repro regress``); exit 1 on regression."""
    from repro.bench import report as bench_report

    current = bench_report.load_results(bench_dir)
    baselines = bench_report.load_results(baselines_dir)
    if not baselines:
        raise SystemExit(f"no baselines in {baselines_dir}")
    if not current:
        raise SystemExit(f"no BENCH_*.json files in {bench_dir} "
                         "(run benches with REPRO_BENCH_DIR set)")
    comparisons = bench_report.compare(current, baselines,
                                       include_measured=include_measured)
    print(bench_report.render_comparisons(comparisons))
    return 1 if bench_report.has_failures(comparisons) else 0


def _default_baselines_dir() -> str:
    return str(_benchmarks_dir() / "baselines")


def _cmd_obs(trace_path: str, jsonl_path: str | None, steps: int,
             metrics_json: str | None = None,
             prometheus_path: str | None = None) -> None:
    """Instrumented end-to-end demo of the ``repro.obs`` subsystem.

    Runs (1) a few real training steps of a small MoE classifier so the
    trace carries gate/encode/expert_ffn/decode spans and the per-step
    RoutingStats history, (2) one discrete-event simulation so
    simulated-clock tracks appear beside the wall-clock ones, and
    (3) the ``compute_locations`` rewrite-vs-reference microbench timed
    through the obs registry.  Writes the Chrome trace (and optionally
    JSONL) and prints the metrics summary.
    """
    import numpy as np

    from repro import obs
    from repro.cluster.simulator import Schedule, simulate
    from repro.moe.gating import (
        compute_locations,
        compute_locations_reference,
    )
    from repro.nn.models import MoEClassifier
    from repro.train.data import ClusteredTokenTask
    from repro.train.trainer import train_model

    ob = obs.enable()
    try:
        # 1. Real training steps (wall-clock spans + routing history).
        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        rng = np.random.default_rng(0)
        model = MoEClassifier(input_dim=8, model_dim=32, hidden_dim=64,
                              num_classes=4, num_blocks=2, num_experts=8,
                              rng=rng, top_k=2, capacity_factor=1.25)
        train_model(model, task.sample(512), task.sample(256),
                    steps=steps, batch_size=128)

        # 2. One simulated pipeline segment (simulated-clock spans).
        sched = Schedule()
        prev = None
        for i in range(3):
            comp = sched.new_op(work=2e-3, stream="compute",
                                kind="compute", label=f"expert_chunk{i}",
                                deps=(prev,) if prev else ())
            prev = sched.new_op(work=1.5e-3, stream="comm", kind="comm",
                                label=f"a2a_chunk{i}", deps=(comp,))
        simulate(sched)

        # 3. compute_locations speedup, recorded via the obs timers.
        bench_rng = np.random.default_rng(0)
        idxs = bench_rng.integers(0, 64, (2, 4096))
        for _ in range(5):
            with ob.span("locations_reference", obs.CAT_BENCH):
                compute_locations_reference(idxs, 64)
            with ob.span("locations_fast", obs.CAT_BENCH):
                compute_locations(idxs, 64)
        ref = ob.registry.histogram("bench.locations_reference")
        fast = ob.registry.histogram("bench.locations_fast")

        print(ob.registry.render())
        print()
        train_records = [r for r in ob.routing_history if r.step >= 0]
        print(f"routing history: {len(train_records)} training records "
              f"({steps} steps x {len(model.moe_layers())} MoE layer(s)), "
              f"{len(ob.routing_history) - len(train_records)} eval")
        series = ob.capacity_factor_series(layer=0)
        if series:
            print(f"needed capacity factor (layer 0): "
                  f"first={series[0]:.2f} last={series[-1]:.2f} "
                  f"max={max(series):.2f}")
        if fast.min > 0:
            print(f"compute_locations rewrite: {ref.min * 1e3:.3f} ms -> "
                  f"{fast.min * 1e3:.3f} ms "
                  f"({ref.min / fast.min:.1f}x, best of {fast.count}, "
                  f"T=4096 E=64 k=2)")

        assert ob.recorder is not None
        ob.recorder.dump_chrome_trace(trace_path)
        print(f"[obs] wrote {len(ob.recorder.events)} trace events to "
              f"{trace_path} (open in chrome://tracing or "
              "https://ui.perfetto.dev)")
        if jsonl_path:
            ob.recorder.dump_jsonl(jsonl_path)
            print(f"[obs] wrote JSONL events to {jsonl_path}")
        if metrics_json:
            import json
            Path(metrics_json).write_text(
                json.dumps(ob.registry.snapshot(), indent=1,
                           sort_keys=True) + "\n")
            print(f"[obs] wrote metrics snapshot to {metrics_json}")
        if prometheus_path:
            from repro.obs.prometheus import render_prometheus
            Path(prometheus_path).write_text(
                render_prometheus(ob.registry))
            print(f"[obs] wrote prometheus exposition to "
                  f"{prometheus_path}")
    finally:
        obs.disable()


def _cmd_runs(args) -> int:
    """Run-registry queries (``repro runs list|show|diff|gc``)."""
    from repro.bench.harness import Table
    from repro.obs.runs import RunStore

    store = RunStore(args.dir)
    if args.runs_command == "list":
        manifests = store.manifests()
        if not manifests:
            print(f"no runs under {store.root}")
            return 0
        table = Table(title=f"runs under {store.root}",
                      columns=["run_id", "created_at", "seed",
                               "status", "fingerprint", "kind"])
        for m in manifests:
            table.add_row(m.run_id, f"{m.created_at:.0f}",
                          "-" if m.seed is None else m.seed,
                          m.status, m.fingerprint,
                          m.config.get("kind", "-"))
        table.show()
    elif args.runs_command == "show":
        import json as _json
        run_id = store.resolve(args.run)
        if getattr(args, "events", None):
            shown = 0
            for event in store.iter_events(run_id, kind=args.events):
                print(_json.dumps(event, sort_keys=True))
                shown += 1
            if not shown:
                print(f"(run {run_id} has no {args.events!r} events)")
            return 0
        manifest = store.manifest(run_id)
        print(_json.dumps(manifest.to_json_obj(), indent=1,
                          sort_keys=True))
        counts: dict[str, int] = {}
        for event in store.events(run_id):
            kind = event.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        print("events: " + (", ".join(
            f"{k}={v}" for k, v in sorted(counts.items()))
            or "(none)"))
        alerts = list(store.iter_events(run_id, kind="alert"))
        for event in alerts:
            d = event.get("data", {})
            print(f"  alert @ step {event.get('step')}: "
                  f"[{d.get('severity')}] {d.get('kind')} — "
                  f"{d.get('message')}")
        serve_keys = {k: v for k, v in manifest.summary.items()
                      if k.startswith("serve.")}
        if serve_keys:
            print("serving summary:")
            for key in sorted(serve_keys):
                print(f"  {key:24s} {serve_keys[key]}")
            for event in store.iter_events(run_id, kind="slo_check"):
                d = event.get("data", {})
                verdict = "PASS" if d.get("passed") else "FAIL"
                tag = " (wall-clock)" if d.get("measured") else ""
                print(f"  [{verdict}] {d.get('name')}: "
                      f"{d.get('value'):.6g} {d.get('op')} "
                      f"{d.get('bound'):.6g}{tag}")
    elif args.runs_command == "diff":
        deltas = store.diff(args.run_a, args.run_b)
        shown = 0
        for d in deltas:
            if args.changed_only and (d.delta is None or d.delta == 0):
                continue
            fmt = (lambda v: "-" if v is None else f"{v:g}")
            print(f"  {d.name:44s} {fmt(d.a):>12s} -> {fmt(d.b):>12s}"
                  f"  (Δ {fmt(d.delta)})")
            shown += 1
        if not shown:
            print("no differing metrics")
    elif args.runs_command == "gc":
        removed = store.gc(args.keep, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        if removed:
            for run_id in removed:
                print(f"{verb} {run_id}")
        else:
            print(f"nothing to remove ({len(store.run_ids())} run(s) "
                  f"<= keep={args.keep})")
    return 0


def _cmd_dashboard(run: str, out: str | None,
                   runs_dir: str | None,
                   refresh: int | None = None) -> None:
    """Render one run into a standalone HTML dashboard."""
    from repro.obs.dashboard import write_dashboard
    from repro.obs.runs import RunStore

    store = RunStore(runs_dir)
    run_id = store.resolve(run)
    out_path = out if out is not None else f"dashboard-{run_id}.html"
    path = write_dashboard(store, run_id, out_path, refresh=refresh)
    note = f" (auto-refresh {refresh}s)" if refresh else ""
    print(f"[dashboard] wrote {path} (run {run_id}){note}")


def _cmd_live(run: str, runs_dir: str | None, host: str, port: int,
              duration: float | None, refresh: int | None,
              wait: float) -> int:
    """Attach the live telemetry server to a run directory.

    ``--wait`` polls for the run to appear first, so the command can
    be pointed at a registry an in-flight producer is about to
    populate (the CI smoke does exactly this).
    """
    import time as _time

    from repro.obs.live import LiveServer
    from repro.obs.runs import RunStore

    store = RunStore(runs_dir)
    deadline = _time.monotonic() + max(0.0, wait)
    while True:
        try:
            run_id = store.resolve(run)
            break
        except KeyError:
            if _time.monotonic() >= deadline:
                raise SystemExit(
                    f"repro live: no run matching {run!r} under "
                    f"{store.root}")
            _time.sleep(0.2)

    server = LiveServer(store.path(run_id), host=host, port=port,
                        refresh=refresh)

    # Background jobs in non-interactive shells inherit SIGINT as
    # ignored, so a supervisor's polite shutdown arrives as SIGTERM:
    # treat it the same as Ctrl-C and stop the server cleanly.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        import signal as _signal
        _signal.signal(_signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread (e.g. under a test harness)

    server.start()
    print(f"[live] run {run_id} at {server.url}")
    print(f"[live] endpoints: {server.url}/metrics  "
          f"{server.url}/events  {server.url}/healthz  {server.url}/")
    try:
        if duration is not None:
            _time.sleep(duration)
        else:
            while True:
                _time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print("[live] server stopped")
    return 0


def _cmd_overhead(fast: bool, steps: int | None) -> int:
    """Measure observability self-overhead on an instrumented run.

    Trains a small MoE classifier with *everything* on — observer,
    trace recorder, run recording, routing recorder, alert engine —
    under a fresh :class:`repro.obs.overhead.OverheadLedger`, prints
    the per-subsystem attribution, and emits the gated
    ``BENCH_obs_overhead.json``.
    """
    import tempfile
    from collections import Counter

    import numpy as np

    from repro import obs
    from repro.bench.report import emit
    from repro.nn.models import MoEClassifier
    from repro.obs.overhead import (
        OVERHEAD_ARTIFACT,
        measuring_overhead,
        overhead_metrics,
    )
    from repro.obs.runs import RunStore, RunWriter, set_run
    from repro.train.data import ClusteredTokenTask
    from repro.train.trainer import train_model

    n_steps = steps if steps is not None else (8 if fast else 24)
    config = {"kind": "obs_overhead", "fast": fast, "steps": n_steps}

    # Instrumentation cost is per *event*, not per FLOP, so the
    # fraction is only meaningful against realistically sized steps —
    # a toy step would make fixed per-step emit costs look huge.
    task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                              num_classes=4, noise=0.4, seed=0)
    rng = np.random.default_rng(0)
    model = MoEClassifier(input_dim=8, model_dim=64, hidden_dim=256,
                          num_classes=4, num_blocks=2, num_experts=8,
                          rng=rng, top_k=2, capacity_factor=1.25)

    ob = obs.enable()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            run = RunWriter.create(root=tmp, seed=0, config=config,
                                   substrate="functional")
            set_run(run)
            try:
                with measuring_overhead() as led:
                    train_model(model, task.sample(1024),
                                task.sample(256), steps=n_steps,
                                batch_size=512)
                event_counts = Counter(
                    e.get("kind", "?")
                    for e in RunStore(tmp).events(run.manifest.run_id))
                run.finalize(registry_snapshot=ob.registry.snapshot())
                run.close()
            finally:
                set_run(None)
        led.publish(ob)
        print(led.render())
        print()
        emit(OVERHEAD_ARTIFACT,
             "observability self-overhead of an instrumented "
             "training run",
             overhead_metrics(led, event_counts),
             config=config, verbose=True)
    finally:
        obs.disable()
    return 0


def _cmd_chaos(seed: int, steps: int, num_gpus: int, smoke: bool,
               checkpoint_dir: str | None, trace_path: str | None) -> None:
    """Run the seeded chaos scenario on both substrates and report."""
    from repro.resilience.chaos import run_chaos

    report = run_chaos(seed=seed, steps=steps, num_gpus=num_gpus,
                       smoke=smoke, checkpoint_dir=checkpoint_dir,
                       trace_path=trace_path)
    print(report.describe())
    if trace_path:
        print(f"[obs] wrote fault/recovery trace events to {trace_path}")


def _cmd_scenario(name: str | None, list_only: bool, run_all: bool,
                  fast: bool, seed: int | None,
                  checkpoint_dir: str | None) -> int:
    """Run named chaos scenarios and gate on their SLO reports.

    Exit status is nonzero when any scenario fails an SLO assertion,
    so CI can gate on ``repro scenario --all`` directly.
    """
    from dataclasses import replace

    from repro.scenarios import (
        SCENARIOS,
        emit_scenarios,
        get_scenario,
        render_results,
        run_scenario,
        scenario_names,
    )

    if list_only:
        for sc_name in scenario_names():
            sc = SCENARIOS[sc_name]
            print(f"{sc_name:24s} {sc.title}")
            print(f"{'':24s} {sc.describe()}")
        return 0
    if run_all:
        targets = [SCENARIOS[n] for n in scenario_names()]
    elif name is not None:
        targets = [get_scenario(name)]
    else:
        raise SystemExit(
            "repro scenario: give a scenario name, --all, or --list")
    if seed is not None:
        targets = [replace(sc, seed=seed) for sc in targets]

    results = []
    for sc in targets:
        result = run_scenario(sc, fast=fast,
                              checkpoint_dir=checkpoint_dir)
        results.append(result)
        print(result.describe())
        print()
    print(render_results(results))
    if run_all:
        # The combined BENCH_scenarios.json only makes sense for the
        # full batch — a single-scenario record would trip the
        # regression gate's missing-metric check.
        emit_scenarios(results, fast=fast, verbose=True)
    return 0 if all(r.passed for r in results) else 1


def _cmd_serve(name: str | None, list_only: bool, run_all: bool,
               fast: bool, seed: int | None, p99_slo: float | None,
               prometheus_path: str | None,
               trace_path: str | None,
               live_port: int | None = None) -> int:
    """Serve named workloads and gate on their SLO reports.

    Exit status is nonzero when any workload misses an SLO bound, so
    CI can gate on ``repro serve --all --fast`` directly.  The modeled
    percentiles ride a deterministic virtual clock, so two runs with
    the same seed produce identical SLO numbers (only the measured
    wall-clock columns differ).
    """
    from repro import obs
    from repro.serve import (
        WORKLOADS,
        emit_serving,
        get_workload,
        render_serve_results,
        serve_workload,
        workload_names,
    )

    if list_only:
        for wl_name in workload_names():
            wl = WORKLOADS[wl_name]
            print(f"{wl_name:24s} {wl.title}")
            print(f"{'':24s} {wl.arrival.kind} trace, "
                  f"{wl.arrival.horizon_s:g}s horizon, SLO p99 <= "
                  f"{wl.slo.p99_ms:g}ms, goodput >= "
                  f"{wl.slo.min_goodput_rps:g} r/s")
        return 0
    if run_all:
        targets = [WORKLOADS[n] for n in workload_names()]
    elif name is not None:
        targets = [get_workload(name)]
    else:
        raise SystemExit(
            "repro serve: give a workload name, --all, or --list")

    ob = obs.enable()
    live_server = None
    live_run = None
    if live_port is not None:
        # Pre-create the run so the live server has a directory to
        # tail from the very first batch; serve_workload sees an
        # active run and records into it instead of making its own.
        from repro.obs.live import LiveServer
        from repro.obs.runs import RunWriter, set_run

        live_run = RunWriter.create(
            seed=seed if seed is not None else 0,
            config={"kind": "serve_live", "fast": fast,
                    "workloads": [wl.name for wl in targets]},
            substrate="serve")
        set_run(live_run)
        live_server = LiveServer(live_run.directory,
                                 port=live_port).start()
        print(f"[live] run {live_run.manifest.run_id} at "
              f"{live_server.url} (/metrics /events /healthz /)")
    try:
        results = []
        for wl in targets:
            result = serve_workload(wl, fast=fast, seed=seed,
                                    p99_slo_ms=p99_slo)
            results.append(result)
            print(result.describe())
            print()
        print(render_serve_results(results))
        if run_all:
            # The combined BENCH_serving.json only makes sense for
            # the full batch — a single-workload record would trip
            # the regression gate's missing-metric check.
            emit_serving(results, fast=fast, verbose=True)
        if prometheus_path:
            from repro.obs.prometheus import render_prometheus
            with open(prometheus_path, "w") as fh:
                fh.write(render_prometheus(ob.registry))
            print(f"[obs] wrote prometheus exposition to "
                  f"{prometheus_path}")
        if trace_path:
            ob.recorder.dump_chrome_trace(trace_path)
            print(f"[obs] wrote {len(ob.recorder)} trace events to "
                  f"{trace_path}")
    finally:
        if live_run is not None:
            from repro.obs.runs import set_run

            live_run.finalize(
                registry_snapshot=ob.registry.snapshot())
            live_run.close()
            set_run(None)
        if live_server is not None:
            live_server.stop()
        obs.disable()
    return 0 if all(r.passed for r in results) else 1


def _cmd_route(run: str, fast: bool, seed: int, runs_dir: str | None,
               num_gpus: int, gpus_per_node: int,
               bytes_per_token: int | None,
               prometheus_path: str | None) -> int:
    """Routing provenance report + placement what-if hop ledger.

    ``--fast`` mines a seeded synthetic Markov trace (bit-identical
    across machines — the mode that emits the tolerance-0
    ``BENCH_routing.json``); otherwise the profile is aggregated from
    a recorded run's ``routing_load``/``routing_affinity`` events.
    Either way the same recorded traffic is re-priced under every
    candidate placement on the scoring topology, no model re-run.
    """
    from repro import obs
    from repro.cluster.topology import ndv4_topology
    from repro.core.substrate import default_itemsize
    from repro.obs.routing import (
        emit_routing,
        profile_from_events,
        record_gauges,
        render_routing,
        synthetic_profile,
        whatif_placements,
    )

    # All committed workloads/demo models route model_dim=32 tokens;
    # override with --bytes-per-token for anything else.
    model_dim = 32
    if bytes_per_token is None:
        bytes_per_token = model_dim * default_itemsize()

    if fast:
        profile = synthetic_profile(seed)
        config = {"mode": "fast", "seed": seed, "num_layers": 3,
                  "num_experts": 8, "tokens_per_step": 512, "steps": 8,
                  "top_k": 2, "num_gpus": num_gpus,
                  "gpus_per_node": gpus_per_node,
                  "bytes_per_token": bytes_per_token}
        print(f"[route] synthetic profile (seed {seed})")
    else:
        from repro.obs.runs import RunStore
        store = RunStore(runs_dir)
        run_id = store.resolve(run)
        profile = profile_from_events(store.events(run_id))
        config = None
        print(f"[route] aggregated run {run_id}")

    topo = ndv4_topology(num_gpus, gpus_per_node=gpus_per_node)
    scores = whatif_placements(profile, topo,
                               bytes_per_token=bytes_per_token)
    print(render_routing(profile, scores))
    bad = [s.name for s in scores
           if not s.ledger.conserves(profile.total_dispatched)]
    if bad:
        print(f"[route] HOP CONSERVATION VIOLATED for: "
              f"{', '.join(bad)}")
        return 1

    ob = obs.enable()
    try:
        record_gauges(ob, profile, scores)
        if fast:
            emit_routing(profile, scores, config=config, verbose=True)
        if prometheus_path:
            from repro.obs.prometheus import render_prometheus
            with open(prometheus_path, "w") as fh:
                fh.write(render_prometheus(ob.registry))
            print(f"[obs] wrote prometheus exposition to "
                  f"{prometheus_path}")
    finally:
        obs.disable()
    return 0


def _profile_run_ctx(kind: str, config: dict):
    """An active run-registry context when ``REPRO_RUNS_DIR`` is set,
    else a no-op — profiling shouldn't litter run directories unless
    the registry was asked for."""
    from contextlib import nullcontext

    from repro.obs.runs import env_runs_root, recording_run

    if env_runs_root() is None:
        return nullcontext(None)
    return recording_run(config={"kind": kind, **config}, seed=0)


def _dtype_speedup_probe(repeats: int = 3) -> tuple[float, float, float]:
    """Measured step-wall ratio ``float64 / active dtype``.

    Runs fwd+bwd of one expert-FFN-dominated MoE layer (M=256, H=512,
    T=2048, E=8, k=2 — big enough that GEMM/elementwise throughput,
    not Python op overhead, sets the wall) once per substrate dtype,
    interleaved round-robin with a warmup round, keeping each side's
    best.  Host speed cancels in the ratio, which is why the regression
    gate can pin it (``kind="model"``) while raw walls stay
    ``kind="measured"``.  Returns ``(ratio, wall_f64, wall_active)``.
    """
    import time as _time

    import numpy as np

    from repro.autograd.tensor import Tensor
    from repro.core.substrate import default_dtype, substrate_dtype
    from repro.nn.moe import MoE

    def build(dt):
        with substrate_dtype(dt):
            rng = np.random.default_rng(0)
            layer = MoE(256, 512, 8, rng, top_k=2, capacity_factor=1.25)
            x = rng.standard_normal((2048, 256))
            return layer, x

    def one_step(layer, x, dt) -> float:
        with substrate_dtype(dt):
            t0 = _time.perf_counter()
            out, l_aux = layer(Tensor(x, requires_grad=True))
            loss = out.sum() + l_aux
            loss.backward()
            return _time.perf_counter() - t0

    active = default_dtype()
    ref = build(np.float64)
    act = build(active)
    best_ref = best_act = float("inf")
    for rnd in range(repeats + 1):
        w_ref = one_step(*ref, np.float64)
        w_act = one_step(*act, active)
        if rnd == 0:
            continue  # warmup round: caches, BLAS init
        best_ref = min(best_ref, w_ref)
        best_act = min(best_act, w_act)
    return best_ref / best_act, best_ref, best_act


def _cmd_profile(target: str, batch: int, trace_path: str | None,
                 json_path: str | None) -> None:
    """Deterministic op-level profile of the seed model
    (``repro profile step|layer``): per-op FLOPs/bytes/walls, per-stage
    attribution, and the exact peak-memory ledger."""
    import json as _json

    import numpy as np

    from repro.autograd.functional import cross_entropy
    from repro.autograd.tensor import Tensor
    from repro.bench.report import Metric, emit
    from repro.core.substrate import default_dtype
    from repro.obs.profiler import Profiler, profiling

    if target not in ("step", "layer"):
        raise SystemExit(f"repro profile: unknown target {target!r} "
                         "(expected 'step' or 'layer')")
    rng = np.random.default_rng(0)
    prof = Profiler()
    with _profile_run_ctx("profile", {"target": target,
                                      "batch": batch}) as run:
        if target == "step":
            from repro.nn.models import MoEClassifier
            from repro.train.data import ClusteredTokenTask

            task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                      num_classes=4, noise=0.4, seed=0)
            model = MoEClassifier(
                input_dim=8, model_dim=32, hidden_dim=64, num_classes=4,
                num_blocks=2, num_experts=8, rng=rng, top_k=2,
                capacity_factor=1.25)
            b = task.sample(batch)
            xb, yb = b.x, b.y
            with profiling(prof):
                logits, l_aux = model(Tensor(xb))
                loss = cross_entropy(logits, yb) + l_aux * 0.01
                loss.backward()
                # Drop the graph inside the context so the frees land
                # in the allocation timeline (else live == peak).
                del logits, l_aux, loss
        else:
            from repro.nn.moe import MoE

            layer = MoE(32, 64, 8, rng, top_k=2, capacity_factor=1.25)
            x = rng.standard_normal((batch, 32))
            with profiling(prof):
                out, l_aux = layer(Tensor(x, requires_grad=True))
                loss = out.sum() + l_aux
                loss.backward()
                del out, l_aux, loss

        summary = prof.summary()
        print(prof.render())
        totals = summary["totals"]
        if run is not None:
            run.emit("profile", data={
                "target": target,
                "totals": totals,
                "peak_bytes": summary["peak_bytes"],
                "by_stage": summary["by_stage"],
                "by_phase": summary["by_phase"],
                "alloc_timeline": summary["alloc_timeline"]})
            run.update_summary({
                "profile.peak_bytes": float(summary["peak_bytes"]),
                "profile.total_flops": float(totals["flops"]),
                "profile.ops": float(totals["ops"])})
        metrics = [Metric("peak_bytes", float(summary["peak_bytes"]),
                          unit="B", kind="model", tolerance=0.10),
                   Metric("total_flops", float(totals["flops"]),
                          unit="flop", kind="model", tolerance=0.0),
                   Metric("num_ops", float(totals["ops"]), kind="model",
                          tolerance=0.0),
                   Metric("wall_seconds", float(totals["wall"]),
                          unit="s", kind="measured")]
        if target == "step":
            # ISSUE 6 gate: the float32 substrate must be measurably
            # faster than float64 on the same code.  The ratio is
            # host-independent, so it is gated as kind="model"; the
            # committed baseline pins it at the 2.0 acceptance bound
            # with a 0.25 tolerance for noisy CI hosts (same convention
            # as the calibration fidelity gate).
            ratio, wall_f64, wall_act = _dtype_speedup_probe()
            print(f"[profile] dtype speedup probe: float64 "
                  f"{wall_f64 * 1e3:.1f} ms -> "
                  f"{np.dtype(default_dtype()).name} "
                  f"{wall_act * 1e3:.1f} ms ({ratio:.2f}x)")
            metrics += [
                Metric("speedup_vs_float64", float(ratio), unit="x",
                       kind="model", higher_is_better=True,
                       tolerance=0.25),
                Metric("probe_wall_float64", float(wall_f64), unit="s",
                       kind="measured"),
                Metric("probe_wall_active", float(wall_act), unit="s",
                       kind="measured")]
        emit(f"profile_{target}",
             f"Op-level profile of the seed model ({target})",
             metrics,
             config={"schema": 2, "target": target, "batch": batch,
                     "model": "seed-moe-classifier",
                     "dtype": np.dtype(default_dtype()).name},
             verbose=True)
    if trace_path:
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
        prof.export_trace(recorder)
        recorder.dump_chrome_trace(trace_path)
        print(f"[profile] wrote {len(recorder.events)} trace events to "
              f"{trace_path}")
    if json_path:
        Path(json_path).write_text(
            _json.dumps(summary, indent=1, sort_keys=True) + "\n")
        print(f"[profile] wrote summary JSON to {json_path}")


def _cmd_calibrate(fast: bool, seed: int, json_path: str | None) -> None:
    """Fit simulator coefficients to measured kernel/collective walls
    and report prediction fidelity (``repro calibrate``)."""
    from repro.obs.calibrate import (
        emit_calibration,
        report_to_json,
        run_calibration,
    )

    report = run_calibration(fast=fast, seed=seed)
    print(report.render())
    with _profile_run_ctx("calibrate",
                          {"profile": report.profile}) as run:
        if run is not None:
            run.emit("calibration", data=report.to_json_obj())
            run.update_summary({
                "calibration.sim_vs_measured_p95_err":
                    report.sim_vs_measured_p95_err})
        emit_calibration(report, verbose=True)
    if json_path:
        Path(json_path).write_text(report_to_json(report) + "\n")
        print(f"[calibrate] wrote full report to {json_path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Tutel paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available benches")
    sub.add_parser("info", help="library summary")
    bench = sub.add_parser("bench", help="run one bench (or 'all')")
    bench.add_argument("id", help="short id, e.g. fig20, tab08, all")
    obs_cmd = sub.add_parser(
        "obs", help="instrumented demo: trace + metrics of a train step")
    obs_cmd.add_argument("--trace", default="repro-trace.json",
                         help="Chrome-trace JSON output path")
    obs_cmd.add_argument("--jsonl", default=None,
                         help="also dump raw events as JSONL")
    obs_cmd.add_argument("--steps", type=int, default=8,
                         help="training steps to record")
    obs_cmd.add_argument("--metrics-json", default=None,
                         help="dump the metrics registry snapshot "
                              "as JSON here")
    obs_cmd.add_argument("--prometheus", default=None,
                         help="dump the metrics registry in prometheus "
                              "text exposition format here")
    analyze_cmd = sub.add_parser(
        "analyze",
        help="critical-path + attribution analysis of a schedule/trace")
    analyze_cmd.add_argument(
        "target", help="'fig22' or a trace JSON from save_chrome_trace")
    analyze_cmd.add_argument("--world", type=int, default=64,
                             help="world size for the fig22 segment")
    analyze_cmd.add_argument("--factor", type=float, default=4.0,
                             help="capacity factor f for the fig22 "
                                  "segment")
    analyze_cmd.add_argument("--trace", default=None,
                             help="write a critical-path-flagged Chrome "
                                  "trace here")
    report_cmd = sub.add_parser(
        "report", help="aggregate BENCH_*.json records into one table")
    report_cmd.add_argument("--bench-dir",
                            default=os.environ.get("REPRO_BENCH_DIR",
                                                   "bench-results"),
                            help="directory holding BENCH_*.json "
                                 "(default: $REPRO_BENCH_DIR or "
                                 "./bench-results)")
    report_cmd.add_argument("--write-baselines", default=None,
                            metavar="DIR",
                            help="also persist the records as baselines "
                                 "(e.g. benchmarks/baselines)")
    regress_cmd = sub.add_parser(
        "regress",
        help="compare BENCH_*.json against committed baselines; "
             "exit 1 on regression")
    regress_cmd.add_argument("--bench-dir",
                             default=os.environ.get("REPRO_BENCH_DIR",
                                                    "bench-results"),
                             help="directory holding the current "
                                  "BENCH_*.json records")
    regress_cmd.add_argument("--baselines", default=None,
                             help="baseline directory (default: "
                                  "benchmarks/baselines)")
    regress_cmd.add_argument("--include-measured", action="store_true",
                             help="also gate on wall-clock metrics "
                                  "(noisy; off by default)")
    chaos_cmd = sub.add_parser(
        "chaos", help="seeded fault-injection scenario on both substrates")
    chaos_cmd.add_argument("--seed", type=int, default=0,
                           help="fault-plan seed (default 0)")
    chaos_cmd.add_argument("--steps", type=int, default=30,
                           help="training steps of the functional half")
    chaos_cmd.add_argument("--gpus", type=int, default=4,
                           help="simulated GPUs in the chaos schedule")
    chaos_cmd.add_argument("--smoke", action="store_true",
                           help="small/fast variant (CI)")
    chaos_cmd.add_argument("--checkpoint-dir", default=None,
                           help="keep checkpoints here (default: tempdir)")
    chaos_cmd.add_argument("--trace", default=None,
                           help="dump fault/recovery events as JSONL")
    scenario_cmd = sub.add_parser(
        "scenario",
        help="seeded chaos scenarios with pass/fail SLO gates")
    scenario_cmd.add_argument("name", nargs="?", default=None,
                              help="scenario name (see --list)")
    scenario_cmd.add_argument("--list", action="store_true",
                              dest="list_only",
                              help="list the named scenarios")
    scenario_cmd.add_argument("--all", action="store_true",
                              dest="run_all",
                              help="run every named scenario and emit "
                                   "BENCH_scenarios.json")
    scenario_cmd.add_argument("--fast", action="store_true",
                              help="shortened step counts (CI smoke)")
    scenario_cmd.add_argument("--seed", type=int, default=None,
                              help="override the committed seed")
    scenario_cmd.add_argument("--checkpoint-dir", default=None,
                              help="keep checkpoints here "
                                   "(default: tempdir)")
    serve_cmd = sub.add_parser(
        "serve",
        help="online serving workloads with pass/fail SLO gates")
    serve_cmd.add_argument("name", nargs="?", default=None,
                           help="workload name (see --list)")
    serve_cmd.add_argument("--list", action="store_true",
                           dest="list_only",
                           help="list the named workloads")
    serve_cmd.add_argument("--all", action="store_true",
                           dest="run_all",
                           help="serve every named workload and emit "
                                "BENCH_serving.json")
    serve_cmd.add_argument("--fast", action="store_true",
                           help="shortened arrival horizons (CI smoke)")
    serve_cmd.add_argument("--seed", type=int, default=None,
                           help="override the committed seed")
    serve_cmd.add_argument("--p99-slo", type=float, default=None,
                           dest="p99_slo",
                           help="override the modeled-p99 SLO bound in "
                                "ms (a tiny value forces an SLO miss)")
    serve_cmd.add_argument("--prometheus", default=None,
                           help="write the serving metrics registry "
                                "in prometheus text exposition here")
    serve_cmd.add_argument("--trace", default=None,
                           help="write the Chrome trace (request flow "
                                "events + batch stage spans) here")
    serve_cmd.add_argument("--live", type=int, default=None,
                           metavar="PORT", dest="live_port",
                           help="record into a run and serve it live "
                                "on this port while the workloads "
                                "run (0 = ephemeral port)")
    route_cmd = sub.add_parser(
        "route",
        help="routing provenance: load/affinity profile + placement "
             "what-if hop ledger")
    route_cmd.add_argument("run", nargs="?", default="latest",
                           help="run id, unique prefix, or 'latest' "
                                "(ignored with --fast)")
    route_cmd.add_argument("--fast", action="store_true",
                           help="seeded synthetic traffic (bit-stable; "
                                "emits BENCH_routing.json)")
    route_cmd.add_argument("--seed", type=int, default=0,
                           help="synthetic-traffic seed (default 0)")
    route_cmd.add_argument("--dir", default=None,
                           help="registry root (default: "
                                "$REPRO_RUNS_DIR or .repro_runs)")
    route_cmd.add_argument("--gpus", type=int, default=4,
                           help="scoring-world size (default 4)")
    route_cmd.add_argument("--gpus-per-node", type=int, default=2,
                           dest="gpus_per_node",
                           help="GPUs per node in the scoring world "
                                "(default 2)")
    route_cmd.add_argument("--bytes-per-token", type=int, default=None,
                           dest="bytes_per_token",
                           help="dispatch payload bytes per token-hop "
                                "(default: model_dim 32 x substrate "
                                "itemsize)")
    route_cmd.add_argument("--prometheus", default=None,
                           help="write the routing gauges in prometheus "
                                "text exposition here")
    runs_cmd = sub.add_parser(
        "runs", help="query the persistent run registry")
    runs_sub = runs_cmd.add_subparsers(dest="runs_command",
                                       required=True)
    runs_dir_kwargs = dict(
        default=None,
        help="registry root (default: $REPRO_RUNS_DIR or .repro_runs)")
    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    runs_list.add_argument("--dir", **runs_dir_kwargs)
    runs_show = runs_sub.add_parser(
        "show", help="manifest + event summary of one run")
    runs_show.add_argument("run",
                           help="run id, unique prefix, or 'latest'")
    runs_show.add_argument("--events", default=None, metavar="KIND",
                           help="print only this event kind as JSONL "
                                "(e.g. routing_affinity) instead of "
                                "the summary")
    runs_show.add_argument("--dir", **runs_dir_kwargs)
    runs_diff = runs_sub.add_parser(
        "diff", help="metric deltas between two runs")
    runs_diff.add_argument("run_a")
    runs_diff.add_argument("run_b")
    runs_diff.add_argument("--changed-only", action="store_true",
                           help="hide metrics with zero delta")
    runs_diff.add_argument("--dir", **runs_dir_kwargs)
    runs_gc = runs_sub.add_parser(
        "gc", help="prune old runs, keeping the newest N")
    runs_gc.add_argument("--keep", type=int, required=True,
                         help="number of newest runs to keep")
    runs_gc.add_argument("--dry-run", action="store_true",
                         help="report what would be removed")
    runs_gc.add_argument("--dir", **runs_dir_kwargs)
    dash_cmd = sub.add_parser(
        "dashboard",
        help="render a recorded run as a standalone HTML report")
    dash_cmd.add_argument("run", nargs="?", default="latest",
                          help="run id, unique prefix, or 'latest' "
                               "(default)")
    dash_cmd.add_argument("-o", "--out", default=None,
                          help="output HTML path "
                               "(default: dashboard-<run_id>.html)")
    dash_cmd.add_argument("--dir", default=None,
                          help="registry root (default: "
                               "$REPRO_RUNS_DIR or .repro_runs)")
    dash_cmd.add_argument("--refresh", type=int, default=None,
                          metavar="SECONDS",
                          help="embed a meta-refresh so the page "
                               "reloads every N seconds (pair with "
                               "re-rendering, or use 'repro live')")
    live_cmd = sub.add_parser(
        "live",
        help="serve a run directory live over HTTP: prometheus "
             "/metrics, SSE /events, /healthz, and the dashboard")
    live_cmd.add_argument("run", nargs="?", default="latest",
                          help="run id, unique prefix, or 'latest' "
                               "(default)")
    live_cmd.add_argument("--dir", default=None,
                          help="registry root (default: "
                               "$REPRO_RUNS_DIR or .repro_runs)")
    live_cmd.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1)")
    live_cmd.add_argument("--port", type=int, default=8123,
                          help="bind port; 0 picks an ephemeral one "
                               "(default 8123)")
    live_cmd.add_argument("--duration", type=float, default=None,
                          metavar="SECONDS",
                          help="serve for this long then exit "
                               "(default: until interrupted)")
    live_cmd.add_argument("--refresh", type=int, default=None,
                          metavar="SECONDS",
                          help="default dashboard auto-refresh "
                               "interval")
    live_cmd.add_argument("--wait", type=float, default=0.0,
                          metavar="SECONDS",
                          help="poll this long for the run to appear "
                               "before giving up (for racing an "
                               "in-flight producer)")
    overhead_cmd = sub.add_parser(
        "overhead",
        help="measure observability self-overhead on an instrumented "
             "training run; emits gated BENCH_obs_overhead.json")
    overhead_cmd.add_argument("--fast", action="store_true",
                              help="short run (CI smoke)")
    overhead_cmd.add_argument("--steps", type=int, default=None,
                              help="override the instrumented step "
                                   "count (default: 24, or 8 with "
                                   "--fast)")
    profile_cmd = sub.add_parser(
        "profile",
        help="op-level FLOP/byte/memory profile of a train step or "
             "MoE layer")
    profile_cmd.add_argument("target", nargs="?", default="step",
                             choices=("step", "layer"),
                             help="what to profile: a full fwd+bwd "
                                  "train step (default) or one MoE "
                                  "layer")
    profile_cmd.add_argument("--batch", type=int, default=128,
                             help="tokens in the profiled batch "
                                  "(default 128)")
    profile_cmd.add_argument("--trace", default=None,
                             help="write a Chrome trace (spans + "
                                  "memory/FLOP counter tracks) here")
    profile_cmd.add_argument("--json", default=None,
                             help="write the full profile summary "
                                  "as JSON here")
    cal_cmd = sub.add_parser(
        "calibrate",
        help="fit simulator alpha-beta/throughput coefficients to "
             "measured kernel walls and report fidelity")
    cal_cmd.add_argument("--fast", action="store_true",
                         help="small sweep (CI smoke; ~seconds)")
    cal_cmd.add_argument("--seed", type=int, default=0,
                         help="routing-pattern seed (default 0)")
    cal_cmd.add_argument("--json", default=None,
                         help="write the full calibration report "
                              "as JSON here")
    args = parser.parse_args(argv)

    if args.command == "list":
        _cmd_list()
    elif args.command == "info":
        _cmd_info()
    elif args.command == "obs":
        _cmd_obs(args.trace, args.jsonl, args.steps, args.metrics_json,
                 args.prometheus)
    elif args.command == "analyze":
        _cmd_analyze(args.target, args.world, args.factor, args.trace)
    elif args.command == "report":
        _cmd_report(args.bench_dir, args.write_baselines)
    elif args.command == "regress":
        return _cmd_regress(args.bench_dir,
                            args.baselines or _default_baselines_dir(),
                            args.include_measured)
    elif args.command == "chaos":
        _cmd_chaos(args.seed, args.steps, args.gpus, args.smoke,
                   args.checkpoint_dir, args.trace)
    elif args.command == "scenario":
        try:
            return _cmd_scenario(args.name, args.list_only,
                                 args.run_all, args.fast, args.seed,
                                 args.checkpoint_dir)
        except KeyError as exc:
            raise SystemExit(f"repro scenario: {exc.args[0]}") from exc
    elif args.command == "serve":
        try:
            return _cmd_serve(args.name, args.list_only, args.run_all,
                              args.fast, args.seed, args.p99_slo,
                              args.prometheus, args.trace,
                              live_port=args.live_port)
        except KeyError as exc:
            raise SystemExit(f"repro serve: {exc.args[0]}") from exc
    elif args.command == "route":
        try:
            return _cmd_route(args.run, args.fast, args.seed, args.dir,
                              args.gpus, args.gpus_per_node,
                              args.bytes_per_token, args.prometheus)
        except KeyError as exc:
            raise SystemExit(f"repro route: {exc.args[0]}") from exc
    elif args.command == "runs":
        try:
            return _cmd_runs(args)
        except KeyError as exc:
            raise SystemExit(f"repro runs: {exc.args[0]}") from exc
    elif args.command == "dashboard":
        try:
            _cmd_dashboard(args.run, args.out, args.dir,
                           refresh=args.refresh)
        except KeyError as exc:
            raise SystemExit(f"repro dashboard: {exc.args[0]}") from exc
    elif args.command == "live":
        try:
            return _cmd_live(args.run, args.dir, args.host, args.port,
                             args.duration, args.refresh, args.wait)
        except KeyError as exc:
            raise SystemExit(f"repro live: {exc.args[0]}") from exc
    elif args.command == "overhead":
        return _cmd_overhead(args.fast, args.steps)
    elif args.command == "profile":
        _cmd_profile(args.target, args.batch, args.trace, args.json)
    elif args.command == "calibrate":
        _cmd_calibrate(args.fast, args.seed, args.json)
    elif args.command == "bench":
        if args.id == "all":
            for short in sorted(discover_benches()):
                print(f"### {short}")
                run_bench(short)
        else:
            run_bench(args.id)
    return 0
