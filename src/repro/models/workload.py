"""Dynamic MoE workload traces and the typical-settings grid.

Two generators back the evaluation:

* :func:`dynamic_capacity_trace` produces per-iteration *needed
  capacity factors* resembling paper Figure 1: routing is most uneven
  early in training (needed ``f`` spikes up to ~4.4x), relaxes as the
  gate learns, stays noisy throughout, and differs per layer — deeper
  MoE layers route less evenly.
* :func:`typical_settings` enumerates the 243-model grid of Table 6
  (3 choices each of samples/step, tokens/sample, M, V and local
  experts) used by the adaptive-pipelining evaluation.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.core.config import MoEConfig

__all__ = [
    "dynamic_capacity_trace",
    "TYPICAL_SETTINGS_AXES",
    "typical_settings",
    "sample_capacity_factors",
]


def dynamic_capacity_trace(steps: int, layer_index: int = 0,
                           num_layers: int = 10, peak: float = 4.4,
                           seed: int = 0) -> np.ndarray:
    """Needed capacity factor per training iteration (Figure 1 shape).

    The trace is ``base + transient + noise``: a warm-up transient that
    decays over the first ~20% of training from ``peak`` toward the
    steady level, multiplicative log-normal noise, and occasional
    routing-collapse spikes.  ``layer_index`` shifts the steady level
    (later layers in the paper's traces run hotter).

    Returns an array of needed ``f >= 1`` values.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if not 0 <= layer_index < num_layers:
        raise ValueError(
            f"layer_index must be in [0, {num_layers}), got {layer_index}")
    rng = np.random.default_rng(seed + 7919 * layer_index)
    t = np.arange(steps) / max(steps - 1, 1)

    depth = layer_index / max(num_layers - 1, 1)
    steady = 1.15 + 0.8 * depth
    warmup = (peak - steady) * np.exp(-t / 0.08)
    noise = np.exp(rng.normal(0.0, 0.10, steps))
    spikes = (rng.random(steps) < 0.02) * rng.uniform(0.5, 1.5, steps)
    trace = (steady + warmup) * noise + spikes
    return np.maximum(trace, 1.0)


TYPICAL_SETTINGS_AXES: dict[str, tuple] = {
    "samples_per_step": (8, 16, 32),
    "tokens_per_sample": (512, 1024, 2048),
    "model_dim": (1024, 2048, 4096),
    "hidden_dim": (1024, 2048, 4096),
    "experts_per_gpu": (0.5, 1, 2),
}


def typical_settings(world_size: int, gpus_per_node: int = 8,
                     top_k: int = 2,
                     capacity_factor: float = 1.0) -> list[MoEConfig]:
    """The 243 typical single-MoE-layer settings of paper Table 6.

    ``samples/step`` and ``tokens/sample`` multiply into the per-GPU
    token count.  Settings whose expert sharding does not divide the
    world size are skipped (cannot be placed), which never happens for
    the even world sizes of the paper's sweep.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    configs = []
    axes = TYPICAL_SETTINGS_AXES
    for samples, tokens, m, v, de in itertools.product(
            axes["samples_per_step"], axes["tokens_per_sample"],
            axes["model_dim"], axes["hidden_dim"],
            axes["experts_per_gpu"]):
        if de < 1 and world_size % round(1 / de) != 0:
            continue
        num_experts = max(1, round(world_size * de))
        cfg = MoEConfig(
            world_size=world_size, gpus_per_node=gpus_per_node,
            experts_per_gpu=de, model_dim=m, hidden_dim=v,
            tokens_per_gpu=samples * tokens,
            top_k=min(top_k, num_experts),
            capacity_factor=capacity_factor)
        configs.append(cfg)
    return configs


def sample_capacity_factors(count: int, low: float = 1.0,
                            high: float = 16.0,
                            seed: int = 0) -> np.ndarray:
    """Log-uniform capacity factors emulating varied iterations
    (the hybrid ``f = 1 ~ 16`` rows of Tables 5 and 7)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    rng = np.random.default_rng(seed)
    return np.exp(rng.uniform(math.log(low), math.log(high), count))
