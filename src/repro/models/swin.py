"""SwinV2 / SwinV2-MoE workload model (paper Section 5.3).

SwinV2-MoE replaces every other feed-forward layer of Swin Transformer
V2 with an MoE layer, except in the first two network stages.  With the
standard depths ``[2, 2, 18, 2]`` that yields 9 MoE layers in stage 3
and 1 in stage 4 — the "10 total MoE layers" of paper Figure 1.

The model provides:

* exact parameter counts (dense and MoE variants, active parameters),
  matching Table 11's ``#param`` column;
* exact inference GFLOPs as a function of ``k`` and ``f``, matching
  Table 12 (MoE fflayer work scales with ``k * f``);
* end-to-end step-time estimation: the dense backbone rate is a
  calibration constant taken from the paper's measured dense rows, and
  each MoE layer's overhead comes from the runtime cost models — this
  regenerates Table 8's train/inference images-per-second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology, ndv4_topology
from repro.core.config import MoEConfig
from repro.runtime.plan import ExecutionFeatures, MoEStepBreakdown, moe_step_time

__all__ = [
    "SwinVariant",
    "SWINV2_S",
    "SWINV2_B",
    "SWINV2_THIN_TINY",
    "moe_parameter_count",
    "inference_gflops",
    "SwinMoESpeed",
    "swinv2_moe_speed",
]

_MLP_RATIO = 4
_TRAIN_FLOP_FACTOR = 3.0  # backward ~ 2x forward


@dataclass(frozen=True)
class SwinVariant:
    """Geometry + dense-baseline calibration of one SwinV2 size.

    ``dense_train_rate`` / ``dense_infer_rate`` are the measured dense
    per-GPU images/second from paper Table 8 & 11 — the calibration
    anchor for end-to-end speed estimates.
    """

    name: str
    embed_dim: int
    depths: tuple[int, int, int, int]
    input_resolution: int = 192
    patch_size: int = 4
    dense_params: float = 0.0          # from the paper's Table 11
    dense_gflops: float = 0.0
    dense_train_rate: float = 0.0      # images/s per GPU
    dense_infer_rate: float = 0.0

    @property
    def stage_dims(self) -> tuple[int, ...]:
        return tuple(self.embed_dim * 2 ** i for i in range(4))

    @property
    def stage_tokens(self) -> tuple[int, ...]:
        """Tokens per image in each stage (spatial downsampling by 2)."""
        base = self.input_resolution // self.patch_size
        return tuple((base // 2 ** i) ** 2 for i in range(4))

    def moe_layer_plan(self) -> list[tuple[int, int, int]]:
        """(stage, dim, tokens-per-image) of every MoE layer.

        Every other block of stages 3 and 4 (0-indexed 2 and 3) hosts
        an MoE layer.
        """
        plan = []
        for stage in (2, 3):
            count = self.depths[stage] // 2
            for _ in range(count):
                plan.append((stage, self.stage_dims[stage],
                             self.stage_tokens[stage]))
        return plan

    def computed_dense_gflops(self, window: int = 12) -> float:
        """Per-image compute of the dense model derived from geometry.

        Multiply-accumulate counts (the vision-literature "FLOPs"
        convention): patch embedding, then per block QKV+projection
        (``4 T D^2``), windowed attention (``2 T w^2 D``) and the MLP
        (``2 T D (4D)``).  Validated against the paper's Table 11
        anchors (6.76 GFLOPs for SwinV2-S, 11.78 for SwinV2-B at
        192 x 192, window 12) by the test suite.
        """
        total = 0.0
        base_tokens = (self.input_resolution // self.patch_size) ** 2
        total += base_tokens * (self.patch_size ** 2 * 3) * self.embed_dim
        for stage, (depth, dim, tokens) in enumerate(
                zip(self.depths, self.stage_dims, self.stage_tokens)):
            per_block = (4 * tokens * dim * dim
                         + 2 * tokens * window ** 2 * dim
                         + 2 * tokens * dim * (dim * _MLP_RATIO))
            total += depth * per_block
            if stage < 3:
                # Patch-merging downsample: 4C -> 2C linear on the
                # next stage's token count.
                next_tokens = self.stage_tokens[stage + 1]
                total += next_tokens * (4 * dim) * (2 * dim)
        return total / 1e9

    def moe_ffn_gflops(self) -> float:
        """Per-image compute of the fflayers that become MoE, at
        ``k = f = 1`` (each token through one expert).

        Counted as multiply-accumulates, the convention behind the
        paper's (and the vision literature's) "GFLOPs" columns —
        verified against the Table 12 deltas.
        """
        total = 0.0
        for _, dim, tokens in self.moe_layer_plan():
            total += tokens * 2 * dim * (dim * _MLP_RATIO)
        return total / 1e9


SWINV2_S = SwinVariant(
    name="SwinV2-S", embed_dim=96, depths=(2, 2, 18, 2),
    dense_params=65.8e6, dense_gflops=6.76,
    dense_train_rate=350.0, dense_infer_rate=1604.0)

SWINV2_B = SwinVariant(
    name="SwinV2-B", embed_dim=128, depths=(2, 2, 18, 2),
    dense_params=109.3e6, dense_gflops=11.78,
    dense_train_rate=288.0, dense_infer_rate=1195.0)

# The "thin-tiny" variant of Figure 1 (a slimmed SwinV2-T).
SWINV2_THIN_TINY = SwinVariant(
    name="SwinV2-thin-tiny", embed_dim=64, depths=(2, 2, 6, 2),
    dense_params=12.0e6, dense_gflops=1.2,
    dense_train_rate=1400.0, dense_infer_rate=5200.0)


def moe_parameter_count(variant: SwinVariant, num_experts: int) -> float:
    """Total parameters of the MoE variant (Table 11 ``#param``).

    Each MoE layer adds ``E - 1`` extra expert fflayers on top of the
    dense model's single fflayer.
    """
    if num_experts < 1:
        raise ValueError(f"num_experts must be >= 1, got {num_experts}")
    extra = 0.0
    for _, dim, _ in variant.moe_layer_plan():
        expert_params = 2 * dim * (dim * _MLP_RATIO)
        extra += (num_experts - 1) * expert_params
    return variant.dense_params + extra


def inference_gflops(variant: SwinVariant, top_k: int,
                     capacity_factor: float) -> float:
    """Per-image inference GFLOPs at a (k, f) setting (Table 12).

    MoE fflayers process ``k * f * T`` token-rows instead of ``T``, so
    their FLOPs scale by ``k * f`` while the rest of the network is
    unchanged.
    """
    if top_k < 1 or capacity_factor <= 0:
        raise ValueError("top_k must be >= 1 and capacity_factor > 0")
    moe_ffn = variant.moe_ffn_gflops()
    return (variant.dense_gflops
            + moe_ffn * (top_k * capacity_factor - 1.0))


@dataclass(frozen=True)
class SwinMoESpeed:
    """Estimated end-to-end rates (images/second per GPU)."""

    train_rate: float
    infer_rate: float
    moe_train_overhead: float   # seconds per step spent in MoE layers
    moe_infer_overhead: float
    breakdowns: tuple[MoEStepBreakdown, ...]


def _moe_layer_config(variant: SwinVariant, dim: int, tokens_per_image: int,
                      batch_per_gpu: int, num_experts: int, world: int,
                      top_k: int, capacity_factor: float) -> MoEConfig:
    return MoEConfig(
        world_size=world,
        experts_per_gpu=num_experts / world,
        model_dim=dim,
        hidden_dim=dim * _MLP_RATIO,
        tokens_per_gpu=tokens_per_image * batch_per_gpu,
        top_k=top_k,
        capacity_factor=capacity_factor)


def swinv2_moe_speed(variant: SwinVariant, features: ExecutionFeatures,
                     num_experts: int = 32, top_k: int = 1,
                     capacity_factor: float = 1.0, world: int = 8,
                     batch_per_gpu: int = 128,
                     topo: ClusterTopology | None = None) -> SwinMoESpeed:
    """End-to-end training and inference rates of SwinV2-MoE.

    The dense backbone time per step is anchored at the calibrated
    dense rate; every MoE layer replaces one dense fflayer, so its
    overhead is the MoE step time *minus* the dense fflayer it
    displaced (which is already inside the dense anchor).
    """
    topo = topo or ndv4_topology(world)
    dense_train_step = batch_per_gpu / variant.dense_train_rate
    dense_infer_step = batch_per_gpu / variant.dense_infer_rate

    moe_train = 0.0
    moe_infer = 0.0
    breakdowns: list[MoEStepBreakdown] = []
    for _, dim, tokens in variant.moe_layer_plan():
        cfg = _moe_layer_config(variant, dim, tokens, batch_per_gpu,
                                num_experts, world, top_k, capacity_factor)
        train_bd = moe_step_time(cfg, topo, features, training=True)
        infer_bd = moe_step_time(cfg, topo, features, training=False)
        displaced_flops = (2.0 * cfg.tokens_per_gpu * 2 * dim
                           * dim * _MLP_RATIO)
        displaced_train = (_TRAIN_FLOP_FACTOR * displaced_flops
                           / (topo.gpu.peak_flops * 0.45))
        displaced_infer = displaced_flops / (topo.gpu.peak_flops * 0.45)
        moe_train += max(0.0, train_bd.total - displaced_train)
        moe_infer += max(0.0, infer_bd.total - displaced_infer)
        breakdowns.append(train_bd)

    train_step = dense_train_step + moe_train
    infer_step = dense_infer_step + moe_infer
    return SwinMoESpeed(
        train_rate=batch_per_gpu / train_step,
        infer_rate=batch_per_gpu / infer_step,
        moe_train_overhead=moe_train,
        moe_infer_overhead=moe_infer,
        breakdowns=tuple(breakdowns))
