"""Workload models: SwinV2-MoE geometry and dynamic workload traces."""

from repro.models.swin import (
    SWINV2_B,
    SWINV2_S,
    SWINV2_THIN_TINY,
    SwinMoESpeed,
    SwinVariant,
    inference_gflops,
    moe_parameter_count,
    swinv2_moe_speed,
)
from repro.models.workload import (
    TYPICAL_SETTINGS_AXES,
    dynamic_capacity_trace,
    sample_capacity_factors,
    typical_settings,
)

__all__ = [
    "SWINV2_B",
    "SWINV2_S",
    "SWINV2_THIN_TINY",
    "SwinMoESpeed",
    "SwinVariant",
    "inference_gflops",
    "moe_parameter_count",
    "swinv2_moe_speed",
    "TYPICAL_SETTINGS_AXES",
    "dynamic_capacity_trace",
    "sample_capacity_factors",
    "typical_settings",
]
