"""repro.resilience — fault injection, checkpoint/restore, recovery.

Tutel's premise is that MoE workloads are *dynamic* and the system
must adapt at runtime; at the 2,048-4,096-GPU scale of the paper's
evaluation, stragglers, degraded links, and dying ranks are routine.
This subsystem makes failure a first-class, *deterministic* input on
both substrates:

* :mod:`repro.resilience.faults` — seeded :class:`FaultPlan` objects
  (straggler windows, link degradation, op-failure instants, expert
  failures) consumed by :func:`repro.cluster.simulator.simulate` and
  the chaos runner;
* :mod:`repro.resilience.checkpoint` — checkpoint/restore of model
  parameters, Adam state, RNG state, and training history, proven
  bit-identical to an uninterrupted run;
* :mod:`repro.resilience.recovery` — strategy re-selection after an
  expert-parallel rank failure, reusing the paper's switchable P1/P2
  parallelism as a recovery mechanism;
* :mod:`repro.resilience.chaos` — the seeded end-to-end chaos scenario
  behind ``repro chaos``.

Everything emits ``repro.obs`` counters and trace events
(``fault.injected``, ``fault.recovered``, ``train.step_skipped``,
``ckpt.saved``) so recoveries are attributable to steps on the unified
timeline.
"""

from repro.resilience.checkpoint import (
    TrainingCheckpoint,
    capture_training_state,
    load_checkpoint,
    restore_training_state,
    save_checkpoint,
)
from repro.resilience.faults import (
    ExpertFailure,
    FaultPlan,
    LinkDegradation,
    OpFailure,
    StragglerWindow,
)
from repro.resilience.recovery import RecoveryDecision, reselect_strategy
from repro.resilience.chaos import ChaosReport, run_chaos

__all__ = [
    "StragglerWindow",
    "LinkDegradation",
    "OpFailure",
    "ExpertFailure",
    "FaultPlan",
    "TrainingCheckpoint",
    "capture_training_state",
    "restore_training_state",
    "save_checkpoint",
    "load_checkpoint",
    "RecoveryDecision",
    "reselect_strategy",
    "ChaosReport",
    "run_chaos",
]
