"""Strategy re-selection after an expert-parallel rank failure.

The paper's switchable P1/P2 parallelism (Section 3.2) exists because
both strategies keep identical token feeding, gradient updating, and
parameter placement — switching is free at every iteration.  The same
property makes switching a *recovery* mechanism: when a rank dies, the
surviving GPUs re-form the expert-parallel group and re-run the
strategy selector over the shrunken, possibly asymmetric cluster.

Mechanics of :func:`reselect_strategy`:

1. The surviving world shrinks to the largest size that still serves
   every global expert (``W' % E == 0`` when experts are replicated,
   so the switchable strategies stay admissible); extra healthy ranks
   are parked rather than violating divisibility.
2. A node left partially populated makes the cluster *asymmetric*,
   which rules out the hierarchical 2DH All-to-All until the rank is
   replaced (its aggregation phases assume ``m`` equal participants
   per node) — the selector is restricted to the feasible algorithms
   via :func:`repro.collectives.schedule.feasible_a2a_algorithms`.
3. :func:`repro.parallel.strategy.best_strategy` then re-picks the
   cheapest admissible parallelism (EP, P1, or P2) on the degraded
   topology, and the decision is emitted as ``fault.injected`` /
   ``fault.recovered`` observability events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.collectives.schedule import feasible_a2a_algorithms
from repro.core.config import MoEConfig
from repro.obs import CAT_FAULT, get_observer
from repro.obs.runs import get_run
from repro.parallel.strategy import StrategyCost, best_strategy

__all__ = ["RecoveryDecision", "reselect_strategy"]


@dataclass(frozen=True)
class RecoveryDecision:
    """Outcome of re-selecting the parallelism after rank failures."""

    failed_ranks: tuple[int, ...]
    healthy_world: int        # ranks still alive
    surviving_world: int      # ranks actually used (divisibility kept)
    config: MoEConfig         # re-formed expert-parallel configuration
    topology: ClusterTopology
    cost: StrategyCost        # best strategy on the degraded cluster
    baseline_cost: StrategyCost  # best strategy just before the loss
    node_asymmetric: bool     # some node left partially populated
    link_degradation: float = 1.0  # fabric derate active at the loss

    @property
    def dropped_healthy(self) -> int:
        """Healthy ranks parked to preserve group divisibility."""
        return self.healthy_world - self.surviving_world

    @property
    def slowdown(self) -> float:
        """Iteration-time ratio vs. the selection *just before* the
        rank loss.  Under a compound fault (rank loss while a link is
        already degraded) the baseline already includes the link
        derate, so this isolates what the lost rank cost — the two
        faults are not conflated."""
        if self.baseline_cost.total_time <= 0:
            return 1.0
        return self.cost.total_time / self.baseline_cost.total_time

    def describe(self) -> str:
        return (f"ranks {list(self.failed_ranks)} failed: "
                f"{self.surviving_world}/{self.config.num_global_experts}"
                f" GPUs/experts, strategy "
                f"{self.baseline_cost.strategy.value} -> "
                f"{self.cost.strategy.value} "
                f"(a2a {self.cost.a2a_algorithm.value}, "
                f"{self.slowdown:.2f}x iteration time)")


def _nodes_asymmetric(topo: ClusterTopology,
                      failed_ranks: tuple[int, ...]) -> bool:
    """True when a failure leaves some node partially populated."""
    per_node: dict[int, int] = {}
    for rank in failed_ranks:
        per_node[topo.node_of(rank)] = per_node.get(
            topo.node_of(rank), 0) + 1
    return any(0 < count < topo.local_size
               for count in per_node.values())


def reselect_strategy(cfg: MoEConfig, topo: ClusterTopology,
                      failed_ranks: tuple[int, ...] | list[int],
                      training: bool = True,
                      link_degradation: float = 1.0
                      ) -> RecoveryDecision:
    """Re-pick the parallelism strategy after ``failed_ranks`` died.

    ``link_degradation`` < 1 additionally derates the inter-node
    fabric (a degraded-link fault coinciding with the failure).  The
    derate applies to the *baseline* selection too — the link was
    already slow when the rank died — so ``RecoveryDecision.slowdown``
    prices only the rank loss, and the re-selected strategy is checked
    feasible on the doubly-degraded topology.
    Raises :class:`RuntimeError` when the survivors cannot serve every
    global expert — that scenario needs a checkpoint restore, not a
    strategy switch.
    """
    if not 0.0 < link_degradation <= 1.0:
        raise ValueError(
            f"link_degradation must be in (0, 1], "
            f"got {link_degradation}")
    failed = tuple(sorted(set(int(r) for r in failed_ranks)))
    for rank in failed:
        topo._check_rank(rank)
    if cfg.world_size != topo.num_gpus:
        raise ValueError(
            f"config world size {cfg.world_size} does not match "
            f"topology {topo.num_gpus}")

    num_experts = cfg.num_global_experts
    healthy = cfg.world_size - len(failed)
    if healthy >= num_experts:
        surviving = num_experts * (healthy // num_experts)
    else:
        # Fewer GPUs than experts: every survivor packs more experts;
        # keep the expert count divisible over the survivors.
        surviving = healthy
        while surviving > 0 and num_experts % surviving != 0:
            surviving -= 1
    if surviving < 1:
        raise RuntimeError(
            f"unrecoverable: {healthy} healthy rank(s) cannot serve "
            f"{num_experts} global experts; restore from checkpoint")

    new_cfg = cfg.with_(world_size=surviving,
                        experts_per_gpu=num_experts / surviving)
    # The pre-fault cluster already carries any active link derate:
    # that is the topology the baseline selection ran on, and the
    # survivors inherit the same slow fabric.
    pre_fault_topo = topo
    if link_degradation < 1.0:
        pre_fault_topo = topo.with_degraded_inter_link(link_degradation)
    new_topo = pre_fault_topo.with_num_gpus(surviving)
    asymmetric = _nodes_asymmetric(topo, failed)
    candidates = feasible_a2a_algorithms(new_topo,
                                         symmetric_nodes=not asymmetric)

    baseline = best_strategy(cfg, pre_fault_topo, training=training)
    cost = best_strategy(new_cfg, new_topo, training=training,
                         a2a_candidates=candidates)

    decision = RecoveryDecision(
        failed_ranks=failed, healthy_world=healthy,
        surviving_world=surviving, config=new_cfg, topology=new_topo,
        cost=cost, baseline_cost=baseline, node_asymmetric=asymmetric,
        link_degradation=link_degradation)

    ob = get_observer()
    if ob is not None:
        ob.instant("injected", CAT_FAULT, args={
            "kind": "rank_failure", "ranks": list(failed)})
        ob.instant("recovered", CAT_FAULT, args={
            "kind": "strategy_reselection",
            "strategy": cost.strategy.value,
            "a2a": cost.a2a_algorithm.value,
            "world": surviving,
            "slowdown": decision.slowdown})
        ob.gauge("recovery.slowdown", decision.slowdown)
    run = get_run()
    if run is not None:
        run.emit("fault", data={"kind": "rank_failure",
                                "ranks": list(failed)})
        run.emit("recovery", data={
            "kind": "strategy_reselection",
            "strategy": cost.strategy.value,
            "a2a": cost.a2a_algorithm.value,
            "world": surviving,
            "slowdown": decision.slowdown})
    return decision
