"""Checkpoint/restore of the functional-substrate training state.

A checkpoint captures *everything* a training step depends on — model
parameters, Adam moments and step count, the data-sampling RNG state,
the training history so far, and any expert-failure masks — so that
``train 20 steps -> checkpoint -> restore -> train 20 more`` is **bit
identical** to training 40 steps straight (the determinism contract
large-scale training reports treat as table stakes; see Megatron Core
MoE in PAPERS.md).  Sparsity schedules need no state of their own:
they are pure functions of the step index, which the checkpoint
records.

Format: a single ``.npz`` file holding every array (parameters under
``param/<name>``, Adam moments under ``adam_m/<i>`` / ``adam_v/<i>``)
plus one JSON metadata entry for the scalars, the RNG state, and the
history lists.  NumPy's PCG64 state is a nested dict of (big) integers,
which JSON represents exactly.

Dtype contract (ISSUE 6): the checkpoint's arrays are authoritative.
``.npz`` preserves each array's dtype exactly, and restore re-points
live parameters/optimizer slots at a copy of the saved array whenever
the dtypes differ instead of casting in place — so a float32 run
restored into a float64-initialised model (or vice versa) resumes bit
identical to the run that wrote the checkpoint.  The substrate dtype
active at capture time is recorded in the metadata for provenance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core import substrate as _substrate

__all__ = [
    "CHECKPOINT_VERSION",
    "TrainingCheckpoint",
    "capture_training_state",
    "restore_training_state",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 1


@dataclass
class TrainingCheckpoint:
    """In-memory image of one training run at a step boundary.

    ``step`` is the number of completed steps — the index the resumed
    run continues from.
    """

    step: int
    params: dict[str, np.ndarray]
    opt_m: list[np.ndarray]
    opt_v: list[np.ndarray]
    opt_step: int
    rng_state: dict
    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    skipped_steps: list[int] = field(default_factory=list)
    capacity_traces: dict[int, list[float]] = field(default_factory=dict)
    failed_experts: dict[int, list[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")


def _named_params(model: Any) -> list[tuple[str, Any]]:
    named = model.named_parameters()
    names = [n for n, _ in named]
    if len(set(names)) != len(names):
        raise ValueError("model has duplicate parameter names; "
                         "cannot checkpoint by name")
    return named


def capture_training_state(model: Any, optimizer: Any,
                           rng: np.random.Generator, step: int,
                           result: Any | None = None
                           ) -> TrainingCheckpoint:
    """Snapshot the trainable state after ``step`` completed steps.

    ``result`` is duck-typed against
    :class:`repro.train.trainer.TrainResult`; when given, the loss /
    accuracy / capacity histories are carried so the resumed run's
    :class:`TrainResult` matches the uninterrupted one.
    """
    params = {name: p.data.copy() for name, p in _named_params(model)}
    failed: dict[int, list[int]] = {}
    if hasattr(model, "moe_layers"):
        for i, layer in enumerate(model.moe_layers()):
            if getattr(layer, "failed_experts", None):
                failed[i] = sorted(layer.failed_experts)
    return TrainingCheckpoint(
        step=step,
        params=params,
        opt_m=[m.copy() for m in optimizer._m],
        opt_v=[v.copy() for v in optimizer._v],
        opt_step=optimizer._step,
        rng_state=rng.bit_generator.state,
        losses=list(result.losses) if result is not None else [],
        train_accuracies=(list(result.train_accuracies)
                          if result is not None else []),
        skipped_steps=(list(getattr(result, "skipped_steps", []))
                       if result is not None else []),
        capacity_traces=({k: list(v)
                          for k, v in result.capacity_traces.items()}
                         if result is not None else {}),
        failed_experts=failed,
    )


def restore_training_state(model: Any, optimizer: Any,
                           rng: np.random.Generator,
                           ckpt: TrainingCheckpoint) -> None:
    """Load a checkpoint into live objects, in place.

    The model must have been constructed identically to the
    checkpointed one (same architecture and init seed) — the
    checkpoint stores only the *trainable* state, not the graph.
    """
    named = dict(_named_params(model))
    missing = set(ckpt.params) - set(named)
    extra = set(named) - set(ckpt.params)
    if missing or extra:
        raise ValueError(
            f"parameter name mismatch restoring checkpoint: "
            f"missing={sorted(missing)} unexpected={sorted(extra)}")
    for name, data in ckpt.params.items():
        p = named[name]
        if p.data.shape != data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: model {p.data.shape} "
                f"vs checkpoint {data.shape}")
        if p.data.dtype == data.dtype:
            np.copyto(p.data, data)
        else:
            # The checkpoint's dtype wins: an in-place copyto would
            # silently cast and break bit-identical resumption.
            p.data = data.copy()
        p.grad = None
    if (len(optimizer._m) != len(ckpt.opt_m)
            or len(optimizer._v) != len(ckpt.opt_v)):
        raise ValueError("optimizer slot count mismatch restoring "
                         "checkpoint")
    for i, saved in enumerate(ckpt.opt_m):
        if optimizer._m[i].dtype == saved.dtype:
            np.copyto(optimizer._m[i], saved)
        else:
            optimizer._m[i] = saved.copy()
    for i, saved in enumerate(ckpt.opt_v):
        if optimizer._v[i].dtype == saved.dtype:
            np.copyto(optimizer._v[i], saved)
        else:
            optimizer._v[i] = saved.copy()
    optimizer._step = ckpt.opt_step
    rng.bit_generator.state = ckpt.rng_state
    if ckpt.failed_experts and hasattr(model, "moe_layers"):
        layers = model.moe_layers()
        for i, experts in ckpt.failed_experts.items():
            for e in experts:
                layers[i].fail_expert(e)


def save_checkpoint(ckpt: TrainingCheckpoint, path: str) -> None:
    """Write the checkpoint as a single ``.npz`` file."""
    arrays: dict[str, np.ndarray] = {}
    for name, data in ckpt.params.items():
        arrays[f"param/{name}"] = data
    for i, m in enumerate(ckpt.opt_m):
        arrays[f"adam_m/{i}"] = m
    for i, v in enumerate(ckpt.opt_v):
        arrays[f"adam_v/{i}"] = v
    meta = {
        "version": CHECKPOINT_VERSION,
        "step": ckpt.step,
        "opt_step": ckpt.opt_step,
        "opt_slots": len(ckpt.opt_m),
        "rng_state": ckpt.rng_state,
        "losses": ckpt.losses,
        "train_accuracies": ckpt.train_accuracies,
        "skipped_steps": ckpt.skipped_steps,
        "capacity_traces": {str(k): v
                            for k, v in ckpt.capacity_traces.items()},
        "failed_experts": {str(k): v
                           for k, v in ckpt.failed_experts.items()},
        "param_names": list(ckpt.params),
        # Provenance only: the arrays themselves carry the dtypes.
        "substrate_dtype": np.dtype(_substrate.default_dtype()).name,
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(path: str) -> TrainingCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta["version"] != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta['version']}, "
                f"expected {CHECKPOINT_VERSION}")
        params = {name: data[f"param/{name}"].copy()
                  for name in meta["param_names"]}
        opt_m = [data[f"adam_m/{i}"].copy()
                 for i in range(meta["opt_slots"])]
        opt_v = [data[f"adam_v/{i}"].copy()
                 for i in range(meta["opt_slots"])]
    return TrainingCheckpoint(
        step=meta["step"],
        params=params,
        opt_m=opt_m,
        opt_v=opt_v,
        opt_step=meta["opt_step"],
        rng_state=meta["rng_state"],
        losses=[float(x) for x in meta["losses"]],
        train_accuracies=[float(x) for x in meta["train_accuracies"]],
        skipped_steps=[int(x) for x in meta["skipped_steps"]],
        capacity_traces={int(k): [float(x) for x in v]
                         for k, v in meta["capacity_traces"].items()},
        failed_experts={int(k): [int(x) for x in v]
                        for k, v in meta["failed_experts"].items()},
    )
