"""Seeded end-to-end chaos scenario exercising both substrates.

One :func:`run_chaos` call drives the full resilience surface with a
deterministic fault plan derived from a seed:

1. **Performance substrate** — a multi-GPU synchronous-iteration
   schedule is simulated fault-free and then under a
   :class:`~repro.resilience.faults.FaultPlan` (one straggler GPU, one
   degraded inter-node link window, one op failure with detection
   timeout); the faulted makespan must come out strictly larger.
2. **Recovery** — the op failure is escalated to a rank failure and
   :func:`~repro.resilience.recovery.reselect_strategy` re-forms the
   expert-parallel group on the survivors over the degraded fabric.
3. **Functional substrate** — a toy MoE classifier trains through an
   expert failure (gating renormalizes over survivors) and an injected
   non-finite step (the guard rolls back and skips), checkpointing
   along the way; the run must finish with finite losses.

Every stage emits ``fault.injected`` / ``fault.recovered`` /
``train.step_skipped`` / ``ckpt.saved`` events through ``repro.obs``,
so the scenario doubles as an integration test of the observability
contract.  ``repro chaos --seed 0 --smoke`` runs it from the CLI.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cluster.simulator import Op, Schedule, SimResult, simulate
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.obs import CAT_FAULT
from repro.resilience.faults import (
    FaultPlan,
    LinkDegradation,
    OpFailure,
    StragglerWindow,
)
from repro.resilience.recovery import RecoveryDecision, reselect_strategy

__all__ = [
    "ChaosReport",
    "build_chaos_schedule",
    "make_chaos_plan",
    "run_chaos",
]


@dataclass
class ChaosReport:
    """Everything a chaos run produced, for assertions and the CLI."""

    seed: int
    plan: FaultPlan
    fault_free_makespan: float
    faulted_makespan: float
    sim_faults_injected: int
    sim_faults_recovered: int
    recovery: RecoveryDecision
    train_steps: int
    skipped_steps: list[int]
    failed_expert: tuple[int, int]          # (layer, expert)
    checkpoint_paths: list[str]
    losses: list[float]
    final_train_loss: float
    final_train_accuracy: float
    eval_accuracy: float
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def slowdown(self) -> float:
        if self.fault_free_makespan <= 0:
            return 1.0
        return self.faulted_makespan / self.fault_free_makespan

    def describe(self) -> str:
        lines = [
            f"chaos scenario (seed {self.seed})",
            "-- fault plan --",
            f"  {self.plan.describe()}",
        ]
        lines += [
            "-- performance substrate --",
            f"  fault-free makespan : {self.fault_free_makespan:.6f} s",
            f"  faulted makespan    : {self.faulted_makespan:.6f} s "
            f"({self.slowdown:.2f}x)",
            f"  sim faults injected/recovered : "
            f"{self.sim_faults_injected}/{self.sim_faults_recovered}",
            "-- recovery --",
            f"  {self.recovery.describe()}",
            "-- functional substrate --",
            f"  steps {self.train_steps}, skipped {self.skipped_steps}, "
            f"expert failure layer={self.failed_expert[0]} "
            f"e={self.failed_expert[1]}",
            f"  checkpoints: {len(self.checkpoint_paths)}",
            f"  final train loss {self.final_train_loss:.4f}, "
            f"train acc {self.final_train_accuracy:.3f}, "
            f"eval acc {self.eval_accuracy:.3f}",
            "-- fault/recovery counters --",
        ]
        for name in ("fault.injected", "fault.recovered",
                     "train.step_skipped", "ckpt.saved"):
            lines.append(f"  {name:20s} {self.counters.get(name, 0):g}")
        return "\n".join(lines)


def build_chaos_schedule(num_gpus: int = 4, iterations: int = 3,
                         comm: float = 0.010,
                         compute: float = 0.020) -> Schedule:
    """Synchronous-iteration DAG over ``num_gpus`` GPUs.

    Every iteration runs dispatch -> expert -> combine on each GPU and
    ends in a global barrier, so a straggler or a retried op on any one
    GPU stretches the whole run — the blast-radius shape real
    synchronous MoE training has.
    """
    if num_gpus < 1 or iterations < 1:
        raise ValueError("num_gpus and iterations must be >= 1")
    schedule = Schedule()
    barrier: Op | None = None
    for it in range(iterations):
        combines = []
        for g in range(num_gpus):
            deps = (barrier,) if barrier is not None else ()
            d = schedule.new_op(work=comm, gpu=g, stream="comm",
                                kind="comm", deps=deps,
                                label=f"iter{it}/gpu{g}/dispatch")
            e = schedule.new_op(work=compute, gpu=g, stream="compute",
                                kind="compute", deps=(d,),
                                label=f"iter{it}/gpu{g}/expert")
            combines.append(schedule.new_op(
                work=comm, gpu=g, stream="comm", kind="comm", deps=(e,),
                label=f"iter{it}/gpu{g}/combine"))
        barrier = schedule.new_op(work=0.0, gpu=0, stream="compute",
                                  kind="host", deps=tuple(combines),
                                  label=f"iter{it}/barrier")
    return schedule


def make_chaos_plan(seed: int, num_gpus: int,
                    horizon: float) -> tuple[FaultPlan, int]:
    """The acceptance-scenario fault plan, deterministic in ``seed``.

    One straggler GPU at 0.3x rate for the middle of the run, one
    degraded inter-node link window at 0.5x, and one op failure inside
    the straggler window (so the retry lands on the slow GPU).
    Returns the plan and the straggler GPU index.
    """
    rng = np.random.default_rng(seed)
    straggler = int(rng.integers(num_gpus))
    plan = FaultPlan(
        stragglers=[StragglerWindow(gpu=straggler,
                                    start=0.2 * horizon,
                                    end=0.7 * horizon, factor=0.3)],
        link_degradations=[LinkDegradation(start=0.3 * horizon,
                                           end=0.8 * horizon,
                                           factor=0.5)],
        op_failures=[OpFailure(time=0.4 * horizon, gpu=straggler,
                               timeout=0.05 * horizon)],
        seed=seed)
    return plan, straggler


def run_chaos(seed: int = 0, steps: int = 30, num_gpus: int = 4,
              smoke: bool = False, checkpoint_dir: str | None = None,
              trace_path: str | None = None) -> ChaosReport:
    """Run the seeded chaos scenario end to end on both substrates."""
    if smoke:
        steps = min(steps, 12)
    if steps < 6:
        raise ValueError(f"chaos scenario needs >= 6 steps, got {steps}")

    previous = obs.get_observer()
    ob = obs.enable()
    try:
        # -- performance substrate ---------------------------------------
        schedule = build_chaos_schedule(num_gpus=num_gpus)
        fault_free: SimResult = simulate(schedule)
        plan, straggler = make_chaos_plan(seed, num_gpus,
                                          fault_free.makespan)
        faulted = simulate(schedule, faults=plan)

        # -- recovery: escalate the op failure to a rank failure ---------
        world, experts = 16, 8
        cfg = MoEConfig(model_dim=1024, hidden_dim=4096,
                        tokens_per_gpu=4096,
                        experts_per_gpu=experts / world,
                        world_size=world, top_k=2)
        decision = reselect_strategy(cfg, ndv4_topology(world),
                                     [straggler], link_degradation=0.5)

        # -- functional substrate ----------------------------------------
        from repro.nn.models import MoEClassifier
        from repro.train.data import ClusteredTokenTask
        from repro.train.trainer import train_model

        num_experts = 4
        task = ClusteredTokenTask(num_clusters=num_experts, input_dim=16,
                                  num_classes=4, seed=seed)
        data_rng = np.random.default_rng(seed + 17)
        train_batch = task.sample(96 if smoke else 512, data_rng)
        test_batch = task.sample(96 if smoke else 256, data_rng)
        model = MoEClassifier(
            input_dim=16, model_dim=24, hidden_dim=48, num_classes=4,
            num_blocks=2, num_experts=num_experts,
            rng=np.random.default_rng(seed + 1), top_k=2)

        rng = np.random.default_rng(seed + 2)
        failed_expert = int(rng.integers(num_experts))
        expert_fail_step = max(1, steps // 3)
        nonfinite_step = max(expert_fail_step + 1, 2 * steps // 3)

        def chaos_hook(step: int, m) -> None:
            if step == expert_fail_step:
                m.fail_expert(0, failed_expert)
                ob.instant("injected", CAT_FAULT, args={
                    "kind": "expert_failure", "layer": 0,
                    "expert": failed_expert, "step": step})
            elif step == nonfinite_step:
                # Poison one weight; the trainer's guard must detect
                # the non-finite loss, roll back, and skip the step.
                victim = next(p for p in m.parameters()
                              if p.requires_grad)
                victim.data.flat[0] = np.nan
                ob.instant("injected", CAT_FAULT, args={
                    "kind": "nonfinite_injection", "step": step})

        temp_dir: tempfile.TemporaryDirectory | None = None
        if checkpoint_dir is None:
            temp_dir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
            checkpoint_dir = temp_dir.name
        try:
            result = train_model(
                model, train_batch, test_batch, steps=steps,
                batch_size=32 if smoke else 64, seed=seed,
                checkpoint_every=max(2, steps // 3),
                checkpoint_dir=checkpoint_dir,
                step_hook=chaos_hook)
        finally:
            if temp_dir is not None:
                temp_dir.cleanup()
        checkpoint_paths = list(result.checkpoint_paths)

        if not all(np.isfinite(result.losses)):
            raise RuntimeError("chaos training produced non-finite "
                               "losses despite the guard")

        if trace_path:
            ob.recorder.dump_jsonl(trace_path)

        report = ChaosReport(
            seed=seed,
            plan=plan,
            fault_free_makespan=fault_free.makespan,
            faulted_makespan=faulted.makespan,
            sim_faults_injected=faulted.faults_injected,
            sim_faults_recovered=faulted.faults_recovered,
            recovery=decision,
            train_steps=steps,
            skipped_steps=list(result.skipped_steps),
            failed_expert=(0, failed_expert),
            checkpoint_paths=checkpoint_paths,
            losses=list(result.losses),
            final_train_loss=result.final_train_loss,
            final_train_accuracy=result.final_train_accuracy,
            eval_accuracy=result.eval_accuracy,
            counters=dict(ob.registry.snapshot()["counters"]),
        )
        return report
    finally:
        obs.set_observer(previous)
