"""Deterministic, seeded fault plans for the performance substrate.

At the 2,048-4,096-GPU scale of the paper's evaluation, stragglers,
degraded links, and dying ranks are the norm rather than the exception,
yet an analytic cost model alone only knows a perfect cluster.  A
:class:`FaultPlan` makes failure a first-class simulation input: it is
a fully deterministic description of *when* and *where* the cluster
misbehaves, so makespan-under-faults becomes a measurable quantity that
two runs (or two strategies) can compare exactly.

Three fault families cover the common large-scale pathologies:

* :class:`StragglerWindow` — one GPU runs at a fraction of its nominal
  rate inside a time window (thermal throttling, noisy neighbour,
  background daemon);
* :class:`LinkDegradation` — communication-kind ops are slowed inside
  a window (flapping NIC, congested rail, cable re-train), optionally
  scoped to one GPU's links;
* :class:`OpFailure` — at a given simulated instant the op active on a
  ``(gpu, stream)`` dies and is *retried with timeout*: all progress is
  lost and the alpha-beta cost is re-charged after a detection timeout,
  exactly the semantics of an NCCL watchdog abort + retry.

:class:`ExpertFailure` is the functional-substrate counterpart: at a
training step, one expert of one MoE layer dies and must be masked out
of gating (see :meth:`repro.nn.moe.MoE.fail_expert`).

Plans are either hand-built or drawn with :meth:`FaultPlan.random`
from a seed, so chaos scenarios are reproducible bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "StragglerWindow",
    "LinkDegradation",
    "OpFailure",
    "ExpertFailure",
    "FaultPlan",
]

_COMM_KINDS = ("comm", "comm_memcpy")


@dataclass(frozen=True)
class StragglerWindow:
    """One GPU running at ``factor`` of its nominal rate in a window."""

    gpu: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.factor:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if self.start < 0 or self.end < self.start:
            raise ValueError(
                f"need 0 <= start <= end, got [{self.start}, {self.end}]")

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class LinkDegradation:
    """Comm-kind ops slowed to ``factor`` of nominal rate in a window.

    ``gpu=None`` degrades every GPU's links (a fabric-wide event);
    otherwise only ops on that GPU's communication streams slow down.
    """

    start: float
    end: float
    factor: float
    gpu: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.factor:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if self.start < 0 or self.end < self.start:
            raise ValueError(
                f"need 0 <= start <= end, got [{self.start}, {self.end}]")

    def applies(self, gpu: int, kind: str, t: float) -> bool:
        return (kind in _COMM_KINDS
                and (self.gpu is None or self.gpu == gpu)
                and self.start <= t < self.end)


@dataclass(frozen=True)
class OpFailure:
    """Kill the op active on ``(gpu, stream)`` at a simulated instant.

    The victim loses all progress and re-runs from scratch after a
    detection ``timeout`` is charged (the alpha-beta cost re-charge).
    ``stream=None`` kills every op active on the GPU at that instant.
    A failure instant with no active victim is a no-op (the fault hit
    an idle resource) but is still counted as injected.
    """

    time: float
    gpu: int
    stream: str | None = None
    timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0 or not math.isfinite(self.time):
            raise ValueError(f"time must be finite and >= 0, got {self.time}")
        if self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")


@dataclass(frozen=True)
class ExpertFailure:
    """Functional-substrate fault: expert ``expert`` of MoE layer
    ``layer`` dies at training step ``step``."""

    step: int
    layer: int
    expert: int

    def __post_init__(self) -> None:
        if self.step < 0 or self.layer < 0 or self.expert < 0:
            raise ValueError("step, layer, expert must all be >= 0")


@dataclass
class FaultPlan:
    """A deterministic collection of faults for one scenario.

    The plan is pure data — the simulator (and trainer, for
    :attr:`expert_failures`) interprets it.  ``seed`` records the
    origin of a randomly drawn plan for reporting.
    """

    stragglers: list[StragglerWindow] = field(default_factory=list)
    link_degradations: list[LinkDegradation] = field(default_factory=list)
    op_failures: list[OpFailure] = field(default_factory=list)
    expert_failures: list[ExpertFailure] = field(default_factory=list)
    seed: int | None = None

    # -- simulator queries ----------------------------------------------

    def empty(self) -> bool:
        return not (self.stragglers or self.link_degradations
                    or self.op_failures)

    def rate_scale(self, gpu: int, kind: str, t: float) -> float:
        """Multiplicative rate factor for an op of ``kind`` on ``gpu``
        at simulated time ``t`` (1.0 = nominal)."""
        scale = 1.0
        for w in self.stragglers:
            if w.gpu == gpu and w.active(t):
                scale *= w.factor
        for d in self.link_degradations:
            if d.applies(gpu, kind, t):
                scale *= d.factor
        return scale

    def boundaries(self) -> list[float]:
        """Sorted unique finite instants at which rates may change or a
        failure fires — the extra rate-change points the engine must
        stop at."""
        times: set[float] = set()
        for w in self.stragglers:
            times.add(w.start)
            if math.isfinite(w.end):
                times.add(w.end)
        for d in self.link_degradations:
            times.add(d.start)
            if math.isfinite(d.end):
                times.add(d.end)
        for f in self.op_failures:
            times.add(f.time)
        return sorted(times)

    # -- construction ----------------------------------------------------

    @staticmethod
    def random(seed: int, num_gpus: int = 8, horizon: float = 1.0,
               num_stragglers: int = 1, num_link_faults: int = 1,
               num_op_failures: int = 1,
               straggler_factor: float = 0.3,
               link_factor: float = 0.5,
               timeout_fraction: float = 0.05,
               num_expert_failures: int = 0,
               num_experts: int = 8,
               num_layers: int = 1,
               max_step: int = 30) -> "FaultPlan":
        """Draw a reproducible plan over ``[0, horizon)`` seconds.

        The same ``(seed, parameters)`` always yields the same plan, so
        chaos scenarios can be replayed and bisected.  The default
        draws are simulator-side only; ``num_expert_failures > 0``
        additionally draws functional-substrate
        :class:`ExpertFailure` events — distinct victims (never the
        whole population, so gating always has survivors), each at a
        uniform step in ``[0, max_step)`` and layer in
        ``[0, num_layers)``.  The expert draws come last, so plans
        with the default parameters are unchanged for a given seed.
        """
        if num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if num_expert_failures < 0:
            raise ValueError(
                f"num_expert_failures must be >= 0, "
                f"got {num_expert_failures}")
        if num_expert_failures > 0:
            if num_expert_failures >= num_experts:
                raise ValueError(
                    f"num_expert_failures must leave a survivor: "
                    f"{num_expert_failures} >= {num_experts} experts")
            if num_layers < 1 or max_step < 1:
                raise ValueError(
                    "num_layers and max_step must be >= 1")
        rng = np.random.default_rng(seed)
        stragglers = []
        for _ in range(num_stragglers):
            start = float(rng.uniform(0.0, horizon * 0.5))
            length = float(rng.uniform(horizon * 0.2, horizon * 0.5))
            stragglers.append(StragglerWindow(
                gpu=int(rng.integers(0, num_gpus)), start=start,
                end=start + length, factor=straggler_factor))
        links = []
        for _ in range(num_link_faults):
            start = float(rng.uniform(0.0, horizon * 0.5))
            length = float(rng.uniform(horizon * 0.2, horizon * 0.5))
            links.append(LinkDegradation(
                start=start, end=start + length, factor=link_factor,
                gpu=(int(rng.integers(0, num_gpus))
                     if rng.random() < 0.5 else None)))
        failures = []
        for _ in range(num_op_failures):
            failures.append(OpFailure(
                time=float(rng.uniform(horizon * 0.1, horizon * 0.9)),
                gpu=int(rng.integers(0, num_gpus)),
                timeout=horizon * timeout_fraction))
        expert_failures = []
        if num_expert_failures > 0:
            # Victims drawn without replacement: no layer can lose the
            # same expert twice, and some expert always survives.
            victims = rng.permutation(num_experts)[:num_expert_failures]
            for expert in victims:
                expert_failures.append(ExpertFailure(
                    step=int(rng.integers(0, max_step)),
                    layer=int(rng.integers(0, num_layers)),
                    expert=int(expert)))
            expert_failures.sort(key=lambda f: (f.step, f.layer,
                                                f.expert))
        return FaultPlan(stragglers=stragglers, link_degradations=links,
                         op_failures=failures,
                         expert_failures=expert_failures, seed=seed)

    def describe(self) -> str:
        parts = [f"{len(self.stragglers)} straggler(s)",
                 f"{len(self.link_degradations)} degraded link window(s)",
                 f"{len(self.op_failures)} op failure(s)"]
        if self.expert_failures:
            parts.append(f"{len(self.expert_failures)} expert failure(s)")
        tag = f" (seed={self.seed})" if self.seed is not None else ""
        return ", ".join(parts) + tag
