"""Fairseq-MoE-style baseline (paper's primary comparison target).

Reproduces the execution profile the paper attributes to the Fairseq
``moe`` branch:

* dense GShard einsum encode/decode (Figure 18a) with the associated
  ``(T, E, dC)`` activation tensors;
* the linear All-to-All algorithm only, degree-1 (no overlap);
* the raw ``(W, dE, dC, M)`` All-to-All output layout feeding experts;
* static parallelism.

Both halves are provided: a *functional* layer that really computes
(dense encode path over NumPy) and an *execution profile* for the
performance substrate.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.memory import MemoryBreakdown, dense_moe_memory
from repro.core.config import MoEConfig
from repro.moe.capacity import CapacityPolicy
from repro.moe.encode import dense_decode, dense_encode
from repro.moe.gating import load_balance_loss, softmax, top_k_routing
from repro.moe.layer import MoELayerParams, MoEOutput, _gate_logits, expert_ffn
from repro.runtime.plan import FAIRSEQ_FEATURES, ExecutionFeatures

__all__ = [
    "fairseq_features",
    "fairseq_moe_forward",
    "fairseq_memory",
]


def fairseq_features() -> ExecutionFeatures:
    """Execution profile of the Fairseq MoE baseline."""
    return FAIRSEQ_FEATURES


def fairseq_moe_forward(x: np.ndarray, params: MoELayerParams,
                        top_k: int | None = None,
                        capacity_factor: float = 1.0) -> MoEOutput:
    """Single-process Fairseq-style forward using the dense encode path.

    Numerically identical to the Tutel layer; the difference is the
    O(T * E * dC * M) dense einsum work and the materialized one-hot
    tensors.  Fairseq supports neither adaptive capacity (f <= 0) nor
    per-iteration ``k`` changes, so only a fixed positive factor is
    accepted.
    """
    if capacity_factor <= 0:
        raise ValueError(
            "Fairseq baseline requires a fixed positive capacity factor")
    k = top_k if top_k is not None else params.top_k
    logits = _gate_logits(x, params)
    probs = softmax(logits)
    policy = CapacityPolicy(capacity_factor)
    from repro.moe.capacity import resolve_capacity
    idxs_probe = np.argsort(-probs, axis=1, kind="stable")[:, :k].T
    cap, eff_f = resolve_capacity(policy, idxs_probe,
                                  params.experts.num_experts,
                                  tokens=x.shape[0], top_k=k)
    crit = top_k_routing(probs, k, cap,
                         normalize_gate=params.normalize_gate,
                         batch_prioritized=False)
    l_aux = load_balance_loss(probs, crit.idxs)
    dispatched = dense_encode(x, crit)
    expert_out = expert_ffn(dispatched, params.experts, params.activation)
    output = dense_decode(expert_out, crit)
    return MoEOutput(output=output, l_aux=l_aux, crit=crit,
                     effective_capacity_factor=eff_f)


def fairseq_memory(cfg: MoEConfig) -> MemoryBreakdown:
    """Per-GPU memory of the Fairseq dense path (Table 4 left column)."""
    return dense_moe_memory(cfg)
