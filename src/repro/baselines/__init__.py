"""Reference baseline implementations: Fairseq MoE, DeepSpeed MoE."""

from repro.baselines.deepspeed_moe import (
    deepspeed_features,
    deepspeed_fflayer_time,
)
from repro.baselines.fairseq_moe import (
    fairseq_features,
    fairseq_memory,
    fairseq_moe_forward,
)

__all__ = [
    "deepspeed_features",
    "deepspeed_fflayer_time",
    "fairseq_features",
    "fairseq_memory",
    "fairseq_moe_forward",
]
