"""DeepSpeed-MoE-style baseline.

The paper's Figure 7 measures DeepSpeed's fflayer computation time: it
follows the same GShard computation logic as Fairseq and consumes the
raw All-to-All output layout ``(W, dE, dC, M)``, so its
``bgemm_strided_batched`` row count shrinks as the world grows — the
11.3x slowdown at 2,048 GPUs.  DeepSpeed's encode kernels are somewhat
better optimized than Fairseq's, but it still lacks Flexible
All-to-All, adaptive pipelining and switchable parallelism.
"""

from __future__ import annotations

from repro.cluster.gemm import GemmModel, expert_ffn_time
from repro.cluster.topology import ClusterTopology
from repro.collectives.schedule import A2AAlgorithm
from repro.core.config import MoEConfig
from repro.pipeline.schedule import PipelineStrategy
from repro.runtime.plan import ExecutionFeatures

__all__ = [
    "deepspeed_features",
    "deepspeed_fflayer_time",
]


def deepspeed_features() -> ExecutionFeatures:
    """Execution profile of the DeepSpeed MoE baseline."""
    return ExecutionFeatures(
        name="deepspeed", fast_kernels=False, flexible_a2a=False,
        adaptive_pipelining=False, adaptive_parallelism=False,
        pipeline_strategy=PipelineStrategy(
            degree=1, algorithm=A2AAlgorithm.LINEAR))


def deepspeed_fflayer_time(cfg: MoEConfig, topo: ClusterTopology,
                           gemm: GemmModel | None = None) -> float:
    """Pure fflayer time in the raw A2A layout (paper Figure 7).

    The expert GEMM runs as ``W * dE`` batched problems of ``dC`` rows
    each — per-GPU FLOPs stay constant under weak scaling but the
    per-problem row count collapses with ``W``.
    """
    de = max(1, round(cfg.experts_per_gpu))
    return expert_ffn_time(topo.gpu, cfg.world_size * de,
                           cfg.capacity_per_gpu, cfg.model_dim,
                           cfg.hidden_dim, gemm, backward=False)
