"""Full MoE-layer step planning: features -> per-stage times -> total.

Composes every cost model into the per-iteration time of one MoE layer
on the simulated cluster, with the exact feature toggles of the paper's
Figure 23 breakdown:

(1) Fairseq baseline — dense kernels, linear All-to-All, no overlap,
    raw ``(W, dE, dC, M)`` expert layout;
(2) + Tutel fast kernels (sparse encode/decode);
(3) + adaptive pipelining (joint choice of All-to-All algorithm and
    pipelining degree via the event simulator);
(4) + Flexible All-to-All (scale-independent ``(dE, C, M)`` layout);
(5) + adaptive parallelism switching (P1/P2 inline router);
(6) computation-only view (non-overlapped compute share).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.gemm import GemmModel, expert_ffn_time
from repro.cluster.simulator import InterferenceModel
from repro.cluster.topology import ClusterTopology
from repro.collectives.schedule import A2AAlgorithm
from repro.core.config import MoEConfig
from repro.parallel.strategy import (
    Parallelism,
    p1_communication_bytes,
    p2_communication_bytes,
    replication_factor,
)
from repro.pipeline.schedule import (
    PipelineStrategy,
    SegmentSpec,
    all_strategies,
    segment_time,
)
from repro.runtime.kernels import encode_decode_time, gating_time

__all__ = [
    "ExecutionFeatures",
    "FAIRSEQ_FEATURES",
    "TUTEL_FEATURES",
    "MoEStepBreakdown",
    "build_segment_spec",
    "choose_parallelism",
    "moe_step_time",
]


@dataclass(frozen=True)
class ExecutionFeatures:
    """Feature toggles selecting an execution mode.

    ``pipeline_strategy`` pins a static strategy when adaptive
    pipelining is off (the Fairseq baseline is degree 1 + linear).
    ``parallelism`` pins a static strategy when adaptive parallelism
    switching is off and ``r > 1``.
    """

    name: str = "custom"
    fast_kernels: bool = True
    flexible_a2a: bool = True
    adaptive_pipelining: bool = True
    adaptive_parallelism: bool = True
    pipeline_strategy: PipelineStrategy = PipelineStrategy(
        degree=1, algorithm=A2AAlgorithm.LINEAR)
    parallelism: Parallelism = Parallelism.P1_EP_DP

    def with_(self, **overrides) -> "ExecutionFeatures":
        return replace(self, **overrides)


FAIRSEQ_FEATURES = ExecutionFeatures(
    name="fairseq", fast_kernels=False, flexible_a2a=False,
    adaptive_pipelining=False, adaptive_parallelism=False)

TUTEL_FEATURES = ExecutionFeatures(name="tutel")


@dataclass(frozen=True)
class MoEStepBreakdown:
    """Per-stage times (seconds) of one MoE layer iteration."""

    gate: float
    encode: float
    decode: float
    segment: float            # overlapped a2a+expert+a2a makespan
    a2a_exposed: float        # segment minus compute (communication share)
    expert_compute: float     # non-overlapped expert compute
    param_comm: float         # P1 all-gather / reduce-scatter traffic
    parallelism: Parallelism
    pipeline_strategy: PipelineStrategy

    @property
    def total(self) -> float:
        return (self.gate + self.encode + self.decode + self.segment
                + self.param_comm)

    @property
    def compute_only(self) -> float:
        """Curve (6) of Figure 23: everything except exposed comm."""
        return (self.gate + self.encode + self.decode
                + self.expert_compute)


def choose_parallelism(cfg: MoEConfig, topo: ClusterTopology,
                       features: ExecutionFeatures,
                       training: bool = True) -> Parallelism:
    """Resolve the parallelism for this iteration.

    With ``r == 1`` both hybrids collapse into plain EP (Figure 13).
    Adaptive mode compares the closed-form communication volumes of P1
    and P2 through the link model — the O(1) inline-router decision.
    """
    r = replication_factor(cfg)
    if r == 1:
        return Parallelism.EP
    if not features.adaptive_parallelism:
        return features.parallelism
    from repro.parallel.router import InlineParallelismRouter
    router = InlineParallelismRouter(topo, training=training)
    return router.decide(cfg).chosen


def build_segment_spec(cfg: MoEConfig, topo: ClusterTopology,
                       parallelism: Parallelism,
                       flexible_a2a: bool) -> SegmentSpec:
    """Segment shape implied by the parallelism + layout choices.

    Without Flexible All-to-All the expert consumes the raw
    ``(W, dE, dC, M)`` layout: ``W * dE`` problems of only ``dC`` rows
    each — the Figure 7 regression.  With it, the layout is the
    scale-independent ``(dE, C, M)``; P1 then computes ``C / r`` rows
    per GPU and P2 all ``C`` rows against a ``1/r`` hidden shard.
    """
    r = replication_factor(cfg)
    de_whole = max(1, round(cfg.experts_per_gpu))

    if parallelism is Parallelism.P2_EP_MP:
        a2a_bytes, _ = p2_communication_bytes(cfg)
        return SegmentSpec(a2a_bytes=a2a_bytes, expert_batch=1,
                           expert_rows=cfg.global_capacity,
                           model_dim=cfg.model_dim,
                           hidden_dim=max(1, cfg.hidden_dim // r))

    a2a_bytes, _ = p1_communication_bytes(cfg)
    if flexible_a2a:
        rows = max(1, cfg.global_capacity // r)
        return SegmentSpec(a2a_bytes=a2a_bytes, expert_batch=de_whole,
                           expert_rows=rows, model_dim=cfg.model_dim,
                           hidden_dim=cfg.hidden_dim)
    # Raw layout: one expert problem per (source GPU, local expert).
    return SegmentSpec(a2a_bytes=a2a_bytes,
                       expert_batch=cfg.world_size * de_whole,
                       expert_rows=max(1, cfg.capacity_per_gpu // r),
                       model_dim=cfg.model_dim,
                       hidden_dim=cfg.hidden_dim)


def _param_comm_time(cfg: MoEConfig, topo: ClusterTopology,
                     parallelism: Parallelism, training: bool) -> float:
    """ZeRO-style parameter traffic of P1 (none for EP / P2)."""
    if parallelism is not Parallelism.P1_EP_DP:
        return 0.0
    from repro.parallel.strategy import p1_param_comm_time
    return p1_param_comm_time(cfg, topo, training)


def moe_step_time(cfg: MoEConfig, topo: ClusterTopology,
                  features: ExecutionFeatures,
                  training: bool = True,
                  gemm: GemmModel | None = None,
                  interference: InterferenceModel | None = None
                  ) -> MoEStepBreakdown:
    """Plan and time one MoE layer iteration under an execution mode."""
    parallelism = choose_parallelism(cfg, topo, features, training)
    spec = build_segment_spec(cfg, topo, parallelism, features.flexible_a2a)

    if features.adaptive_pipelining:
        candidates = all_strategies()
    else:
        candidates = [features.pipeline_strategy]
    best_strategy = None
    best_time = float("inf")
    for strategy in candidates:
        elapsed = segment_time(spec, topo, strategy, training, gemm,
                               interference)
        if elapsed < best_time:
            best_time = elapsed
            best_strategy = strategy
    assert best_strategy is not None

    gate = gating_time(cfg, topo.gpu)
    encode, decode = encode_decode_time(cfg, topo.gpu,
                                        fast=features.fast_kernels,
                                        gemm=gemm)
    kernel_factor = 2.0 if training else 1.0
    gate *= kernel_factor
    encode *= kernel_factor
    decode *= kernel_factor

    expert_compute = expert_ffn_time(topo.gpu, spec.expert_batch,
                                     spec.expert_rows, spec.model_dim,
                                     spec.hidden_dim, gemm,
                                     backward=training)
    param_comm = _param_comm_time(cfg, topo, parallelism, training)

    return MoEStepBreakdown(
        gate=gate, encode=encode, decode=decode, segment=best_time,
        a2a_exposed=max(0.0, best_time - expert_compute),
        expert_compute=expert_compute, param_comm=param_comm,
        parallelism=parallelism, pipeline_strategy=best_strategy)
