"""Runtime planning and execution: feature toggles -> MoE layer step
times, plus the real multicore expert-parallel FFN executor."""

from repro.runtime.executor import (
    ExpertParallelExecutor,
    ffn_backward_arrays,
    ffn_forward_arrays,
    get_executor,
    shutdown_executor,
)
from repro.runtime.kernels import (
    dense_decode_time,
    dense_encode_time,
    encode_decode_time,
    gating_time,
    sparse_decode_time,
    sparse_encode_time,
)
from repro.runtime.plan import (
    FAIRSEQ_FEATURES,
    TUTEL_FEATURES,
    ExecutionFeatures,
    MoEStepBreakdown,
    build_segment_spec,
    choose_parallelism,
    moe_step_time,
)

__all__ = [
    "ExpertParallelExecutor",
    "ffn_backward_arrays",
    "ffn_forward_arrays",
    "get_executor",
    "shutdown_executor",
    "dense_decode_time",
    "dense_encode_time",
    "encode_decode_time",
    "gating_time",
    "sparse_decode_time",
    "sparse_encode_time",
    "FAIRSEQ_FEATURES",
    "TUTEL_FEATURES",
    "ExecutionFeatures",
    "MoEStepBreakdown",
    "build_segment_spec",
    "choose_parallelism",
    "moe_step_time",
]
