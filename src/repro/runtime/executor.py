"""Multicore expert-parallel FFN executor (shared-memory process pool).

The MoE layer's expert FFNs are embarrassingly parallel across the
expert axis: ``(E, dC, M) @ (E, M, V)`` is E independent GEMMs.  This
module makes that parallelism real — a :class:`ExpertParallelExecutor`
fans contiguous expert chunks out to N worker processes over
``multiprocessing.shared_memory`` slabs, so the repo is a small real
expert-parallel system rather than only a simulator of one (paper
Section 3's multi-GPU dispatch, reproduced at multi-core scale).

Protocol: every call copies the operand arrays into named shared-memory
slabs, submits one ``(e0, e1)`` expert-range task per worker, and copies
the result out.  Workers are **stateless** — the backward pass
recomputes the hidden activations from the slabs (checkpointing-style)
instead of shipping saved state between processes.  The serial fused
path in :func:`repro.autograd.moe_ops.expert_ffn` calls the same
:func:`ffn_forward_arrays` / :func:`ffn_backward_arrays` helpers, so
serial and parallel execution agree numerically.

Enable via :func:`repro.core.substrate.set_expert_workers` (or the
``REPRO_EXPERT_WORKERS`` env var).  Serial is the default: at the toy
benchmark sizes the per-call IPC overhead exceeds the GEMM time, and
the executor only pays off once ``E * dC * M * V`` is large enough
that BLAS time dominates the ~1 ms round trip.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import shared_memory

import numpy as np

from repro.core import substrate as _substrate

__all__ = [
    "ACTIVATIONS",
    "ffn_forward_arrays",
    "ffn_backward_arrays",
    "ExpertParallelExecutor",
    "get_executor",
    "shutdown_executor",
]

#: Activations the fused expert FFN supports.
ACTIVATIONS = ("gelu", "relu")

_GELU_C = float(np.sqrt(2.0 / np.pi))


def _act_forward(h: np.ndarray, activation: str
                 ) -> tuple[np.ndarray, np.ndarray | None]:
    """Apply the activation; returns (a, cache) for the backward."""
    if activation == "relu":
        return np.maximum(h, 0.0), None
    if activation == "gelu":
        # Same mul-chained tanh-GELU as repro.autograd.functional.gelu.
        inner = h * h
        inner *= h
        inner *= 0.044715
        inner += h
        inner *= _GELU_C
        t = np.tanh(inner)
        a = t + 1.0
        a *= h
        a *= 0.5
        return a, t
    raise ValueError(f"unknown activation {activation!r}; "
                     f"expected one of {ACTIVATIONS}")


def _act_grad(h: np.ndarray, cache: np.ndarray | None,
              activation: str) -> np.ndarray:
    """d(activation)/dh given the forward cache."""
    if activation == "relu":
        return h > 0.0
    if activation == "gelu":
        t = cache
        if t is None:
            inner = h * h
            inner *= h
            inner *= 0.044715
            inner += h
            inner *= _GELU_C
            t = np.tanh(inner)
        d_inner = h * h
        d_inner *= 3 * 0.044715
        d_inner += 1.0
        d_inner *= _GELU_C
        d = t * t
        np.subtract(1.0, d, out=d)
        d *= d_inner
        d *= h
        d += 1.0
        d += t
        d *= 0.5
        return d
    raise ValueError(f"unknown activation {activation!r}; "
                     f"expected one of {ACTIVATIONS}")


def ffn_forward_arrays(x: np.ndarray, w1: np.ndarray, w2: np.ndarray,
                       activation: str
                       ) -> tuple[np.ndarray, tuple]:
    """Fused expert FFN forward on raw arrays.

    ``x`` is ``(E, dC, M)``, ``w1`` ``(E, M, V)``, ``w2`` ``(E, V, M)``;
    returns ``(y, saved)`` where ``saved`` lets a same-process backward
    skip the recompute.
    """
    h = np.matmul(x, w1)
    a, cache = _act_forward(h, activation)
    y = np.matmul(a, w2)
    return y, (h, a, cache)


def ffn_backward_arrays(x: np.ndarray, w1: np.ndarray, w2: np.ndarray,
                        grad_y: np.ndarray, activation: str,
                        saved: tuple | None = None
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of the fused expert FFN w.r.t. (x, w1, w2).

    With ``saved=None`` the hidden activations are recomputed from the
    inputs (the stateless worker protocol); passing the forward's saved
    tuple gives the conventional memory-for-compute trade.
    """
    if saved is None:
        h = np.matmul(x, w1)
        a, cache = _act_forward(h, activation)
    else:
        h, a, cache = saved
    grad_a = np.matmul(grad_y, w2.swapaxes(-1, -2))
    grad_w2 = np.matmul(a.swapaxes(-1, -2), grad_y)
    grad_h = grad_a
    grad_h *= _act_grad(h, cache, activation)
    grad_x = np.matmul(grad_h, w1.swapaxes(-1, -2))
    grad_w1 = np.matmul(x.swapaxes(-1, -2), grad_h)
    return grad_x, grad_w1, grad_w2


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

# Attached shared-memory segments, cached per worker process by name.
_WORKER_SLABS: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _WORKER_SLABS.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _WORKER_SLABS[name] = shm
    return shm


def _worker_run(mode: str, slabs: dict[str, tuple[str, tuple[int, ...]]],
                dtype_str: str, e0: int, e1: int,
                activation: str) -> int:
    """Run one expert-range chunk against the named shared slabs."""
    dtype = np.dtype(dtype_str)

    def view(field: str) -> np.ndarray:
        name, shape = slabs[field]
        return np.ndarray(shape, dtype=dtype, buffer=_attach(name).buf)

    x = view("x")[e0:e1]
    w1 = view("w1")[e0:e1]
    w2 = view("w2")[e0:e1]
    if mode == "forward":
        y, _ = ffn_forward_arrays(x, w1, w2, activation)
        view("y")[e0:e1] = y
    elif mode == "backward":
        gy = view("gy")[e0:e1]
        gx, gw1, gw2 = ffn_backward_arrays(x, w1, w2, gy, activation)
        view("gx")[e0:e1] = gx
        view("gw1")[e0:e1] = gw1
        view("gw2")[e0:e1] = gw2
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return e1 - e0


# ----------------------------------------------------------------------
# Host side
# ----------------------------------------------------------------------

class ExpertParallelExecutor:
    """Fans per-expert FFN chunks out to a process pool over shm slabs.

    Slabs grow monotonically (reallocated under a fresh name when a
    call needs more bytes) and are reused across steps, so steady-state
    training does no shm churn.  ``broken`` latches True on the first
    pool failure; callers fall back to the serial path.
    """

    def __init__(self, num_workers: int,
                 start_method: str | None = None) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        if start_method is None:
            # fork shares the already-imported interpreter image; spawn
            # is the portable fallback.
            methods = get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = get_context(start_method)
        self._pool: ProcessPoolExecutor | None = None
        self._slabs: dict[str, shared_memory.SharedMemory] = {}
        self._gen = 0
        self.broken = False
        self.calls = 0

    # -- slabs ---------------------------------------------------------

    def _slab_view(self, tag: str, shape: tuple[int, ...],
                   dtype: np.dtype) -> tuple[str, np.ndarray]:
        nbytes = int(np.prod(shape)) * dtype.itemsize
        shm = self._slabs.get(tag)
        if shm is None or shm.size < nbytes:
            if shm is not None:
                shm.close()
                shm.unlink()
            self._gen += 1
            name = f"repro-ep-{os.getpid()}-{tag}-{self._gen}"
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=nbytes)
            self._slabs[tag] = shm
        return shm.name, np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    # -- pool ----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.num_workers,
                                             mp_context=self._ctx)
        return self._pool

    def _chunks(self, num_experts: int) -> list[tuple[int, int]]:
        bounds = np.linspace(0, num_experts, self.num_workers + 1,
                             dtype=int)
        return [(int(lo), int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]

    def _run(self, mode: str, inputs: dict[str, np.ndarray],
             outputs: dict[str, tuple[int, ...]], activation: str
             ) -> dict[str, np.ndarray]:
        dtype = next(iter(inputs.values())).dtype
        slabs: dict[str, tuple[str, tuple[int, ...]]] = {}
        for tag, arr in inputs.items():
            name, view = self._slab_view(tag, arr.shape, dtype)
            view[...] = arr
            slabs[tag] = (name, arr.shape)
        out_views: dict[str, np.ndarray] = {}
        for tag, shape in outputs.items():
            name, view = self._slab_view(tag, shape, dtype)
            slabs[tag] = (name, shape)
            out_views[tag] = view
        num_experts = slabs["x"][1][0]
        pool = self._ensure_pool()
        futures = [pool.submit(_worker_run, mode, slabs, dtype.str,
                               e0, e1, activation)
                   for e0, e1 in self._chunks(num_experts)]
        for fut in futures:
            fut.result()
        self.calls += 1
        # Copy out: the slabs are reused by the next call, but the
        # autograd graph owns the returned arrays.
        return {tag: np.array(view) for tag, view in out_views.items()}

    # -- public API ----------------------------------------------------

    def ffn_forward(self, x: np.ndarray, w1: np.ndarray, w2: np.ndarray,
                    activation: str) -> np.ndarray:
        """Parallel :func:`ffn_forward_arrays` across the expert axis."""
        out = self._run("forward", {"x": x, "w1": w1, "w2": w2},
                        {"y": x.shape}, activation)
        return out["y"]

    def ffn_backward(self, x: np.ndarray, w1: np.ndarray, w2: np.ndarray,
                     grad_y: np.ndarray, activation: str
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Parallel :func:`ffn_backward_arrays` (recompute protocol)."""
        out = self._run("backward",
                        {"x": x, "w1": w1, "w2": w2, "gy": grad_y},
                        {"gx": x.shape, "gw1": w1.shape, "gw2": w2.shape},
                        activation)
        return out["gx"], out["gw1"], out["gw2"]

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory slab."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        for shm in self._slabs.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass
        self._slabs.clear()


# ----------------------------------------------------------------------
# Process-wide executor, sized from the substrate config
# ----------------------------------------------------------------------

_EXECUTOR: ExpertParallelExecutor | None = None


def get_executor() -> ExpertParallelExecutor | None:
    """The executor matching ``substrate.expert_workers()``, or None.

    Returns None when expert parallelism is off (workers == 0, the
    default) or after the executor latched ``broken``; resizes the
    pool when the configured worker count changes.
    """
    global _EXECUTOR
    n = _substrate.expert_workers()
    if n <= 0:
        return None
    if _EXECUTOR is not None and _EXECUTOR.num_workers != n:
        _EXECUTOR.close()
        _EXECUTOR = None
    if _EXECUTOR is None:
        _EXECUTOR = ExpertParallelExecutor(n)
    return None if _EXECUTOR.broken else _EXECUTOR


def shutdown_executor() -> None:
    """Tear down the process-wide executor (idempotent)."""
    global _EXECUTOR
    if _EXECUTOR is not None:
        _EXECUTOR.close()
        _EXECUTOR = None


atexit.register(shutdown_executor)
