"""GPU-time models for the non-GEMM kernels of an MoE layer.

Covers the encode/decode cost gap of paper Section 4.2 / Figure 24:

* the **dense** GShard/Fairseq encode is an einsum equivalent to a
  ``(E*dC, T) x (T, M)`` GEMM — ``O(T * E * dC * M)`` multiply-adds,
  nearly all of them against zeros;
* the **sparse** Tutel fast encode/decode moves exactly the routed
  elements — ``O(T * k * M)`` — and is memory-bound, so its time is
  bytes over HBM bandwidth plus a kernel launch;
* **gating** (softmax + top-k + locations cumsum) is memory-bound in
  ``O(T * E)`` — the term that makes Figure 23's curve (6) rise slowly
  with scale, since ``E`` grows with the world size.
"""

from __future__ import annotations

from repro.cluster.gemm import GemmModel, batched_gemm_time
from repro.cluster.topology import GpuSpec
from repro.core.config import MoEConfig

__all__ = [
    "gating_time",
    "dense_encode_time",
    "dense_decode_time",
    "sparse_encode_time",
    "sparse_decode_time",
    "encode_decode_time",
]

_GATE_PASSES = 6.0   # logits read/write, softmax, top-k, cumsum, one-hot
_FP32 = 4


def gating_time(cfg: MoEConfig, gpu: GpuSpec) -> float:
    """Softmax + top-k + location computation over ``(T, E)`` scores."""
    elements = cfg.tokens_per_gpu * cfg.num_global_experts
    gemm_flops = 2.0 * cfg.tokens_per_gpu * cfg.model_dim \
        * cfg.num_global_experts
    gate_gemm = gemm_flops / (gpu.peak_flops * 0.5)
    streaming = _GATE_PASSES * elements * _FP32 / gpu.memory_bandwidth
    return 3 * gpu.kernel_launch_overhead + gate_gemm + streaming


def dense_encode_time(cfg: MoEConfig, gpu: GpuSpec,
                      gemm: GemmModel | None = None) -> float:
    """Dense dispatch einsum ``"tec,tm->ecm"`` as a GEMM.

    Shapes: ``(E*dC, T) x (T, M)`` — the contraction length is the
    token count, so the cost scales with ``T^2`` once capacity tracks
    the batch size.  Materializing the ``(T, E, dC)`` mask adds a
    memory-bound pass.
    """
    rows = cfg.num_global_experts * cfg.capacity_per_gpu
    gemm_time = batched_gemm_time(gpu, 1, rows, cfg.tokens_per_gpu,
                                  cfg.model_dim, gemm)
    mask_bytes = (cfg.tokens_per_gpu * cfg.num_global_experts
                  * cfg.capacity_per_gpu * _FP32)
    mask_time = 2.0 * mask_bytes / gpu.memory_bandwidth
    return gemm_time + mask_time + gpu.kernel_launch_overhead


def dense_decode_time(cfg: MoEConfig, gpu: GpuSpec,
                      gemm: GemmModel | None = None) -> float:
    """Dense combine einsum ``"tec,ecm->tm"`` — the mirror GEMM."""
    inner = cfg.num_global_experts * cfg.capacity_per_gpu
    gemm_time = batched_gemm_time(gpu, 1, cfg.tokens_per_gpu, inner,
                                  cfg.model_dim, gemm)
    combine_bytes = (cfg.tokens_per_gpu * cfg.num_global_experts
                     * cfg.capacity_per_gpu * _FP32)
    return (gemm_time + 2.0 * combine_bytes / gpu.memory_bandwidth
            + gpu.kernel_launch_overhead)


def _sparse_scatter_time(cfg: MoEConfig, gpu: GpuSpec) -> float:
    """Memory-bound scatter/gather of the routed token rows (K0/K1)."""
    routed_bytes = (cfg.top_k * cfg.tokens_per_gpu * cfg.model_dim
                    * cfg.dtype_bytes)
    buffer_bytes = (cfg.num_global_experts * cfg.capacity_per_gpu
                    * cfg.model_dim * cfg.dtype_bytes)
    # Read routed rows + write them, plus zero-fill of the buffer.
    moved = 2.0 * routed_bytes + buffer_bytes
    return gpu.kernel_launch_overhead + moved / gpu.memory_bandwidth


def sparse_encode_time(cfg: MoEConfig, gpu: GpuSpec) -> float:
    """Tutel fast_encode: SIMT scatter of ``O(T * k * M)`` elements."""
    return _sparse_scatter_time(cfg, gpu)


def sparse_decode_time(cfg: MoEConfig, gpu: GpuSpec) -> float:
    """Tutel fast_decode: weighted gather of ``O(T * k * M)`` elements."""
    return _sparse_scatter_time(cfg, gpu)


def encode_decode_time(cfg: MoEConfig, gpu: GpuSpec, fast: bool,
                       gemm: GemmModel | None = None) -> tuple[float, float]:
    """(encode, decode) kernel times for the selected implementation."""
    if fast:
        return sparse_encode_time(cfg, gpu), sparse_decode_time(cfg, gpu)
    return (dense_encode_time(cfg, gpu, gemm),
            dense_decode_time(cfg, gpu, gemm))
