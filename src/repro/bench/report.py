"""Machine-readable benchmark results and the perf-regression gate.

Every ``benchmarks/bench_*.py`` regenerates one paper artifact; until
now the evidence lived only in printed tables.  This module gives each
bench a structured record:

* :class:`Metric` — one named scalar (value, unit, ``kind`` of
  ``"model"`` for deterministic analytic results vs ``"measured"`` for
  wall-clock timings, an optional improvement direction, and the
  relative tolerance the regression gate should allow);
* :class:`BenchResult` — artifact id, title, metrics, the
  ``REPRO_SCALE`` the run used, and a fingerprint of the bench's
  configuration so stale baselines are detected instead of silently
  compared;
* :func:`emit` — called at the end of every bench ``run()``; validates
  the record and, when ``REPRO_BENCH_DIR`` (or ``directory=``) is set,
  writes ``BENCH_<artifact>.json`` there;
* :func:`load_results` / :func:`render_report` — aggregation behind
  ``repro report``;
* :func:`compare` / :func:`render_comparisons` — the ``repro regress``
  logic: per-metric tolerance comparison against committed baselines
  (``benchmarks/baselines/*.json``), failing on regressions, missing
  metrics, and fingerprint drift.

Measured (wall-clock) metrics are recorded but skipped by the gate by
default — CI machines are too noisy to gate on real time.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "Metric",
    "BenchResult",
    "config_fingerprint",
    "validate_payload",
    "emit",
    "bench_dir",
    "load_results",
    "render_report",
    "Comparison",
    "compare",
    "render_comparisons",
    "has_failures",
    "write_baselines",
]

SCHEMA_VERSION = 1

_KINDS = ("model", "measured")
_FAILING_STATUSES = ("regressed", "missing", "fingerprint-mismatch")


@dataclass(frozen=True)
class Metric:
    """One scalar result of a bench run.

    ``higher_is_better`` drives the regression direction: ``True``
    fails only on decreases, ``False`` only on increases, ``None``
    (default) on relative deviation either way.  ``tolerance`` is the
    allowed relative deviation (fraction of the baseline value); it
    travels with the metric so committed baselines carry their own
    gate widths.
    """

    name: str
    value: float
    unit: str = ""
    kind: str = "model"
    higher_is_better: bool | None = None
    tolerance: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("metric name must be non-empty")
        if not isinstance(self.value, (int, float)) \
                or isinstance(self.value, bool) \
                or not math.isfinite(self.value):
            raise ValueError(
                f"metric {self.name!r} value must be a finite number, "
                f"got {self.value!r}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"metric {self.name!r} kind must be one of {_KINDS}, "
                f"got {self.kind!r}")
        if self.tolerance < 0 or not math.isfinite(self.tolerance):
            raise ValueError(
                f"metric {self.name!r} tolerance must be finite and "
                f">= 0, got {self.tolerance}")

    def to_json_obj(self) -> dict:
        return {"name": self.name, "value": float(self.value),
                "unit": self.unit, "kind": self.kind,
                "higher_is_better": self.higher_is_better,
                "tolerance": self.tolerance}

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "Metric":
        return cls(name=obj["name"], value=float(obj["value"]),
                   unit=obj.get("unit", ""),
                   kind=obj.get("kind", "model"),
                   higher_is_better=obj.get("higher_is_better"),
                   tolerance=float(obj.get("tolerance", 0.05)))


def config_fingerprint(config: Mapping | None) -> str:
    """Short stable hash of a bench's configuration dict."""
    canonical = json.dumps(config or {}, sort_keys=True,
                           separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class BenchResult:
    """The machine-readable outcome of one bench run."""

    artifact: str
    title: str
    metrics: list[Metric]
    scale: str = "default"
    config: dict = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    @property
    def fingerprint(self) -> str:
        return config_fingerprint(self.config)

    @property
    def filename(self) -> str:
        return f"BENCH_{self.artifact}.json"

    def metric(self, name: str) -> Metric:
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(f"no metric {name!r} in {self.artifact}")

    def to_json_obj(self) -> dict:
        return {
            "schema": self.schema,
            "artifact": self.artifact,
            "title": self.title,
            "scale": self.scale,
            "config": dict(self.config),
            "fingerprint": self.fingerprint,
            "metrics": [m.to_json_obj() for m in self.metrics],
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "BenchResult":
        errors = validate_payload(obj)
        if errors:
            raise ValueError(
                "invalid bench result payload: " + "; ".join(errors))
        return cls(
            artifact=obj["artifact"], title=obj["title"],
            metrics=[Metric.from_json_obj(m) for m in obj["metrics"]],
            scale=obj.get("scale", "default"),
            config=dict(obj.get("config", {})),
            schema=int(obj.get("schema", SCHEMA_VERSION)))

    def write(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename
        path.write_text(json.dumps(self.to_json_obj(), indent=1,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BenchResult":
        return cls.from_json_obj(json.loads(Path(path).read_text()))


def validate_payload(obj: Mapping) -> list[str]:
    """Schema check of a ``BENCH_*.json`` payload; returns error list."""
    errors: list[str] = []
    if not isinstance(obj, Mapping):
        return ["payload must be a JSON object"]
    if obj.get("schema") != SCHEMA_VERSION:
        errors.append(f"schema must be {SCHEMA_VERSION}, "
                      f"got {obj.get('schema')!r}")
    artifact = obj.get("artifact")
    if not isinstance(artifact, str) or not artifact \
            or not all(c.isalnum() or c == "_" for c in artifact):
        errors.append(f"artifact must be a [a-z0-9_]+ string, "
                      f"got {artifact!r}")
    if not isinstance(obj.get("title"), str) or not obj.get("title"):
        errors.append("title must be a non-empty string")
    if not isinstance(obj.get("scale"), str):
        errors.append("scale must be a string")
    if not isinstance(obj.get("config", {}), Mapping):
        errors.append("config must be an object")
    metrics = obj.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append("metrics must be a non-empty list")
        return errors
    seen: set[str] = set()
    for i, m in enumerate(metrics):
        if not isinstance(m, Mapping):
            errors.append(f"metrics[{i}] must be an object")
            continue
        try:
            metric = Metric.from_json_obj(m)
        except (KeyError, TypeError, ValueError) as exc:
            errors.append(f"metrics[{i}]: {exc}")
            continue
        if metric.name in seen:
            errors.append(f"duplicate metric name {metric.name!r}")
        seen.add(metric.name)
    fp = obj.get("fingerprint")
    if fp is not None and fp != config_fingerprint(obj.get("config", {})):
        errors.append("fingerprint does not match config")
    return errors


def bench_dir() -> Path | None:
    """Output directory for ``BENCH_*.json``, from ``REPRO_BENCH_DIR``."""
    path = os.environ.get("REPRO_BENCH_DIR")
    return Path(path) if path else None


def emit(artifact: str, title: str, metrics: Iterable[Metric], *,
         config: Mapping | None = None,
         directory: str | Path | None = None,
         verbose: bool = False) -> BenchResult:
    """Build, validate, and (when a directory is configured) write the
    ``BENCH_<artifact>.json`` record for one bench run.

    Called unconditionally at the end of every bench ``run()`` — with
    no ``REPRO_BENCH_DIR`` set it only validates, so the structured
    record is always well-formed even when nobody collects it.
    """
    result = BenchResult(
        artifact=artifact, title=title, metrics=list(metrics),
        scale=os.environ.get("REPRO_SCALE") or "default",
        config=dict(config or {}))
    errors = validate_payload(result.to_json_obj())
    if errors:
        raise ValueError(f"bench {artifact!r} produced an invalid "
                         "result: " + "; ".join(errors))
    target = Path(directory) if directory is not None else bench_dir()
    if target is not None:
        path = result.write(target)
        if verbose:
            print(f"[bench] wrote {path}")
    # Lazy import: repro.obs.runs imports config_fingerprint from this
    # module, so the dependency must stay one-way at import time.
    from repro.obs.runs import get_run
    run = get_run()
    if run is not None:
        run.emit("bench_result", data=result.to_json_obj())
    return result


def load_results(directory: str | Path) -> dict[str, BenchResult]:
    """All ``BENCH_*.json`` records in a directory, keyed by artifact."""
    directory = Path(directory)
    results: dict[str, BenchResult] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        result = BenchResult.load(path)
        results[result.artifact] = result
    return results


def render_report(results: Mapping[str, BenchResult]) -> str:
    """Aggregate table over a set of bench results (``repro report``)."""
    from repro.bench.harness import Table

    table = Table("Bench results", ["artifact", "metric", "value",
                                    "unit", "kind", "scale"])
    for artifact in sorted(results):
        result = results[artifact]
        for m in result.metrics:
            table.add_row(artifact, m.name, f"{m.value:g}", m.unit,
                          m.kind, result.scale)
    lines = [table.render(),
             f"{sum(len(r.metrics) for r in results.values())} metrics "
             f"across {len(results)} artifact(s)"]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one baseline metric against a current run.

    ``status`` is one of ``ok`` / ``improved`` / ``regressed`` /
    ``missing`` (baseline metric absent from the current run) /
    ``fingerprint-mismatch`` (bench config changed — baseline stale) /
    ``skipped`` (measured-kind metric, or scale mismatch) / ``new``
    (current metric without a baseline; informational only).
    """

    artifact: str
    metric: str
    status: str
    baseline: float | None = None
    current: float | None = None
    tolerance: float = 0.0
    note: str = ""

    @property
    def rel_delta(self) -> float | None:
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return self.current - self.baseline
        return (self.current - self.baseline) / abs(self.baseline)

    @property
    def failed(self) -> bool:
        return self.status in _FAILING_STATUSES


def _judge(baseline: Metric, current: Metric) -> str:
    delta = current.value - baseline.value
    rel = (delta / abs(baseline.value) if baseline.value != 0
           else delta)
    tol = baseline.tolerance
    if baseline.higher_is_better is True:
        if rel < -tol:
            return "regressed"
        return "improved" if rel > tol else "ok"
    if baseline.higher_is_better is False:
        if rel > tol:
            return "regressed"
        return "improved" if rel < -tol else "ok"
    return "ok" if abs(rel) <= tol else "regressed"


def compare(current: Mapping[str, BenchResult],
            baselines: Mapping[str, BenchResult],
            include_measured: bool = False) -> list[Comparison]:
    """Per-metric comparison of a result set against its baselines."""
    comparisons: list[Comparison] = []
    for artifact in sorted(baselines):
        base = baselines[artifact]
        cur = current.get(artifact)
        if cur is None:
            comparisons.append(Comparison(
                artifact, "*", "missing",
                note="no current result for baselined artifact"))
            continue
        if cur.scale != base.scale:
            comparisons.append(Comparison(
                artifact, "*", "skipped",
                note=f"scale mismatch: baseline {base.scale!r}, "
                     f"current {cur.scale!r}"))
            continue
        if cur.fingerprint != base.fingerprint:
            comparisons.append(Comparison(
                artifact, "*", "fingerprint-mismatch",
                note="bench config changed; regenerate the baseline "
                     "with 'repro report --write-baselines'"))
            continue
        current_names = {m.name for m in cur.metrics}
        for bm in base.metrics:
            if bm.name not in current_names:
                comparisons.append(Comparison(
                    artifact, bm.name, "missing", baseline=bm.value,
                    tolerance=bm.tolerance,
                    note="baseline metric absent from current run"))
                continue
            cm = cur.metric(bm.name)
            if bm.kind == "measured" and not include_measured:
                comparisons.append(Comparison(
                    artifact, bm.name, "skipped", baseline=bm.value,
                    current=cm.value, tolerance=bm.tolerance,
                    note="measured (wall-clock) metric"))
                continue
            comparisons.append(Comparison(
                artifact, bm.name, _judge(bm, cm),
                baseline=bm.value, current=cm.value,
                tolerance=bm.tolerance))
        for cm in cur.metrics:
            if all(bm.name != cm.name for bm in base.metrics):
                comparisons.append(Comparison(
                    artifact, cm.name, "new", current=cm.value,
                    note="no baseline yet"))
    return comparisons


def render_comparisons(comparisons: list[Comparison]) -> str:
    from repro.bench.harness import Table

    table = Table("Perf regression check",
                  ["artifact", "metric", "baseline", "current",
                   "delta", "tol", "status"])
    for c in comparisons:
        delta = c.rel_delta
        table.add_row(
            c.artifact, c.metric,
            "-" if c.baseline is None else f"{c.baseline:g}",
            "-" if c.current is None else f"{c.current:g}",
            "-" if delta is None else f"{delta:+.2%}",
            f"{c.tolerance:.0%}" if c.tolerance else "-",
            c.status + (f" ({c.note})" if c.note else ""))
    failures = [c for c in comparisons if c.failed]
    verdict = (f"FAIL: {len(failures)} failing comparison(s)"
               if failures else "OK: no regressions")
    return table.render() + "\n" + verdict


def has_failures(comparisons: list[Comparison]) -> bool:
    return any(c.failed for c in comparisons)


def write_baselines(results: Mapping[str, BenchResult],
                    directory: str | Path) -> list[Path]:
    """Persist a result set as the committed baselines."""
    return [results[artifact].write(directory)
            for artifact in sorted(results)]
