"""Bench harness utilities shared by the benchmarks/ scripts."""

from repro.bench.harness import Table, format_speedup, geometric_mean
from repro.bench.report import BenchResult, Metric, emit

__all__ = ["Table", "format_speedup", "geometric_mean",
           "BenchResult", "Metric", "emit"]
