"""Bench harness utilities shared by the benchmarks/ scripts."""

from repro.bench.harness import Table, format_speedup, geometric_mean

__all__ = ["Table", "format_speedup", "geometric_mean"]
