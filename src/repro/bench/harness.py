"""Shared bench-harness utilities: result rows and table printing.

Every ``benchmarks/bench_*.py`` regenerates one table or figure of the
paper.  The helpers here keep the output format uniform: a title line
naming the paper artifact, aligned columns, and (when available) the
paper's reported value next to the measured one so the shape comparison
is one glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table", "format_speedup", "geometric_mean"]


def format_speedup(ratio: float) -> str:
    return f"{ratio:.2f}x"


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric_mean requires positives, got {v}")
        product *= v
    return product ** (1.0 / len(values))


@dataclass
class Table:
    """Aligned text table with a paper-artifact title."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        title = f"== {self.title} =="
        header = "  ".join(c.ljust(w)
                           for c, w in zip(self.columns, widths)).rstrip()
        body = ["  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
                for row in self.rows]
        # The rule must span the widest rendered line — a long title (or
        # short header over wide rows) used to leave it undersized.
        rule = "-" * max(len(line) for line in [title, header, *body])
        return "\n".join([title, header, rule, *body])

    def show(self) -> None:
        print(self.render())
        print()
        # When a run is recording (repro bench under REPRO_RUNS_DIR)
        # the rendered table also lands in the run's event stream.
        from repro.obs.runs import get_run
        run = get_run()
        if run is not None:
            run.emit("bench_table", data={
                "title": self.title, "columns": list(self.columns),
                "rows": [list(r) for r in self.rows]})
