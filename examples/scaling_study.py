"""Scaling study: a single MoE layer from 16 to 2,048 simulated GPUs.

Condenses the paper's headline performance results into one script:
the collective crossover (Figure 20), the Fairseq-vs-Tutel layer time
(Figure 23) and where each Tutel feature earns its keep.

Run:  python examples/scaling_study.py
"""

from repro.bench.harness import Table
from repro.cluster import ndv4_topology
from repro.collectives import best_a2a_algorithm
from repro.core import MoEConfig
from repro.core.units import MIB, fmt_time
from repro.runtime import FAIRSEQ_FEATURES, TUTEL_FEATURES, moe_step_time


def main():
    worlds = (16, 64, 256, 1024, 2048)

    algo_table = Table("Best All-to-All algorithm per (size, scale)",
                       ["#GPUs", "1 MiB", "32 MiB", "256 MiB"])
    for world in worlds:
        topo = ndv4_topology(world)
        row = [best_a2a_algorithm(topo, s * MIB)[0].value
               for s in (1, 32, 256)]
        algo_table.add_row(world, *row)
    algo_table.show()

    layer_table = Table("Single MoE layer step time (training)",
                        ["#GPUs", "fairseq", "tutel", "speedup",
                         "tutel pipeline", "tutel parallelism"])
    for world in worlds:
        cfg = MoEConfig(world_size=world, experts_per_gpu=2,
                        model_dim=2048, hidden_dim=2048,
                        tokens_per_gpu=16384, top_k=2,
                        capacity_factor=1.0)
        topo = ndv4_topology(world)
        fair = moe_step_time(cfg, topo, FAIRSEQ_FEATURES)
        tutel = moe_step_time(cfg, topo, TUTEL_FEATURES)
        layer_table.add_row(world, fmt_time(fair.total),
                            fmt_time(tutel.total),
                            f"{fair.total / tutel.total:.2f}x",
                            tutel.pipeline_strategy.describe(),
                            tutel.parallelism.value)
    layer_table.show()
    print("Paper anchors: 4.96x at 16 GPUs, 5.75x at 2,048 GPUs "
          "(Figure 23).")


if __name__ == "__main__":
    main()
