"""Quickstart: build and run a Tutel-style MoE layer.

Mirrors the paper's Figure 8 API walk-through: gate -> top-k routing
-> fast encode -> expert fflayer -> fast decode, plus the dynamic
features (top-ANY routing and adaptive capacity) of Section 4.1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.moe import (
    CapacityPolicy,
    MoELayerParams,
    moe_layer_forward,
)


def main():
    rng = np.random.default_rng(0)
    params = MoELayerParams.init(num_experts=8, model_dim=64,
                                 hidden_dim=256, rng=rng, top_k=2)
    tokens = rng.normal(size=(512, 64))

    out = moe_layer_forward(tokens, params)
    print(f"output shape:          {out.output.shape}")
    print(f"aux (load-balance) loss: {out.l_aux:.3f}")
    print(f"capacity per expert:   {out.crit.capacity}")
    print(f"dropped token-slots:   {out.dropped_fraction:.1%}")

    # Dynamic top-ANY routing: change k per call (Section 4.1).
    for k in (1, 2, 4):
        out_k = moe_layer_forward(tokens, params, top_k=k)
        print(f"top-{k}: dropped={out_k.dropped_fraction:.1%} "
              f"l_aux={out_k.l_aux:.3f}")

    # Dynamic capacity factor semantics (Figure 16):
    #   f > 0 fixed; f = 0 adapt losslessly; f < 0 adapt with bound.
    for f in (4.0, 0.0, -1.0):
        out_f = moe_layer_forward(tokens, params,
                                  capacity=CapacityPolicy(f))
        print(f"capacity_factor={f:+.1f}: effective "
              f"f={out_f.effective_capacity_factor:.2f} "
              f"capacity={out_f.crit.capacity} "
              f"dropped={out_f.dropped_fraction:.1%}")


if __name__ == "__main__":
    main()
