"""Train a sparse MoE classifier end to end and compare with dense.

The SwinV2-MoE recipe at toy scale: every other FFN block replaced by
an MoE layer, GShard load-balancing loss, top-1 routing, capacity
factor 1.25, batch prioritized routing available as a flag.  Prints
the dynamic capacity-factor trace the run produced — the same quantity
as paper Figure 1.

Run:  python examples/train_moe_classifier.py
"""

import numpy as np

from repro.nn import DenseClassifier, MoEClassifier
from repro.train import ClusteredTokenTask, evaluate, train_model


def main():
    task = ClusteredTokenTask(num_clusters=32, input_dim=16,
                              num_classes=8, noise=0.5, seed=0)
    train = task.sample(8192)
    test = task.sample(4096)

    dense = DenseClassifier(16, 32, 64, 8, num_blocks=2,
                            rng=np.random.default_rng(0))
    dense_result = train_model(dense, train, test, steps=300,
                               batch_size=512, lr=5e-3, seed=0)
    print(f"dense:  eval acc {dense_result.eval_accuracy:.3f}  "
          f"params {dense.num_parameters()}")

    moe = MoEClassifier(16, 32, 64, 8, num_blocks=2, num_experts=32,
                        rng=np.random.default_rng(0), top_k=1,
                        capacity_factor=1.25)
    moe_result = train_model(moe, train, test, steps=300,
                             batch_size=512, lr=5e-3, seed=0)
    print(f"moe:    eval acc {moe_result.eval_accuracy:.3f}  "
          f"params {moe.num_parameters()} "
          f"(same activated compute as dense)")

    trace = np.asarray(moe_result.capacity_traces[0])
    print("\nneeded capacity factor during training (Figure 1 shape):")
    for lo in range(0, len(trace), len(trace) // 6):
        chunk = trace[lo:lo + len(trace) // 6]
        bar = "#" * int(chunk.mean() * 8)
        print(f"  steps {lo:3d}+: mean f = {chunk.mean():5.2f}  {bar}")
    print(f"  peak f = {trace.max():.2f}, dynamic range "
          f"{trace.max() / trace.min():.2f}x "
          "(paper: up to 4.38x)")

    # Evaluate under reduced inference capacity, with and without BPR
    # (the Figure 25 effect).
    for bpr in (False, True):
        for layer in moe.moe_layers():
            layer.batch_prioritized = bpr
        moe.set_inference_capacity(0.25)
        acc = evaluate(moe, test)
        print(f"infer f=0.25 {'with' if bpr else 'without'} BPR: "
              f"acc {acc:.3f}")


if __name__ == "__main__":
    main()
