"""Export a pipelining timeline to chrome://tracing.

Builds the multi-stream schedule of one pipelined MoE segment (the
Figure 14 overlap pattern) at several degrees, simulates it with the
compute/communication interference model, prints a text gantt, and
writes chrome-trace JSON files you can open in chrome://tracing or
https://ui.perfetto.dev.

Run:  python examples/pipeline_timeline.py
"""

from pathlib import Path

from repro.cluster import ndv4_topology, save_chrome_trace
from repro.cluster.simulator import simulate
from repro.collectives import A2AAlgorithm
from repro.core import MoEConfig
from repro.pipeline import PipelineStrategy, build_pipeline_schedule


def text_gantt(result, width=72):
    """Render op spans as an ASCII timeline per stream."""
    makespan = result.makespan
    rows = {}
    for op, (start, end) in result.spans.items():
        if op.work == 0:
            continue
        lo = int(start / makespan * width)
        hi = max(lo + 1, int(end / makespan * width))
        row = rows.setdefault(op.stream, [" "] * width)
        char = "#" if op.kind == "compute" else "="
        for i in range(lo, min(hi, width)):
            row[i] = char
    return "\n".join(f"  {name:8s}|{''.join(cells)}|"
                     for name, cells in sorted(rows.items()))


def main():
    cfg = MoEConfig(world_size=256, experts_per_gpu=2, model_dim=2048,
                    hidden_dim=2048, tokens_per_gpu=8192, top_k=2,
                    capacity_factor=1.0)
    topo = ndv4_topology(256)
    out_dir = Path("traces")
    out_dir.mkdir(exist_ok=True)

    for degree in (1, 2, 4):
        strategy = PipelineStrategy(degree=degree,
                                    algorithm=A2AAlgorithm.TWO_DH)
        schedule = build_pipeline_schedule(cfg, topo, strategy)
        result = simulate(schedule)
        print(f"degree {degree} (2DH): makespan "
              f"{result.makespan * 1e3:.2f} ms")
        print(text_gantt(result))
        path = save_chrome_trace(result,
                                 out_dir / f"pipeline_deg{degree}.json")
        print(f"  trace written to {path}\n")

    print("'=' = All-to-All on the comm stream, '#' = expert compute; "
          "higher degrees interleave them (Figure 14).")


if __name__ == "__main__":
    main()
