"""Adaptivity in action: the runtime reacting to a dynamic workload.

Replays a SwinV2-shaped capacity-factor trace (Figure 1) through the
two adaptive mechanisms of the paper:

* the inline parallelism router flips between P1 (EP+DP) and P2
  (EP+MP) as the token volume crosses the parameter volume;
* the online pipelining search (Algorithm 2) explores (All-to-All
  algorithm x degree) pairs bucket-by-bucket and converges to the best
  strategy for each workload regime.

Run:  python examples/adaptive_runtime.py
"""

from collections import Counter

from repro.cluster import ndv4_topology
from repro.core import MoEConfig
from repro.models import dynamic_capacity_trace
from repro.parallel import InlineParallelismRouter
from repro.pipeline import OnlinePipeliningSearch, pipeline_segment_time


def main():
    # A single node, two experts shared by eight GPUs (r = 4): the
    # regime where the P1/P2 preference flips with the capacity factor
    # (paper Figure 3 / Table 5a).
    world = 8
    topo = ndv4_topology(world)
    base = MoEConfig(world_size=world, experts_per_gpu=0.25,
                     model_dim=2048, hidden_dim=8192,
                     tokens_per_gpu=2048, top_k=2, capacity_factor=1.0)

    trace = dynamic_capacity_trace(steps=200, layer_index=0, seed=1)
    router = InlineParallelismRouter(topo)

    parallelism_choices = Counter()
    for step, f in enumerate(trace):
        decision = router.decide(base.with_(capacity_factor=float(f)))
        parallelism_choices[decision.chosen.value] += 1
        if step % 40 == 0:
            print(f"step {step:3d}: f={f:5.2f} -> "
                  f"parallelism={decision.chosen.value}")
    print(f"parallelism choices: {dict(parallelism_choices)}")
    print(f"parallelism switches: {router.switch_count()}")

    # Adaptive pipelining pays off where All-to-All is expensive:
    # scale out to 256 GPUs across 32 nodes.
    world = 256
    topo = ndv4_topology(world)
    wide = MoEConfig(world_size=world, experts_per_gpu=2,
                     model_dim=2048, hidden_dim=2048,
                     tokens_per_gpu=4096, top_k=2, capacity_factor=1.0)
    search = OnlinePipeliningSearch(bucket_length=1.0)
    pipeline_choices = Counter()
    static_time = 0.0
    adaptive_time = 0.0
    from repro.pipeline import PipelineStrategy
    baseline = PipelineStrategy(degree=1)

    print(f"\nadaptive pipelining at {world} GPUs:")
    for step, f in enumerate(trace):
        cfg = wide.with_(capacity_factor=float(f))
        strategy, elapsed = search.step(
            float(f), lambda s: pipeline_segment_time(cfg, topo, s))
        pipeline_choices[strategy.describe()] += 1
        adaptive_time += elapsed
        static_time += pipeline_segment_time(cfg, topo, baseline)
        if step % 40 == 0:
            print(f"step {step:3d}: f={f:5.2f} "
                  f"pipeline={strategy.describe():14s} "
                  f"segment={elapsed * 1e3:6.2f} ms")

    print(f"pipeline choices:    {dict(pipeline_choices)}")
    print(f"\ncumulative segment time: static deg1+linear "
          f"{static_time:.2f} s -> adaptive {adaptive_time:.2f} s "
          f"({(static_time - adaptive_time) / static_time:.0%} saved, "
          "including exploration)")


if __name__ == "__main__":
    main()
