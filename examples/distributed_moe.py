"""Distributed MoE with Flexible All-to-All over simulated ranks.

Walks through the complete data path of paper Figure 2 on 4 simulated
GPUs with 8 global experts, then demonstrates the 2DH All-to-All
producing bit-identical results to the linear algorithm while moving
only aggregated messages (Figure 15 / Algorithm 3).

Run:  python examples/distributed_moe.py
"""

import numpy as np

from repro.collectives import (
    all_to_all_2dh_phases,
    all_to_all_linear,
    flexible_all_to_all,
)
from repro.core import MoEConfig
from repro.moe import (
    CapacityPolicy,
    MoELayerParams,
    distributed_moe_forward,
    moe_layer_forward,
)


def main():
    rng = np.random.default_rng(0)
    cfg = MoEConfig(world_size=4, experts_per_gpu=2, model_dim=32,
                    hidden_dim=64, tokens_per_gpu=64, top_k=2,
                    capacity_factor=4.0)
    params = MoELayerParams.init(num_experts=cfg.num_global_experts,
                                 model_dim=32, hidden_dim=64, rng=rng)
    rank_inputs = [rng.normal(size=(64, 32)) for _ in range(4)]

    # Full distributed forward: encode -> flexible A2A -> local experts
    # -> flexible A2A -> decode, with real data movement.
    result = distributed_moe_forward(rank_inputs, params, cfg)
    print(f"per-rank outputs: {[o.shape for o in result.outputs]}")
    print(f"aux loss {result.l_aux:.3f}, dropped "
          f"{result.dropped_fraction:.1%}")

    # Equivalence against the single-process layer per rank.
    for r, x in enumerate(rank_inputs):
        local = moe_layer_forward(x, params,
                                  capacity=CapacityPolicy(4.0))
        err = np.abs(result.outputs[r] - local.output).max()
        print(f"rank {r}: max deviation vs single-process = {err:.2e}")

    # Table 3 layouts: (E, dC, M) -> (dE, C, M) and back.
    dispatch = [rng.normal(size=(8, 3, 5)) for _ in range(4)]
    expert_layout = flexible_all_to_all(dispatch, concat_dim=1,
                                        split_dim=0)
    print(f"\nflexible A2A: {dispatch[0].shape} -> "
          f"{expert_layout[0].shape}  (scale-independent expert input)")

    # 2DH All-to-All phase-by-phase on 8 ranks / 2 nodes (Figure 15).
    world = [np.array([10 * src + dst for dst in range(8)]).reshape(8, 1)
             for src in range(8)]
    phases = all_to_all_2dh_phases(world, gpus_per_node=4)
    print("\n2DH All-to-All, GPU0's buffer per phase:")
    for i, phase in enumerate(phases):
        print(f"  phase {i}: {phase[0].ravel().tolist()}")
    linear = all_to_all_linear(world)
    same = all(np.array_equal(phases[-1][r], linear[r]) for r in range(8))
    print(f"2DH == linear: {same}")


if __name__ == "__main__":
    main()
