"""Tests that the paper's Figure 8 snippet runs against repro.api."""

import numpy as np
import pytest

from repro.api import moe, net
from repro.moe.layer import ExpertParams, expert_ffn


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def custom_moe(x, gate_weight, experts, top_k=2):
    """The paper's Figure 8 custom layer, nearly verbatim."""
    scores = moe.softmax(x @ gate_weight)
    crit, l_aux = moe.top_k_routing(scores, top_k)
    y = moe.fast_encode(x, crit)
    y = net.flex_all2all(y, 1, 0)
    y = expert_ffn(y, experts)          # CustomExpert
    y = net.flex_all2all(y, 0, 1)
    output = moe.fast_decode(y, crit)
    return output, l_aux


class TestFigure8Api:
    def test_snippet_runs(self, rng):
        gate = rng.normal(size=(16, 4))
        experts = ExpertParams.init(4, 16, 32, rng)
        x = rng.normal(size=(64, 16))
        out, l_aux = custom_moe(x, gate, experts)
        assert out.shape == (64, 16)
        assert l_aux > 0

    def test_matches_layer_forward(self, rng):
        # The snippet must agree with the packaged layer.
        from repro.moe.capacity import CapacityPolicy
        from repro.moe.layer import MoELayerParams, moe_layer_forward
        gate = rng.normal(size=(16, 4))
        experts = ExpertParams.init(4, 16, 32, rng)
        x = rng.normal(size=(64, 16))
        out, _ = custom_moe(x, gate, experts)
        params = MoELayerParams(experts=experts, gate_weight=gate,
                                top_k=2, capacity=CapacityPolicy(1.0))
        expected = moe_layer_forward(x, params)
        np.testing.assert_allclose(out, expected.output, atol=1e-10)

    def test_flex_all2all_single_rank_roundtrip(self, rng):
        y = rng.normal(size=(4, 3, 5))
        there = net.flex_all2all(y, 1, 0)
        back = net.flex_all2all(there, 0, 1)
        np.testing.assert_allclose(back, y)

    def test_flex_all2all_world_list(self, rng):
        world = [rng.normal(size=(4, 3, 5)) for _ in range(2)]
        out = net.flex_all2all(world, 1, 0)
        assert len(out) == 2
        assert out[0].shape == (2, 6, 5)

    def test_top_k_routing_capacity_semantics(self, rng):
        scores = moe.softmax(rng.normal(size=(64, 8)))
        crit, _ = moe.top_k_routing(scores, 2, capacity_factor=0.0)
        assert crit.dropped_fraction() == 0.0
        crit, _ = moe.top_k_routing(scores, 2, capacity_factor=0.25)
        assert crit.dropped_fraction() > 0.0
