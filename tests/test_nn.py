"""Tests for the trainable NN modules and the MoE layer module."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.models import DenseClassifier, MoEClassifier
from repro.nn.modules import FFN, LayerNorm, Linear, Module, Sequential
from repro.nn.moe import MoE


@pytest.fixture(autouse=True)
def _float64_substrate():
    """Numeric gradient checks stay in float64: central differences at
    float32 lose half the mantissa to roundoff (see ISSUE 6 / DESIGN
    dtype conventions)."""
    from repro.core.substrate import substrate_dtype
    with substrate_dtype(np.float64):
        yield


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModules:
    def test_linear_forward(self, rng):
        layer = Linear(4, 3, rng)
        x = Tensor(rng.normal(size=(5, 4)))
        out = layer(x)
        np.testing.assert_allclose(
            out.data, x.data @ layer.weight.data + layer.bias.data)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_recursive(self, rng):
        model = Sequential(Linear(4, 8, rng), LayerNorm(8),
                           FFN(8, 16, rng))
        # linear w+b, ln w+b, ffn 2x(w+b) = 8 tensors.
        assert len(model.parameters()) == 8

    def test_named_parameters_paths(self, rng):
        ffn = FFN(4, 8, rng)
        names = dict(ffn.named_parameters())
        assert "fc1.weight" in names
        assert "fc2.bias" in names

    def test_freeze(self, rng):
        ffn = FFN(4, 8, rng)
        ffn.freeze()
        assert all(not p.requires_grad
                   for p in [ffn.fc1.weight, ffn.fc2.weight])
        assert ffn.parameters() == []

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_ffn_rejects_bad_activation(self, rng):
        with pytest.raises(ValueError):
            FFN(4, 8, rng, activation="swish")

    def test_layernorm_normalizes(self, rng):
        ln = LayerNorm(16)
        x = Tensor(rng.normal(size=(8, 16)) * 10 + 5)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_module_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestMoEModule:
    def make(self, rng, **kwargs):
        defaults = dict(model_dim=8, hidden_dim=16, num_experts=4,
                        rng=rng, top_k=2, capacity_factor=2.0)
        defaults.update(kwargs)
        return MoE(**defaults)

    def test_forward_shapes(self, rng):
        moe = self.make(rng)
        out, l_aux = moe(Tensor(rng.normal(size=(32, 8))))
        assert out.shape == (32, 8)
        assert l_aux.data.size == 1

    def test_backward_reaches_all_params(self, rng):
        moe = self.make(rng)
        x = Tensor(rng.normal(size=(32, 8)), requires_grad=True)
        out, l_aux = moe(x)
        (out.sum() + l_aux).backward()
        for name, p in moe.named_parameters():
            assert p.grad is not None, name
        assert x.grad is not None

    def test_router_gets_gradient_with_k1(self, rng):
        # The Switch-style k=1 path must train the router through the
        # combine (the raw probability scales the output).
        moe = self.make(rng, top_k=1)
        x = Tensor(rng.normal(size=(32, 8)))
        out, _ = moe(x)
        out.sum().backward()
        assert np.abs(moe.gate.weight.grad).max() > 0

    def test_matches_functional_layer(self, rng):
        # The module's forward must agree with the verified functional
        # implementation when given the same parameters.
        from repro.moe.capacity import CapacityPolicy
        from repro.moe.layer import (ExpertParams, MoELayerParams,
                                     moe_layer_forward)
        moe = self.make(rng, capacity_factor=4.0)
        moe.w1.data = rng.normal(size=moe.w1.shape)
        x = rng.normal(size=(24, 8))
        out, _ = moe(Tensor(x))

        params = MoELayerParams(
            experts=ExpertParams(w1=moe.w1.data, w2=moe.w2.data),
            gate_weight=moe.gate.weight.data, top_k=2,
            capacity=CapacityPolicy(4.0), activation="gelu")
        expected = moe_layer_forward(x, params)
        np.testing.assert_allclose(out.data, expected.output, atol=1e-9)

    def test_failed_expert_path_keeps_substrate_dtype(self, rng):
        # ISSUE 6: the degenerate-routing fallback used to hardcode
        # float64 gates, mixing precisions mid-step once an expert was
        # marked failed.  Under a float32 substrate every tensor the
        # step produces must stay float32.
        from repro.core.substrate import substrate_dtype

        with substrate_dtype(np.float32):
            moe = self.make(np.random.default_rng(0))
            moe.fail_expert(1)
            x = Tensor(np.random.default_rng(1).normal(size=(32, 8)),
                       requires_grad=True)
            out, l_aux = moe(x)
            assert out.data.dtype == np.float32
            assert l_aux.data.dtype == np.float32
            stats = moe.last_routing_stats
            assert stats is not None
            (out.sum() + l_aux).backward()
            assert x.grad.dtype == np.float32
            for name, p in moe.named_parameters():
                if p.grad is not None:
                    assert p.grad.dtype == np.float32, name

    def test_dynamic_top_k_per_call(self, rng):
        moe = self.make(rng)
        x = Tensor(rng.normal(size=(16, 8)))
        out1, _ = moe(x, top_k=1)
        out3, _ = moe(x, top_k=3)
        assert not np.allclose(out1.data, out3.data)

    def test_adaptive_capacity_never_drops(self, rng):
        moe = self.make(rng, capacity_factor=0.0)
        moe(Tensor(rng.normal(size=(64, 8))))
        assert moe.last_dropped_fraction == 0.0

    def test_bounded_capacity_records_factor(self, rng):
        moe = self.make(rng, capacity_factor=-1.0)
        moe(Tensor(rng.normal(size=(64, 8))))
        assert moe.last_effective_capacity_factor <= 1.0
        assert moe.last_needed_capacity_factor >= 1.0

    def test_bpr_flag(self, rng):
        moe = self.make(rng, batch_prioritized=True,
                        capacity_factor=0.5, top_k=1)
        out, _ = moe(Tensor(rng.normal(size=(64, 8))))
        assert moe.last_dropped_fraction > 0

    def test_cosine_router(self, rng):
        moe = self.make(rng, router="cosine")
        out, l_aux = moe(Tensor(rng.normal(size=(16, 8))))
        assert out.shape == (16, 8)
        out.sum().backward()
        assert moe.expert_embed.grad is not None

    def test_rejects_bad_config(self, rng):
        with pytest.raises(ValueError):
            self.make(rng, num_experts=0)
        with pytest.raises(ValueError):
            self.make(rng, top_k=9)
        with pytest.raises(ValueError):
            self.make(rng, router="mystery")

    def test_rejects_bad_input(self, rng):
        moe = self.make(rng)
        with pytest.raises(ValueError):
            moe(Tensor(rng.normal(size=(4, 8, 2))))


class TestClassifiers:
    def test_dense_forward(self, rng):
        model = DenseClassifier(6, 8, 16, 5, num_blocks=2, rng=rng)
        logits, l_aux = model(Tensor(rng.normal(size=(10, 6))))
        assert logits.shape == (10, 5)
        assert float(l_aux.data) == 0.0

    def test_moe_forward_and_aux(self, rng):
        model = MoEClassifier(6, 8, 16, 5, num_blocks=4, num_experts=4,
                              rng=rng)
        logits, l_aux = model(Tensor(rng.normal(size=(10, 6))))
        assert logits.shape == (10, 5)
        assert float(l_aux.data) > 0

    def test_moe_layer_placement_every_other(self, rng):
        model = MoEClassifier(6, 8, 16, 5, num_blocks=4, num_experts=4,
                              rng=rng)
        assert len(model.moe_layers()) == 2

    def test_freeze_moe_keeps_rest_trainable(self, rng):
        model = MoEClassifier(6, 8, 16, 5, num_blocks=2, num_experts=4,
                              rng=rng)
        n_all = len([p for p in model.parameters() if p.requires_grad])
        model.freeze_moe()
        n_left = len([p for p in model.parameters() if p.requires_grad])
        assert 0 < n_left < n_all

    def test_set_inference_capacity(self, rng):
        model = MoEClassifier(6, 8, 16, 5, num_blocks=2, num_experts=4,
                              rng=rng, capacity_factor=1.0)
        model.set_inference_capacity(0.5)
        assert all(layer.capacity_policy.capacity_factor == 0.5
                   for layer in model.moe_layers())

    def test_features_shape(self, rng):
        model = MoEClassifier(6, 8, 16, 5, num_blocks=2, num_experts=4,
                              rng=rng)
        feats = model.features(Tensor(rng.normal(size=(7, 6))))
        assert feats.shape == (7, 8)
