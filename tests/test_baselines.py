"""Tests for the Fairseq / DeepSpeed baseline profiles."""

import numpy as np
import pytest

from repro.baselines.deepspeed_moe import (
    deepspeed_features,
    deepspeed_fflayer_time,
)
from repro.baselines.fairseq_moe import fairseq_memory, fairseq_moe_forward
from repro.cluster.topology import ndv4_topology
from repro.collectives.schedule import A2AAlgorithm
from repro.core.config import MoEConfig
from repro.moe.layer import MoELayerParams, moe_layer_forward
from repro.runtime.plan import FAIRSEQ_FEATURES


@pytest.fixture
def params():
    return MoELayerParams.init(num_experts=4, model_dim=8,
                               hidden_dim=16,
                               rng=np.random.default_rng(0))


class TestFairseqForward:
    def test_matches_tutel_numerics(self, params):
        # Same computation logic as GShard: dense and fast paths must
        # produce the same outputs.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(32, 8))
        fair = fairseq_moe_forward(x, params, capacity_factor=2.0)
        from repro.moe.capacity import CapacityPolicy
        tutel = moe_layer_forward(x, params,
                                  capacity=CapacityPolicy(2.0))
        np.testing.assert_allclose(fair.output, tutel.output, atol=1e-10)

    def test_rejects_adaptive_capacity(self, params):
        x = np.zeros((4, 8))
        with pytest.raises(ValueError):
            fairseq_moe_forward(x, params, capacity_factor=0.0)

    def test_no_bpr(self, params):
        # The baseline never reorders tokens; first-come-first-served.
        rng = np.random.default_rng(2)
        x = rng.normal(size=(64, 8))
        out = fairseq_moe_forward(x, params, capacity_factor=0.25)
        assert out.crit is not None


class TestFairseqProfile:
    def test_features_all_off(self):
        f = FAIRSEQ_FEATURES
        assert not f.fast_kernels
        assert not f.flexible_a2a
        assert not f.adaptive_pipelining
        assert not f.adaptive_parallelism
        assert f.pipeline_strategy.degree == 1
        assert f.pipeline_strategy.algorithm is A2AAlgorithm.LINEAR

    def test_memory_is_dense(self):
        cfg = MoEConfig(world_size=1, experts_per_gpu=2, model_dim=512,
                        hidden_dim=512, tokens_per_gpu=2048, top_k=2)
        breakdown = fairseq_memory(cfg)
        assert any("T,E,dC" in name for name in breakdown.tensors)


class TestDeepSpeed:
    def test_features_static(self):
        f = deepspeed_features()
        assert f.name == "deepspeed"
        assert not f.adaptive_pipelining

    def test_figure7_fflayer_regression(self):
        # dE = 1, M = V = 2048, f = 1, 16384 tokens/step per GPU:
        # the fflayer slows ~11.3x from 1 to 2,048 GPUs.
        def cfg(w):
            return MoEConfig(world_size=w, experts_per_gpu=1,
                             model_dim=2048, hidden_dim=2048,
                             tokens_per_gpu=16384, top_k=1,
                             capacity_factor=1.0)
        t1 = deepspeed_fflayer_time(cfg(1), ndv4_topology(1))
        t2048 = deepspeed_fflayer_time(cfg(2048), ndv4_topology(2048))
        assert 6 < t2048 / t1 < 20

    def test_fflayer_monotone_in_world(self):
        def cfg(w):
            return MoEConfig(world_size=w, experts_per_gpu=1,
                             model_dim=2048, hidden_dim=2048,
                             tokens_per_gpu=16384, top_k=1)
        times = [deepspeed_fflayer_time(cfg(w), ndv4_topology(w))
                 for w in (1, 16, 256, 2048)]
        assert times == sorted(times)
