"""Tests for the functional P1/P2 executions (zero-cost switching).

The paper's key design property: P1 and P2 share token feeding and
parameter placement semantics, so an iteration may run under either
and produce the same numbers.  These tests assert elementwise
equality between P1, P2 and the single-process reference.
"""

import numpy as np
import pytest

from repro.core.config import MoEConfig
from repro.moe.capacity import CapacityPolicy
from repro.moe.layer import MoELayerParams, moe_layer_forward
from repro.parallel.functional import (
    gather_zero_slices,
    p1_forward,
    p2_forward,
    shard_expert_columns,
    slice_expert_zero,
)


def build(world=8, experts=2, tokens=16, m=12, v=24, k=1, f=2.0,
          seed=0, activation="gelu"):
    rng = np.random.default_rng(seed)
    cfg = MoEConfig(world_size=world, experts_per_gpu=experts / world,
                    model_dim=m, hidden_dim=v, tokens_per_gpu=tokens,
                    top_k=min(k, experts), capacity_factor=f)
    params = MoELayerParams.init(num_experts=experts, model_dim=m,
                                 hidden_dim=v, rng=rng,
                                 top_k=min(k, experts),
                                 activation=activation)
    xs = [rng.normal(size=(tokens, m)) for _ in range(world)]
    return cfg, params, xs


class TestParameterPlacement:
    def test_column_shards_reconstruct(self):
        _, params, _ = build()
        shards = shard_expert_columns(params.experts, 0, 4)
        w1 = np.concatenate([s.w1 for s in shards], axis=1)
        w2 = np.concatenate([s.w2 for s in shards], axis=0)
        np.testing.assert_array_equal(w1, params.experts.w1[0])
        np.testing.assert_array_equal(w2, params.experts.w2[0])

    def test_column_shards_reject_indivisible(self):
        _, params, _ = build(v=10)
        with pytest.raises(ValueError):
            shard_expert_columns(params.experts, 0, 4)

    def test_zero_slices_roundtrip(self):
        _, params, _ = build()
        slices = slice_expert_zero(params.experts, 1, 4)
        full = gather_zero_slices(slices, params.experts, 1)
        np.testing.assert_allclose(full.w1[0], params.experts.w1[1])
        np.testing.assert_allclose(full.w2[0], params.experts.w2[1])
        np.testing.assert_allclose(full.b1[0], params.experts.b1[1])
        np.testing.assert_allclose(full.b2[0], params.experts.b2[1])

    def test_zero_slices_are_disjoint_and_complete(self):
        _, params, _ = build()
        slices = slice_expert_zero(params.experts, 0, 3)
        total = sum(s["slice"].size for s in slices)
        expected = (params.experts.w1[0].size
                    + params.experts.w2[0].size
                    + params.experts.b1[0].size
                    + params.experts.b2[0].size)
        assert total == expected


class TestSwitchingEquivalence:
    @pytest.mark.parametrize("world,experts,k", [(4, 2, 1), (8, 2, 1),
                                                 (8, 2, 2), (8, 4, 1),
                                                 (8, 1, 1)])
    def test_p1_equals_p2_equals_reference(self, world, experts, k):
        cfg, params, xs = build(world=world, experts=experts, k=k)
        ref = [moe_layer_forward(
            x, params, capacity=CapacityPolicy(cfg.capacity_factor))
            .output for x in xs]
        p1 = p1_forward(xs, params, cfg)
        p2 = p2_forward(xs, params, cfg)
        for r in range(world):
            np.testing.assert_allclose(p1[r], ref[r], atol=1e-12)
            np.testing.assert_allclose(p2[r], ref[r], atol=1e-12)
            np.testing.assert_allclose(p1[r], p2[r], atol=1e-12)

    def test_relu_activation_path(self):
        cfg, params, xs = build(activation="relu")
        p1 = p1_forward(xs, params, cfg)
        p2 = p2_forward(xs, params, cfg)
        for r in range(cfg.world_size):
            np.testing.assert_allclose(p1[r], p2[r], atol=1e-12)

    def test_with_token_dropping(self):
        # Even with capacity truncation both paths agree: the routing
        # (hence the drop set) is computed identically up front.
        cfg, params, xs = build(f=0.5, tokens=64)
        p1 = p1_forward(xs, params, cfg)
        p2 = p2_forward(xs, params, cfg)
        for r in range(cfg.world_size):
            np.testing.assert_allclose(p1[r], p2[r], atol=1e-12)

    def test_p1_requires_divisible_capacity(self):
        # dC = 11 with r = 4 cannot be sub-sliced evenly.
        cfg, params, xs = build(tokens=11, f=2.0)
        assert cfg.capacity_per_gpu % 4 != 0
        with pytest.raises(ValueError):
            p1_forward(xs, params, cfg)

    def test_rejects_wrong_world(self):
        cfg, params, xs = build()
        with pytest.raises(ValueError):
            p2_forward(xs[:-1], params, cfg)

    def test_rejects_expert_mismatch(self):
        cfg, params, xs = build()
        bad = cfg.with_(experts_per_gpu=0.5)
        with pytest.raises(ValueError):
            p2_forward(xs, params, bad)
