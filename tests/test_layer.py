"""Tests for the functional single-process MoE layer."""

import numpy as np
import pytest

from repro.moe.capacity import CapacityPolicy
from repro.moe.layer import (
    ExpertParams,
    MoELayerParams,
    expert_ffn,
    moe_layer_forward,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def params(rng):
    return MoELayerParams.init(num_experts=8, model_dim=16,
                               hidden_dim=32, rng=rng)


class TestExpertParams:
    def test_init_shapes(self, rng):
        p = ExpertParams.init(4, 8, 16, rng)
        assert p.w1.shape == (4, 8, 16)
        assert p.w2.shape == (4, 16, 8)
        assert p.num_experts == 4
        assert p.model_dim == 8
        assert p.hidden_dim == 16

    def test_rejects_incompatible_w2(self, rng):
        with pytest.raises(ValueError):
            ExpertParams(w1=rng.normal(size=(2, 4, 8)),
                         w2=rng.normal(size=(2, 4, 8)))


class TestExpertFfn:
    def test_matches_per_expert_loop(self, rng):
        p = ExpertParams.init(3, 8, 16, rng)
        x = rng.normal(size=(3, 5, 8))
        out = expert_ffn(x, p, activation="relu")
        for e in range(3):
            h = np.maximum(x[e] @ p.w1[e] + p.b1[e], 0)
            expected = h @ p.w2[e] + p.b2[e]
            np.testing.assert_allclose(out[e], expected)

    def test_gelu_activation(self, rng):
        p = ExpertParams.init(2, 4, 8, rng)
        x = rng.normal(size=(2, 3, 4))
        out_gelu = expert_ffn(x, p, activation="gelu")
        out_relu = expert_ffn(x, p, activation="relu")
        assert not np.allclose(out_gelu, out_relu)

    def test_rejects_expert_mismatch(self, rng):
        p = ExpertParams.init(3, 8, 16, rng)
        with pytest.raises(ValueError):
            expert_ffn(rng.normal(size=(2, 5, 8)), p)

    def test_rejects_bad_ndim(self, rng):
        p = ExpertParams.init(3, 8, 16, rng)
        with pytest.raises(ValueError):
            expert_ffn(rng.normal(size=(3, 8)), p)


class TestMoELayerForward:
    def test_output_shape(self, params, rng):
        x = rng.normal(size=(64, 16))
        out = moe_layer_forward(x, params)
        assert out.output.shape == (64, 16)

    def test_fast_and_dense_paths_agree(self, params, rng):
        x = rng.normal(size=(64, 16))
        fast = moe_layer_forward(x, params)
        import dataclasses
        dense_params = dataclasses.replace(params, use_fast_encode=False)
        dense = moe_layer_forward(x, dense_params)
        np.testing.assert_allclose(fast.output, dense.output)

    def test_dynamic_top_k_override(self, params, rng):
        x = rng.normal(size=(32, 16))
        out1 = moe_layer_forward(x, params, top_k=1)
        out4 = moe_layer_forward(x, params, top_k=4)
        assert out1.crit.top_k == 1
        assert out4.crit.top_k == 4
        assert not np.allclose(out1.output, out4.output)

    def test_adaptive_capacity_drops_nothing(self, params, rng):
        x = rng.normal(size=(64, 16))
        out = moe_layer_forward(x, params,
                                capacity=CapacityPolicy(0.0))
        assert out.dropped_fraction == 0.0

    def test_bounded_adaptive_capacity(self, params, rng):
        import dataclasses
        x = rng.normal(size=(64, 16))
        bounded = moe_layer_forward(x, params,
                                    capacity=CapacityPolicy(-1.0))
        assert bounded.effective_capacity_factor <= 1.0

    def test_small_capacity_drops_tokens(self, params, rng):
        x = rng.normal(size=(256, 16))
        out = moe_layer_forward(x, params,
                                capacity=CapacityPolicy(0.25))
        assert out.dropped_fraction > 0

    def test_aux_loss_positive(self, params, rng):
        x = rng.normal(size=(64, 16))
        assert moe_layer_forward(x, params).l_aux > 0

    def test_cosine_router_runs(self, rng):
        params = MoELayerParams.init(num_experts=4, model_dim=16,
                                     hidden_dim=32, rng=rng,
                                     router="cosine")
        x = rng.normal(size=(32, 16))
        out = moe_layer_forward(x, params)
        assert out.output.shape == (32, 16)

    def test_cosine_router_requires_params(self, params, rng):
        import dataclasses
        bad = dataclasses.replace(params, router="cosine")
        with pytest.raises(ValueError):
            moe_layer_forward(rng.normal(size=(8, 16)), bad)

    def test_unknown_router_rejected(self, params, rng):
        import dataclasses
        bad = dataclasses.replace(params, router="mystery")
        with pytest.raises(ValueError):
            moe_layer_forward(rng.normal(size=(8, 16)), bad)

    def test_rejects_bad_input_ndim(self, params, rng):
        with pytest.raises(ValueError):
            moe_layer_forward(rng.normal(size=(8, 16, 2)), params)

    def test_bpr_changes_drops_not_values(self, rng):
        import dataclasses
        params = MoELayerParams.init(num_experts=4, model_dim=8,
                                     hidden_dim=16, rng=rng)
        bpr = dataclasses.replace(params, batch_prioritized=True)
        x = rng.normal(size=(128, 8))
        tight = CapacityPolicy(0.5)
        out_fifo = moe_layer_forward(x, params, capacity=tight)
        out_bpr = moe_layer_forward(x, bpr, capacity=tight)
        # Same drop budget, different victims.
        assert out_fifo.dropped_fraction == pytest.approx(
            out_bpr.dropped_fraction, abs=0.05)
        surviving_fifo = out_fifo.crit.valid
        surviving_bpr = out_bpr.crit.valid
        assert (surviving_fifo != surviving_bpr).any()
