"""Tests for the routing diagnostics."""

import numpy as np
import pytest

from repro.moe.gating import softmax, top_k_routing
from repro.moe.metrics import (
    RoutingStats,
    expert_load,
    load_gini,
    load_imbalance,
    routing_entropy,
    routing_stats,
)


def balanced_crit(t=32, e=4):
    """Deterministic perfectly balanced top-1 routing."""
    probs = np.zeros((t, e))
    probs[np.arange(t), np.arange(t) % e] = 1.0
    return top_k_routing(probs, 1, capacity=t)


def collapsed_crit(t=32, e=4):
    probs = np.zeros((t, e))
    probs[:, 0] = 1.0
    return top_k_routing(probs, 1, capacity=t)


class TestExpertLoad:
    def test_balanced_counts(self):
        load = expert_load(balanced_crit())
        np.testing.assert_array_equal(load, [8, 8, 8, 8])

    def test_collapsed_counts(self):
        load = expert_load(collapsed_crit())
        np.testing.assert_array_equal(load, [32, 0, 0, 0])

    def test_top_k_counts_all_slots(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(size=(16, 4)))
        crit = top_k_routing(probs, 2, capacity=16)
        assert expert_load(crit).sum() == 32

    def test_survivors_only(self):
        # All 32 tokens want expert 0 but only 4 fit its capacity.
        tight = top_k_routing(np.tile([[0.9, 0.1, 0.0, 0.0]], (32, 1)),
                              1, capacity=4)
        assert expert_load(tight, count_dropped=False).sum() == 4
        assert expert_load(tight, count_dropped=True).sum() == 32


class TestImbalanceAndEntropy:
    def test_balanced_imbalance_is_one(self):
        assert load_imbalance(balanced_crit()) == pytest.approx(1.0)

    def test_collapsed_imbalance_is_e(self):
        assert load_imbalance(collapsed_crit()) == pytest.approx(4.0)

    def test_balanced_entropy_is_one(self):
        assert routing_entropy(balanced_crit()) == pytest.approx(1.0)

    def test_collapsed_entropy_is_zero(self):
        assert routing_entropy(collapsed_crit()) == pytest.approx(0.0)

    def test_unnormalized_entropy(self):
        raw = routing_entropy(balanced_crit(), normalized=False)
        assert raw == pytest.approx(np.log(4))

    def test_imbalance_equals_needed_f_for_top1(self):
        # The needed capacity factor of Figure 1 is exactly the
        # max/mean load ratio under top-1 routing.
        rng = np.random.default_rng(1)
        probs = softmax(rng.normal(size=(64, 8)) * 2)
        crit = top_k_routing(probs, 1, capacity=64)
        from repro.moe.capacity import needed_capacity_factor
        f = needed_capacity_factor(crit.idxs, 8, 64)
        assert load_imbalance(crit) == pytest.approx(f)


class TestRoutingStats:
    def test_full_summary(self):
        rng = np.random.default_rng(2)
        probs = softmax(rng.normal(size=(48, 6)))
        crit = top_k_routing(probs, 2, capacity=8)
        stats = routing_stats(crit, gate_probs=probs)
        assert isinstance(stats, RoutingStats)
        assert stats.num_tokens == 48
        assert stats.top_k == 2
        assert 0 <= stats.dropped_fraction <= 1
        assert stats.load_imbalance >= 1.0
        assert 0 <= stats.routing_entropy <= 1.0
        assert stats.mean_top1_confidence == pytest.approx(
            probs.max(axis=1).mean())
        assert "drop=" in stats.describe()

    def test_without_gate_probs(self):
        crit = balanced_crit()
        stats = routing_stats(crit)
        assert stats.mean_top1_confidence > 0

    def test_rejects_bad_probs_shape(self):
        crit = balanced_crit()
        with pytest.raises(ValueError):
            routing_stats(crit, gate_probs=np.zeros((3, 3)))


class TestLoadGini:
    def test_uniform_load_is_zero(self):
        assert load_gini(np.array([8, 8, 8, 8])) == pytest.approx(0.0)

    def test_collapsed_load_approaches_one(self):
        # One expert takes everything: Gini = 1 - 1/E.
        assert load_gini(np.array([32, 0, 0, 0])) == pytest.approx(0.75)

    def test_monotone_in_skew(self):
        mild = load_gini(np.array([10, 8, 8, 6]))
        harsh = load_gini(np.array([20, 8, 4, 0]))
        assert 0.0 < mild < harsh < 1.0

    def test_degenerate_inputs_defined(self):
        with np.errstate(all="raise"):
            assert load_gini(np.array([])) == 0.0
            assert load_gini(np.array([5])) == 0.0      # single expert
            assert load_gini(np.zeros(8)) == 0.0        # zero tokens

    def test_scale_invariant(self):
        load = np.array([3, 1, 5, 7], dtype=float)
        assert load_gini(load) == pytest.approx(load_gini(load * 100))

    def test_stats_carry_health_fields(self):
        crit = collapsed_crit()
        stats = routing_stats(crit)
        assert stats.expert_load == (32, 0, 0, 0)
        assert stats.load_gini == pytest.approx(0.75)
        # top-1, all tokens on one of 4 experts: needs f = E = 4
        assert stats.needed_capacity_factor == pytest.approx(4.0)

    def test_single_expert_entropy_is_uniform(self):
        # One expert *is* uniform usage; the 0/log(1) division must
        # never be evaluated.
        probs = np.ones((16, 1))
        crit = top_k_routing(probs, 1, capacity=16)
        with np.errstate(all="raise"):
            assert routing_entropy(crit) == 1.0
            stats = routing_stats(crit)
        assert stats.load_gini == 0.0


class TestEmptyBatchStats:
    def _empty_crit(self, e=4, k=2):
        return top_k_routing(np.zeros((0, e)), top_k=k, capacity=4)

    def test_routing_stats_defined_for_zero_tokens(self):
        crit = self._empty_crit()
        with np.errstate(all="raise"):
            stats = routing_stats(crit)
        assert stats.num_tokens == 0
        assert stats.dropped_fraction == 0.0
        assert stats.load_imbalance == 1.0
        assert stats.routing_entropy == 0.0
        assert stats.needed_capacity == 1
        assert stats.mean_top1_confidence == 0.0

    def test_routing_stats_with_empty_gate_probs(self):
        crit = self._empty_crit(e=4)
        with np.errstate(all="raise"):
            stats = routing_stats(crit, gate_probs=np.zeros((0, 4)))
        assert stats.mean_top1_confidence == 0.0

    def test_load_imbalance_zero_tokens(self):
        with np.errstate(all="raise"):
            assert load_imbalance(self._empty_crit()) == 1.0

    def test_expert_load_zero_tokens(self):
        load = expert_load(self._empty_crit(e=4))
        np.testing.assert_array_equal(load, np.zeros(4, dtype=load.dtype))

    def test_gini_and_capacity_factor_zero_tokens(self):
        with np.errstate(all="raise"):
            stats = routing_stats(self._empty_crit())
        assert stats.load_gini == 0.0
        assert stats.needed_capacity_factor == 0.0  # documented: empty
        assert stats.expert_load == (0, 0, 0, 0)
